"""Tests for the pipelined append path.

``CorfuClient.append_async`` returns an :class:`AppendFuture`;
whichever waiter thread becomes the pipeline leader group-commits the
queued appends through ``append_batch`` → ``write_pipelined``. These
tests pin the completion-handle semantics, the exactly-once guarantee
under concurrency and network faults, and the stream-layer passthrough.
"""

import threading

import pytest

from repro.corfu import CorfuCluster
from repro.errors import TooManyStreamsError, UnwrittenError
from repro.net import FaultyTransport
from repro.streams import StreamClient


@pytest.fixture
def client(cluster):
    return cluster.client()


class TestAppendAsync:
    def test_result_returns_offset_and_payload_lands(self, client):
        fut = client.append_async(b"pipelined", (1,))
        offset = fut.result()
        assert fut.done()
        assert client.read(offset).payload == b"pipelined"

    def test_flight_preserves_submission_order(self, client):
        futures = [
            client.append_async(b"entry-%d" % i, (1,)) for i in range(20)
        ]
        offsets = [fut.result() for fut in futures]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == 20
        for i, offset in enumerate(offsets):
            assert client.read(offset).payload == b"entry-%d" % i

    def test_append_is_async_result(self, client):
        """The synchronous append is re-expressed on top of the async
        path; interleaving the two keeps the log dense and ordered."""
        offsets = [client.append(b"sync-0", (1,))]
        fut = client.append_async(b"async-1", (1,))
        offsets.append(client.append(b"sync-2", (2,)))
        offsets.append(fut.result())
        assert sorted(offsets) == list(range(3))

    def test_mixed_stream_sets_commit_in_runs(self, client):
        futures = [
            client.append_async(b"s%d" % i, (i % 3 + 1,)) for i in range(12)
        ]
        offsets = [fut.result() for fut in futures]
        assert len(set(offsets)) == 12
        for i, offset in enumerate(offsets):
            entry = client.read(offset)
            assert entry.payload == b"s%d" % i
            assert entry.stream_ids() == (i % 3 + 1,)

    def test_validation_errors_raised_at_submit(self, cluster, client):
        with pytest.raises(ValueError):
            client.append_async(b"x" * (cluster.entry_size + 1), (1,))
        with pytest.raises(TooManyStreamsError):
            client.append_async(
                b"x", tuple(range(cluster.max_streams + 1))
            )
        # Nothing was enqueued: the next append gets offset 0.
        assert client.append(b"clean", (1,)) == 0

    def test_stream_layer_passthrough(self, cluster):
        sclient = StreamClient(cluster.client())
        sclient.open_stream(7)
        fut = sclient.append_async(b"via-stream", (7,))
        offset = fut.result()
        sclient.sync(7)
        entry = sclient.fetch(offset)
        assert entry.payload == b"via-stream"

    def test_concurrent_flights_exactly_once(self, cluster):
        """Many threads racing append_async flights: every acknowledged
        payload lands at exactly the offset its future reports, and the
        log is dense (no burned offsets on the happy path)."""
        client = cluster.client()
        per_thread = 12
        acked = {}
        acked_lock = threading.Lock()

        def worker(tid: int) -> None:
            futures = [
                client.append_async(b"t%d-%d" % (tid, i), (1,))
                for i in range(per_thread)
            ]
            resolved = {fut.result(): fut.payload for fut in futures}
            with acked_lock:
                acked.update(resolved)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(acked) == 4 * per_thread
        assert sorted(acked) == list(range(4 * per_thread))
        for offset, payload in acked.items():
            assert client.read(offset).payload == payload


class TestAppendAsyncUnderFaults:
    def test_exactly_once_under_drops_and_duplicates(self):
        """Acknowledged async appends survive lost responses (the retry
        re-drives the chain with maybe_mine) and duplicated deliveries
        (the write-once check absorbs the replay): each acknowledged
        payload appears in the log exactly once, at its reported offset."""
        transport = FaultyTransport(
            seed=7, drop_request=0.1, drop_response=0.1,
            duplicate=0.15, reorder=0.1,
        )
        cluster = CorfuCluster(
            num_sets=1, replication_factor=3, transport=transport
        )
        client = cluster.client()
        acked = {}
        for i in range(30):
            futures = [
                client.append_async(b"f%d-%d" % (i, j), (1,))
                for j in range(4)
            ]
            for fut in futures:
                acked[fut.result()] = fut.payload
        transport.calm()
        assert len(acked) == 120
        for offset, payload in acked.items():
            assert client.read(offset).payload == payload
        # Exactly once: no other live offset repeats an acked payload.
        seen = set()
        for offset in range(client.check()):
            try:
                entry = client.read(offset)
            except UnwrittenError:
                client.fill(offset)
                continue
            if entry.is_junk:
                continue
            assert entry.payload not in seen
            seen.add(entry.payload)

    def test_concurrent_flights_under_faults(self):
        transport = FaultyTransport(
            seed=19, drop_response=0.08, duplicate=0.1,
        )
        cluster = CorfuCluster(
            num_sets=1, replication_factor=3, transport=transport
        )
        client = cluster.client()
        acked = {}
        acked_lock = threading.Lock()
        failures = []

        def worker(tid: int) -> None:
            try:
                futures = [
                    client.append_async(b"w%d-%d" % (tid, i), (1,))
                    for i in range(8)
                ]
                resolved = {fut.result(): fut.payload for fut in futures}
                with acked_lock:
                    acked.update(resolved)
            except BaseException as exc:  # pragma: no cover - diagnostics
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        transport.calm()
        assert len(acked) == 24
        payloads = set()
        for offset, payload in acked.items():
            entry = client.read(offset)
            assert entry.payload == payload
            assert payload not in payloads
            payloads.add(payload)
