"""Tests for the streaming layer: sync, readnext, multiappend, holes."""

import pytest

from repro.corfu import CorfuCluster
from repro.corfu.entry import NO_BACKPOINTER
from repro.errors import UnknownStreamError, UnwrittenError
from repro.streams import StreamClient


@pytest.fixture
def sclient(cluster):
    return StreamClient(cluster.client())


class TestBasics:
    def test_unknown_stream_rejected(self, sclient):
        with pytest.raises(UnknownStreamError):
            sclient.readnext(99)

    def test_empty_stream_sync(self, sclient):
        sclient.open_stream(1)
        assert sclient.sync(1) == NO_BACKPOINTER
        assert sclient.readnext(1) is None

    def test_append_sync_readnext(self, sclient):
        sclient.open_stream(1)
        sclient.append(b"first", (1,))
        sclient.append(b"second", (1,))
        assert sclient.sync(1) == 1
        offset, entry = sclient.readnext(1)
        assert (offset, entry.payload) == (0, b"first")
        offset, entry = sclient.readnext(1)
        assert (offset, entry.payload) == (1, b"second")
        assert sclient.readnext(1) is None

    def test_streams_skip_other_streams(self, sclient):
        """readnext skips entries belonging to other streams."""
        sclient.open_stream(1)
        sclient.append(b"a", (1,))
        sclient.append(b"noise", (2,))
        sclient.append(b"b", (1,))
        sclient.sync(1)
        assert sclient.readnext(1)[0] == 0
        assert sclient.readnext(1)[0] == 2
        assert sclient.readnext(1) is None

    def test_open_is_idempotent(self, sclient):
        sclient.open_stream(1)
        sclient.append(b"a", (1,))
        sclient.sync(1)
        sclient.readnext(1)
        sclient.open_stream(1)  # must not reset the iterator
        assert sclient.readnext(1) is None

    def test_position_and_pending(self, sclient):
        sclient.open_stream(1)
        assert sclient.position(1) == NO_BACKPOINTER
        for i in range(3):
            sclient.append(b"e%d" % i, (1,))
        sclient.sync(1)
        assert sclient.pending(1) == 3
        sclient.readnext(1)
        assert sclient.position(1) == 0
        assert sclient.pending(1) == 2

    def test_reset_replays_history(self, sclient):
        sclient.open_stream(1)
        for i in range(3):
            sclient.append(b"e%d" % i, (1,))
        sclient.sync(1)
        while sclient.readnext(1):
            pass
        sclient.reset(1)
        assert sclient.readnext(1)[1].payload == b"e0"

    def test_readnext_upto(self, sclient):
        """Bounded playback instantiates historical views."""
        sclient.open_stream(1)
        for i in range(4):
            sclient.append(b"e%d" % i, (1,))
        sclient.sync(1)
        assert sclient.readnext(1, upto=1)[0] == 0
        assert sclient.readnext(1, upto=1)[0] == 1
        assert sclient.readnext(1, upto=1) is None  # held back
        assert sclient.readnext(1)[0] == 2  # unbounded resumes


class TestMultiappend:
    def test_entry_in_both_streams(self, sclient):
        sclient.open_stream(1)
        sclient.open_stream(2)
        offset = sclient.append(b"both", (1, 2))
        sclient.sync(1)
        sclient.sync(2)
        assert sclient.readnext(1)[0] == offset
        assert sclient.readnext(2)[0] == offset

    def test_entry_fetched_once(self, cluster):
        """The streaming layer fetches a multiappended entry once and
        caches it (paper section 4.1)."""
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        sclient.open_stream(2)
        sclient.append(b"both", (1, 2))
        sclient.sync(1)
        sclient.sync(2)
        before = sclient.corfu.reads
        sclient.readnext(1)
        mid = sclient.corfu.reads
        sclient.readnext(2)
        assert sclient.corfu.reads == mid  # second delivery from cache
        assert mid >= before


class TestBackpointerWalk:
    def test_sync_uses_strided_reads(self, cluster):
        """Building the list takes ~N/K reads, not N (paper section 5)."""
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        n = 40
        for i in range(n):
            sclient.append(b"e%d" % i, (1,))
        before = sclient.corfu.reads
        sclient.sync(1)
        walk_reads = sclient.corfu.reads - before
        assert walk_reads <= n // 4 + 2  # K=4 stride

    def test_incremental_sync_reads_only_new_entries(self, sclient):
        sclient.open_stream(1)
        for i in range(10):
            sclient.append(b"e%d" % i, (1,))
        sclient.sync(1)
        sclient.append(b"new", (1,))
        before = sclient.corfu.reads
        assert sclient.sync(1) == 10
        assert sclient.corfu.reads - before <= 2
        assert sclient.pending(1) == 11

    def test_interleaved_streams_sync_correctly(self, sclient):
        sclient.open_stream(1)
        sclient.open_stream(2)
        expected = {1: [], 2: []}
        for i in range(30):
            sid = 1 if i % 3 else 2
            offset = sclient.append(b"e%d" % i, (sid,))
            expected[sid].append(offset)
        results = sclient.sync_many((1, 2))
        assert results[1] == expected[1][-1]
        assert results[2] == expected[2][-1]
        for sid in (1, 2):
            got = []
            while True:
                item = sclient.readnext(sid)
                if item is None:
                    break
                got.append(item[0])
            assert got == expected[sid]

    def test_sync_after_sequencer_failover(self, cluster):
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        for i in range(10):
            sclient.append(b"e%d" % i, (1,))
        cluster.crash_sequencer()
        assert sclient.sync(1) == 9
        assert sclient.pending(1) == 10


class TestHolesAndJunk:
    def test_hole_filled_during_sync(self, cluster):
        """A crashed appender's reserved offset becomes junk; the stream
        skips it."""
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        sclient.append(b"a", (1,))
        # Crash simulation: sequencer assigned offset 1 to stream 1 but
        # nothing was written.
        cluster.sequencer().increment(stream_ids=(1,))
        sclient.append(b"b", (1,))  # offset 2
        assert sclient.sync(1) == 2
        delivered = []
        while True:
            item = sclient.readnext(1)
            if item is None:
                break
            delivered.append(item)
        payloads = [e.payload for _, e in delivered if not e.is_junk]
        assert payloads == [b"a", b"b"]

    def test_backward_scan_past_junk(self, cluster):
        """When backpointers dead-end in junk, the client scans the log
        backward for a valid entry (paper section 5)."""
        sclient = StreamClient(cluster.client())
        writer = StreamClient(cluster.client())
        writer.append(b"a", (1,))  # offset 0
        # Force the next K=4 stream-1 reservations to be holes.
        for _ in range(4):
            cluster.sequencer().increment(stream_ids=(1,))
        writer.append(b"b", (1,))  # offset 5
        sclient.open_stream(1)
        assert sclient.sync(1) == 5
        assert sclient.backward_scans > 0
        offsets = []
        while True:
            item = sclient.readnext(1)
            if item is None:
                break
            if not item[1].is_junk:
                offsets.append(item[0])
        assert offsets == [0, 5]

    def test_custom_hole_handler_can_defer(self, cluster):
        """A handler modeling the 100ms timeout may decline to fill."""
        attempts = []

        def patient_handler(offset):
            attempts.append(offset)
            if len(attempts) >= 2:
                cluster.client().fill(offset)

        sclient = StreamClient(cluster.client(), hole_handler=patient_handler)
        cluster.sequencer().increment(stream_ids=(1,))
        sclient.open_stream(1)
        with pytest.raises(UnwrittenError):
            sclient.fetch(0)
        assert sclient.fetch(0).is_junk  # second attempt fills
        assert attempts == [0, 0]

    def test_trimmed_offsets_read_as_junk(self, cluster):
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        sclient.append(b"old", (1,))
        sclient.append(b"new", (1,))
        sclient.corfu.trim(0)
        assert sclient.fetch(0).is_junk


class TestCache:
    def test_cache_eviction(self, cluster):
        sclient = StreamClient(cluster.client(), cache_entries=4)
        offsets = [sclient.append(b"e%d" % i, (1,)) for i in range(8)]
        for offset in offsets:
            sclient.fetch(offset)
        assert len(sclient._cache) == 4

    def test_lru_keeps_hot_entries(self, cluster):
        sclient = StreamClient(cluster.client(), cache_entries=2)
        a = sclient.append(b"a", (1,))
        b = sclient.append(b"b", (1,))
        c = sclient.append(b"c", (1,))
        sclient.fetch(a)
        sclient.fetch(b)
        sclient.fetch(a)  # a is now most-recent
        sclient.fetch(c)  # evicts b
        reads_before = sclient.corfu.reads
        sclient.fetch(a)
        assert sclient.corfu.reads == reads_before  # cache hit
