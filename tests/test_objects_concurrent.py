"""Multi-client semantics for the object library under interleavings."""

import pytest

from repro.errors import TransactionAborted
from repro.objects import (
    TangoCounter,
    TangoList,
    TangoMap,
    TangoQueue,
    TangoTreeSet,
)


def _pair(make_runtime, cls, oid=1):
    rt1, rt2 = make_runtime(), make_runtime()
    return rt1, cls(rt1, oid=oid), rt2, cls(rt2, oid=oid)


class TestMapConcurrency:
    def test_interleaved_puts_converge(self, make_runtime):
        _rt1, m1, _rt2, m2 = _pair(make_runtime, TangoMap)
        for i in range(10):
            (m1 if i % 2 else m2).put(f"k{i}", i)
        assert dict(m1.items()) == dict(m2.items())
        assert m1.size() == 10

    def test_last_writer_wins_per_key(self, make_runtime):
        _rt1, m1, _rt2, m2 = _pair(make_runtime, TangoMap)
        m1.put("k", "from-1")
        m2.put("k", "from-2")
        assert m1.get("k") == m2.get("k") == "from-2"

    def test_read_modify_write_needs_tx(self, make_runtime):
        """Without a transaction, concurrent RMW loses updates; with
        one, it never does — the motivating example for OCC."""
        rt1, m1, rt2, m2 = _pair(make_runtime, TangoMap)
        m1.put("n", 0)
        m1.get("n")
        m2.get("n")
        # Unprotected RMW: both read 0, both write 1 — a lost update.
        v1 = m1.get("n")
        v2 = m2.get("n")
        m1.put("n", v1 + 1)
        m2.put("n", v2 + 1)
        assert m1.get("n") == 1  # one increment lost
        # Transactional RMW: nothing lost.
        for rt, m in ((rt1, m1), (rt2, m2)):
            rt.run_transaction(lambda m=m: m.put("n", m.get("n") + 1))
        assert m2.get("n") == 3


class TestListConcurrency:
    def test_append_order_is_log_order(self, make_runtime):
        _rt1, l1, _rt2, l2 = _pair(make_runtime, TangoList)
        l1.append("a")
        l2.append("b")
        l1.append("c")
        assert l1.to_list() == l2.to_list() == ("a", "b", "c")

    def test_take_head_disjoint_across_clients(self, make_runtime):
        _rt1, l1, _rt2, l2 = _pair(make_runtime, TangoList)
        for i in range(10):
            l1.append(i)
        taken1 = [l1.take_head() for _ in range(5)]
        taken2 = [l2.take_head() for _ in range(5)]
        assert sorted(taken1 + taken2) == list(range(10))


class TestCounterConcurrency:
    def test_commutative_increments(self, make_runtime):
        _rt1, c1, _rt2, c2 = _pair(make_runtime, TangoCounter)
        for _ in range(5):
            c1.increment(2)
            c2.decrement(1)
        assert c1.value() == c2.value() == 5

    def test_next_id_under_contention(self, make_runtime):
        rt1, c1, rt2, c2 = _pair(make_runtime, TangoCounter)
        ids = []
        for i in range(8):
            ids.append((c1 if i % 2 else c2).next_id())
        assert ids == list(range(8))


class TestTreeSetConcurrency:
    def test_add_discard_races_converge(self, make_runtime):
        _rt1, t1, _rt2, t2 = _pair(make_runtime, TangoTreeSet)
        t1.add(5)
        t2.add(5)  # duplicate from another client
        t2.add(3)
        t1.discard(5)
        assert t1.to_list() == t2.to_list() == (3,)

    def test_min_tracking_across_clients(self, make_runtime):
        """The 'oldest inserted name' query from section 2."""
        _rt1, t1, _rt2, t2 = _pair(make_runtime, TangoTreeSet)
        t1.add("server-042")
        t2.add("server-007")
        t1.add("server-150")
        assert t2.first() == "server-007"
        t2.discard("server-007")
        assert t1.first() == "server-042"


class TestQueueConcurrency:
    def test_producers_and_consumers(self, make_runtime):
        rt_p1, q_p1, rt_p2, q_p2 = _pair(make_runtime, TangoQueue)
        rt_c, q_c = make_runtime(), None
        q_c = TangoQueue(rt_c, oid=1)
        q_p1.enqueue("a")
        q_p2.enqueue("b")
        q_p1.enqueue("c")
        assert [q_c.dequeue() for _ in range(3)] == ["a", "b", "c"]

    def test_dequeue_race_on_last_item(self, make_runtime):
        _rt1, q1, _rt2, q2 = _pair(make_runtime, TangoQueue)
        q1.enqueue("only")
        first = q1.dequeue()
        second = q2.dequeue()
        assert first == "only"
        assert second is None


class TestThreadLocalTransactions:
    def test_contexts_are_per_thread(self, make_runtime):
        """BeginTX puts the context in thread-local storage (§3.2)."""
        import threading

        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("k", 0)
        m.get("k")
        results = {}

        def worker():
            # This thread sees no open transaction even though the main
            # thread has one.
            results["tx_in_thread"] = rt._current_tx()

        rt.begin_tx()
        _ = m.get("k")
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert results["tx_in_thread"] is None
        assert rt._current_tx() is not None
        rt.abort_tx()
