"""Tests for the mini HDFS namenode (section 6.3 fidelity check)."""

import pytest

from repro.apps.hdfs import MiniNameNode, NotActiveError
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime


@pytest.fixture
def active_nn(make_client):
    rt, directory = make_client()
    nn = MiniNameNode(rt, directory, "nn-1")
    assert nn.start()
    return nn


class TestNamespace:
    def test_mkdir_and_list(self, active_nn):
        active_nn.mkdir("/data")
        active_nn.mkdir("/data/raw")
        assert active_nn.listdir("/") == ("data",)
        assert active_nn.listdir("/data") == ("raw",)

    def test_create_file_and_blocks(self, active_nn):
        active_nn.mkdir("/d")
        active_nn.create_file("/d/f")
        b0 = active_nn.add_block("/d/f")
        b1 = active_nn.add_block("/d/f")
        assert active_nn.file_blocks("/d/f") == (b0, b1)
        assert b1 == b0 + 1

    def test_duplicate_create_rejected(self, active_nn):
        active_nn.mkdir("/d")
        with pytest.raises(FileExistsError):
            active_nn.mkdir("/d")

    def test_missing_parent_rejected(self, active_nn):
        with pytest.raises(FileNotFoundError):
            active_nn.create_file("/no/such/dir/f")

    def test_delete_recursive(self, active_nn):
        active_nn.mkdir("/d")
        active_nn.create_file("/d/f1")
        active_nn.create_file("/d/f2")
        active_nn.delete("/d")
        assert not active_nn.exists("/d")
        assert not active_nn.exists("/d/f1")

    def test_rename_moves_subtree(self, active_nn):
        active_nn.mkdir("/src")
        active_nn.create_file("/src/f")
        active_nn.mkdir("/dst")
        active_nn.rename("/src", "/dst/moved")
        assert active_nn.exists("/dst/moved/f")
        assert not active_nn.exists("/src")

    def test_rename_target_conflict(self, active_nn):
        active_nn.mkdir("/a")
        active_nn.mkdir("/b")
        with pytest.raises(FileExistsError):
            active_nn.rename("/a", "/b")

    def test_block_operations_on_dirs_rejected(self, active_nn):
        active_nn.mkdir("/d")
        with pytest.raises(FileNotFoundError):
            active_nn.add_block("/d")
        with pytest.raises(FileNotFoundError):
            active_nn.file_blocks("/d")


class TestHighAvailability:
    def test_standby_cannot_mutate(self, cluster, active_nn, make_client):
        rt2, d2 = make_client()
        standby = MiniNameNode(rt2, d2, "nn-2")
        assert standby.start() is False
        with pytest.raises(NotActiveError):
            standby.mkdir("/nope")

    def test_reboot_recovery(self, cluster, active_nn, make_client):
        """Section 6.3: "recovery from a namenode reboot"."""
        active_nn.mkdir("/d")
        active_nn.create_file("/d/f")
        active_nn.add_block("/d/f")
        rt_new, d_new = make_client()
        reborn = MiniNameNode.restart(rt_new, d_new, "nn-1")
        reborn.failover()
        assert reborn.exists("/d/f")
        assert reborn.file_blocks("/d/f") == (0,)
        reborn.create_file("/d/g")  # and it can keep journaling
        assert reborn.exists("/d/g")

    def test_failover_to_backup(self, cluster, active_nn, make_client):
        """Section 6.3: "fail-over to a backup namenode"."""
        active_nn.mkdir("/d")
        active_nn.create_file("/d/f")
        rt2, d2 = make_client()
        backup = MiniNameNode(rt2, d2, "nn-2")
        backup.start()
        backup.failover()
        assert backup.is_active
        assert backup.exists("/d/f")
        with pytest.raises(NotActiveError):
            active_nn.create_file("/d/zombie")
        assert not active_nn.is_active
        backup.create_file("/d/post-failover")
        assert backup.exists("/d/post-failover")

    def test_zombie_edit_never_visible(self, cluster, active_nn, make_client):
        """The fenced journal guarantees no split-brain edits."""
        active_nn.mkdir("/d")
        rt2, d2 = make_client()
        backup = MiniNameNode(rt2, d2, "nn-2")
        backup.failover()
        try:
            active_nn.create_file("/d/zombie")
        except NotActiveError:
            pass
        rt3, d3 = make_client()
        third = MiniNameNode(rt3, d3, "nn-3")
        third.failover()
        assert not third.exists("/d/zombie")

    def test_chained_failovers_preserve_history(self, cluster, make_client):
        """Edits accumulate across a chain of incarnations."""
        rt1, d1 = make_client()
        nn1 = MiniNameNode(rt1, d1, "nn-1")
        nn1.start()
        nn1.mkdir("/gen1")
        rt2, d2 = make_client()
        nn2 = MiniNameNode(rt2, d2, "nn-2")
        nn2.failover()
        nn2.mkdir("/gen2")
        rt3, d3 = make_client()
        nn3 = MiniNameNode(rt3, d3, "nn-3")
        nn3.failover()
        nn3.mkdir("/gen3")
        assert nn3.exists("/gen1")
        assert nn3.exists("/gen2")
        assert nn3.exists("/gen3")
        assert nn3.namespace_size() == 4  # root + 3 dirs
