"""Tests for the runtime's observability hooks."""

import pytest

from repro.objects import TangoList, TangoMap
from repro.tango.runtime import TangoRuntime


class TestSubscribe:
    def test_unknown_event_rejected(self, make_runtime):
        rt = make_runtime()
        with pytest.raises(ValueError):
            rt.subscribe("nonsense", lambda p: None)

    def test_apply_events(self, make_runtime):
        rt = make_runtime()
        events = []
        rt.subscribe("apply", events.append)
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        assert len(events) == 1
        assert events[0]["oid"] == 1
        assert events[0]["key"] == b"a"
        assert events[0]["offset"] == 0

    def test_commit_and_abort_events(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        commits, aborts = [], []
        rt1.subscribe("commit", commits.append)
        rt1.subscribe("abort", aborts.append)
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        m1.put("k", 0)
        m1.get("k")
        rt1.run_transaction(lambda: m1.put("k", 1))  # write-only: commits
        # A conflicting transaction aborts.
        rt1.begin_tx()
        _ = m1.get("k")
        m1.put("k", 2)
        m2.put("k", 99)
        assert rt1.end_tx() is False
        assert len(aborts) == 1
        assert "tx_id" in aborts[0] and "offset" in aborts[0]
        assert len(commits) >= 1

    def test_consumer_sees_commit_events_too(self, make_runtime):
        """Decisions are per-client: consumers emit for consumed txes."""
        rt1, rt2 = make_runtime(), make_runtime()
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        seen = []
        rt2.subscribe("commit", seen.append)
        rt1.run_transaction(lambda: m1.put("k", 1))
        m2.get("k")  # plays the commit record
        assert len(seen) == 1

    def test_decision_events(self, make_runtime):
        class Marked(TangoMap):
            needs_decision_record = True

        rt1, rt2 = make_runtime(), make_runtime()
        decisions = []
        rt1.subscribe("decision", decisions.append)
        private = Marked(rt1, oid=1)
        lst1 = TangoList(rt1, oid=2)
        TangoList(rt2, oid=2)
        private.put("g", 1)
        private.get("g")

        def tx():
            _ = private.get("g")
            lst1.append("x")

        rt1.run_transaction(tx)
        assert decisions == [{"tx_id": decisions[0]["tx_id"], "committed": True}]

    def test_checkpoint_events(self, make_runtime):
        rt = make_runtime()
        events = []
        rt.subscribe("checkpoint", events.append)
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        offset = rt.checkpoint(1)
        assert events == [
            {"oid": 1, "offset": offset, "covers": 0, "delta": False}
        ]

    def test_multiple_subscribers(self, make_runtime):
        rt = make_runtime()
        a, b = [], []
        rt.subscribe("apply", a.append)
        rt.subscribe("apply", b.append)
        m = TangoMap(rt, oid=1)
        m.put("k", 1)
        m.get("k")
        assert len(a) == len(b) == 1

    def test_no_subscribers_no_overhead_path(self, make_runtime):
        """The hot path skips emission entirely with no subscribers."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("k", 1)
        m.get("k")  # must simply not raise / not emit

    def test_metrics_pattern(self, make_runtime):
        """The intended usage: cheap counters."""
        rt = make_runtime()
        applied_by_oid = {}
        rt.subscribe(
            "apply",
            lambda p: applied_by_oid.__setitem__(
                p["oid"], applied_by_oid.get(p["oid"], 0) + 1
            ),
        )
        m1, m2 = TangoMap(rt, oid=1), TangoMap(rt, oid=2)
        m1.put("a", 1)
        m2.put("b", 2)
        m2.put("c", 3)
        m1.get("a")  # plays to m1's marker only
        m2.get("c")  # plays the rest
        assert applied_by_oid == {1: 1, 2: 2}
