"""Soak: disk and client memory stay bounded while the log grows 100x."""

import os
import tracemalloc

import pytest

from repro.corfu.durable import DurableFlashUnit, open_durable_cluster
from repro.errors import TrimmedError
from repro.objects import TangoMap
from repro.store import CompactionPolicy, SegmentedFlashUnit
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime


def _segment_files(data_dir):
    count = 0
    for entry in os.listdir(data_dir):
        store_dir = os.path.join(data_dir, entry)
        if entry.endswith(".store") and os.path.isdir(store_dir):
            count += sum(
                1 for n in os.listdir(store_dir) if n.endswith(".seg")
            )
    return count


@pytest.mark.slow
def test_soak_log_grows_100x_with_bounded_disk_and_memory(tmp_path):
    data_dir = str(tmp_path / "cluster")
    cluster = open_durable_cluster(
        data_dir,
        num_sets=2,
        replication_factor=2,
        segment_bytes=4096,
        sync=False,  # a soak is about space bounds, not fsync latency
        compaction_policy=CompactionPolicy(
            min_garbage_ratio=0.3, min_dead_bytes=256
        ),
    )
    rt = TangoRuntime(
        cluster, client_id=1, name="soak", memory_budget=256 * 1024
    )
    directory = TangoDirectory(rt)
    m = directory.open(TangoMap, "working-set")
    client = cluster.client()

    def one_round(i):
        for k in range(20):  # fixed-size working set, ever-churning values
            m.put(f"k{k}", i * 1000 + k)
        m.size()
        offset = rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        directory.gc()
        client.compact()
        return offset

    base_offset = max(one_round(0), 1)
    one_round(1)  # warm up eviction/compaction paths before measuring
    tracemalloc.start()
    warm_mem, _peak = tracemalloc.get_traced_memory()
    warm_files = _segment_files(data_dir)

    offset = base_offset
    rounds = 2
    while offset < 100 * base_offset:
        offset = one_round(rounds)
        rounds += 1

    final_mem, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    final_files = _segment_files(data_dir)

    # The log really grew two orders of magnitude...
    assert offset >= 100 * base_offset
    assert rounds > 50
    # ...while the segment-file population stayed flat-ish: bounded by
    # compaction, not by how much history ever existed. Uncompacted,
    # this run leaves hundreds of 4 KiB segments behind.
    assert final_files <= max(2 * warm_files, 24)
    # ...and client-side memory did not scale with log length either:
    # version eviction + the stream-cache byte budget keep the resident
    # set proportional to the working set, not to the offset space.
    assert final_mem <= warm_mem + 2 * 1024 * 1024
    # The view itself is still correct after all that churn.
    last = rounds - 1
    assert m.get("k7") == last * 1000 + 7
    # And history below the forget horizon is genuinely gone from disk.
    with pytest.raises(TrimmedError):
        client.read(0)


def test_flat_and_segmented_replay_identically(tmp_path):
    """The same intention frames rebuild the same unit either way."""
    flat = str(tmp_path / "unit.flash")
    unit = DurableFlashUnit("u", flat)
    for addr in range(50):
        unit.write(addr, b"payload-%03d" % addr, epoch=0)
    unit.trim_prefix(10, epoch=0)
    unit.trim(17, epoch=0)
    unit.trim(23, epoch=0)
    unit.seal(2)
    unit.write(50, b"after-seal", epoch=2)
    unit.close()

    # Reopen the flat file directly (the old format stays readable)...
    flat_unit = DurableFlashUnit("u", flat)
    # ...and migrate a copy of the same frames into a segment store.
    import shutil

    flat_copy = str(tmp_path / "copy.flash")
    shutil.copyfile(flat, flat_copy)
    seg_unit = SegmentedFlashUnit(
        "u", str(tmp_path / "u.store"), migrate_flat=flat_copy
    )

    assert seg_unit.epoch == flat_unit.epoch == 2
    for addr in range(51):
        if addr < 10 or addr in (17, 23):
            for u in (flat_unit, seg_unit):
                with pytest.raises(TrimmedError):
                    u.read(addr, epoch=2)
        else:
            assert seg_unit.read(addr, epoch=2) == flat_unit.read(
                addr, epoch=2
            )
    flat_unit.close()
    seg_unit.close()

    # The segmented copy still matches after its own reopen cycle.
    reopened = SegmentedFlashUnit("u", str(tmp_path / "u.store"))
    assert reopened.read(50, epoch=2) == b"after-seal"
    assert reopened.read(30, epoch=2) == b"payload-030"
    with pytest.raises(TrimmedError):
        reopened.read(5, epoch=2)
    reopened.close()
