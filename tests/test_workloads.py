"""Tests for the benchmark workload generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.workloads import KeyChooser, TxShape


class TestKeyChooser:
    def test_uniform_range(self):
        chooser = KeyChooser(100, "uniform", seed=1)
        for _ in range(500):
            assert 0 <= chooser.choose() < 100

    def test_zipf_range(self):
        chooser = KeyChooser(100, "zipf", seed=1)
        for _ in range(500):
            assert 0 <= chooser.choose() < 100

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            KeyChooser(100, "pareto")

    def test_deterministic_by_seed(self):
        a = KeyChooser(1000, "zipf", seed=7)
        b = KeyChooser(1000, "zipf", seed=7)
        assert [a.choose() for _ in range(50)] == [b.choose() for _ in range(50)]

    def test_zipf_is_skewed_uniform_is_not(self):
        def top_share(chooser, n=5000):
            counts = {}
            for _ in range(n):
                k = chooser.choose()
                counts[k] = counts.get(k, 0) + 1
            return max(counts.values()) / n

        zipf = top_share(KeyChooser(1000, "zipf", seed=2))
        uniform = top_share(KeyChooser(1000, "uniform", seed=2))
        assert zipf > 5 * uniform

    def test_choose_distinct(self):
        chooser = KeyChooser(1000, "uniform", seed=3)
        keys = chooser.choose_distinct(6)
        assert len(keys) == 6
        assert len(set(keys)) == 6

    def test_choose_distinct_tiny_universe(self):
        """A universe smaller than the request degrades, not hangs."""
        chooser = KeyChooser(2, "uniform", seed=4)
        keys = chooser.choose_distinct(6)
        assert len(keys) == 6

    @given(st.integers(min_value=1, max_value=10_000))
    def test_any_universe_size(self, n):
        chooser = KeyChooser(n, "uniform", seed=5)
        assert 0 <= chooser.choose() < n


class TestTxShape:
    def test_default_shape_is_3_reads_3_writes(self):
        """Figure 9: "each transaction reads three keys and writes
        three other keys"."""
        shape = TxShape()
        reads, writes = shape.sample(KeyChooser(10_000, "uniform", seed=6))
        assert len(reads) == 3
        assert len(writes) == 3
        assert not set(reads) & set(writes)

    def test_custom_shape(self):
        shape = TxShape(reads=1, writes=2)
        reads, writes = shape.sample(KeyChooser(100, "uniform", seed=7))
        assert (len(reads), len(writes)) == (1, 2)
