"""Tests for the batched read path and its concurrency fixes.

Covers the full stack: ``FlashUnit.read_many`` / ``ChainReplicator``
batched tail reads, ``CorfuClient.read_many`` grouping + partial
results, ``append_batch`` single-grant reservations, the stream layer's
single-flight fetch, batched sync/scan/playback prefetch, counter
thread-safety, and cache eviction on trim.
"""

import threading

import pytest

from repro.corfu import CorfuCluster
from repro.corfu.entry import LogEntry
from repro.errors import TrimmedError, UnwrittenError
from repro.streams import StreamClient


@pytest.fixture
def client(cluster):
    return cluster.client()


def _storage_rpcs(client, cluster) -> int:
    """Total delivered RPCs across the storage nodes."""
    stats = client.net_stats()
    return sum(
        stats[n]["rpcs"]
        for n in cluster.projection.all_nodes()
        if n in stats
    )


class TestReadMany:
    def test_mixed_outcomes_are_data(self, cluster, client):
        """Holes and trimmed offsets come back as error instances, not
        raises — per-offset conditions never fail the batch."""
        client.append(b"zero")  # 0
        cluster.sequencer().increment()  # hole at 1
        client.append(b"two")  # 2
        client.append(b"three")  # 3
        client.trim(3)
        outcomes = client.read_many([0, 1, 2, 3])
        assert outcomes[0].payload == b"zero"
        assert isinstance(outcomes[1], UnwrittenError)
        assert outcomes[2].payload == b"two"
        assert isinstance(outcomes[3], TrimmedError)

    def test_empty_batch(self, client):
        assert client.read_many([]) == {}

    def test_duplicate_offsets_collapse(self, client):
        client.append(b"a")
        outcomes = client.read_many([0, 0, 0])
        assert list(outcomes) == [0]
        assert outcomes[0].payload == b"a"

    def test_matches_single_reads(self, client):
        offsets = [client.append(b"e%d" % i) for i in range(9)]
        outcomes = client.read_many(offsets)
        for off in offsets:
            assert outcomes[off].payload == client.read(off).payload

    def test_one_rpc_per_chain(self, cluster, client):
        """Offsets grouped by replica set: each chain's tail sees one
        read_many RPC, however many offsets it owns."""
        offsets = [client.append(b"e%d" % i) for i in range(12)]
        before = _storage_rpcs(client, cluster)
        client.read_many(offsets)
        delta = _storage_rpcs(client, cluster) - before
        # 3 chains, 12 fully replicated entries: 3 tail RPCs total.
        assert delta == len(cluster.projection.replica_sets) == 3

    def test_counters(self, cluster, client):
        offsets = [client.append(b"e%d" % i) for i in range(6)]
        cluster.sequencer().increment()  # hole at 6
        reads0 = client.reads
        client.read_many(offsets + [6])
        # reads counts entries actually served; the hole is not a read.
        assert client.reads - reads0 == 6
        assert client.batched_reads == len(cluster.projection.replica_sets)
        assert client.batched_read_offsets == 7

    def test_net_stats_expose_batch_counters(self, cluster, client):
        offsets = [client.append(b"e%d" % i) for i in range(6)]
        client.read_many(offsets)
        stats = client.net_stats()
        tails = [rs.tail for rs in cluster.projection.replica_sets]
        assert sum(stats[t]["batch_rpcs"] for t in tails) == 3
        assert sum(stats[t]["batch_offsets"] for t in tails) == 6

    def test_read_repair_through_batch(self, cluster, client):
        """An in-flight write (head written, tail not) is completed by
        the batched read, same as the single-offset path."""
        client.append(b"committed")  # 0
        rset, address = cluster.projection.map_offset(0)
        # Simulate an in-flight write at offset 3 (same chain as 0 in a
        # 3-chain cluster): write the head replica only.
        for _ in range(3):
            cluster.sequencer().increment()
        raw = LogEntry(headers=(), payload=b"inflight").encode(
            3, cluster.k, cluster.max_streams
        )
        rset3, address3 = cluster.projection.map_offset(3)
        cluster.storage(rset3.head).write(
            address3, raw, cluster.projection.epoch
        )
        outcomes = client.read_many([0, 3])
        assert outcomes[3].payload == b"inflight"
        # Repair is durable: the tail now holds the entry.
        assert (
            cluster.storage(rset3.tail).read(
                address3, cluster.projection.epoch
            )
            == raw
        )


class TestAppendBatch:
    def test_contiguous_offsets_one_grant(self, cluster, client):
        seq = cluster.sequencer()
        inc0, issued0 = seq.increments, seq.offsets_issued
        offsets = client.append_batch([b"a", b"b", b"c"], (1,))
        assert offsets == [0, 1, 2]
        assert seq.increments - inc0 == 1
        assert seq.offsets_issued - issued0 == 3
        assert client.appends == 3

    def test_empty_batch(self, client):
        assert client.append_batch([], (1,)) == []

    def test_stream_walk_sees_batched_entries(self, cluster, client):
        """Batch backpointers chain through batch predecessors: a cold
        sync discovers exactly the same linked list as sequential
        appends would have produced."""
        client.append(b"pre", (1,))
        client.append_batch([b"b%d" % i for i in range(6)], (1,))
        client.append(b"post", (1,))
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        sclient.sync(1)
        assert sclient.known_offsets(1) == tuple(range(8))
        payloads = []
        while True:
            nxt = sclient.readnext(1)
            if nxt is None:
                break
            payloads.append(nxt[1].payload)
        assert payloads == [b"pre"] + [b"b%d" % i for i in range(6)] + [b"post"]

    def test_multi_stream_batch(self, cluster, client):
        client.append_batch([b"x", b"y"], (1, 2))
        sclient = StreamClient(cluster.client())
        for sid in (1, 2):
            sclient.open_stream(sid)
            sclient.sync(sid)
            assert sclient.known_offsets(sid) == (0, 1)


class TestSingleFlightFetch:
    def test_concurrent_misses_issue_one_rpc(self, cluster):
        """N threads racing a cold fetch of one offset must produce
        exactly one storage read; everyone shares the result."""
        corfu = cluster.client()
        sclient = StreamClient(corfu)
        offset = corfu.append(b"shared")
        n = 8
        barrier = threading.Barrier(n)
        results = [None] * n
        errors = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = sclient.fetch(offset)
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        reads0 = corfu.reads
        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert corfu.reads - reads0 == 1
        assert all(r is results[0] for r in results)
        assert results[0].payload == b"shared"

    def test_hole_handler_runs_once_under_race(self, cluster):
        """Concurrent fetches of a hole trigger exactly one fill."""
        corfu = cluster.client()
        cluster.sequencer().increment()  # hole at 0
        calls = []
        lock = threading.Lock()

        def handler(offset):
            with lock:
                calls.append(offset)
            corfu.fill(offset)

        sclient = StreamClient(corfu, hole_handler=handler)
        n = 6
        barrier = threading.Barrier(n)
        results = [None] * n
        errors = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = sclient.fetch(0)
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert calls == [0]
        assert all(r.is_junk for r in results)

    def test_failed_fetch_propagates_to_waiters(self, cluster):
        """If the owner's fetch surfaces a hole (handler declines to
        fill), every waiter sees the same UnwrittenError."""
        corfu = cluster.client()
        cluster.sequencer().increment()  # hole at 0
        sclient = StreamClient(corfu, hole_handler=lambda off: None)
        n = 4
        barrier = threading.Barrier(n)
        outcomes = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                sclient.fetch(0)
            except UnwrittenError as exc:
                with lock:
                    outcomes.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outcomes) == n


class TestCounterThreadSafety:
    def test_append_counter_exact_under_threads(self, cluster):
        corfu = cluster.client()
        n_threads, per_thread = 6, 10

        def worker(i):
            for j in range(per_thread):
                corfu.append(b"t%d-%d" % (i, j))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert corfu.appends == n_threads * per_thread

    def test_read_counter_exact_under_threads(self, cluster):
        corfu = cluster.client()
        offsets = [corfu.append(b"e%d" % i) for i in range(30)]
        corfu_reader = cluster.client()

        def worker(chunk):
            for off in chunk:
                corfu_reader.read(off)

        threads = [
            threading.Thread(target=worker, args=(offsets[i::3],))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert corfu_reader.reads == len(offsets)


class TestCacheTrimEviction:
    def test_trim_evicts_single_offset(self, cluster):
        corfu = cluster.client()
        sclient = StreamClient(corfu)
        offsets = [corfu.append(b"e%d" % i) for i in range(4)]
        for off in offsets:
            sclient.fetch(off)
        assert sclient.cache_size == 4
        corfu.trim(2)
        assert 2 not in sclient.cached_offsets()
        assert sclient.cache_size == 3
        # A re-fetch observes the trim (junk), not the stale payload.
        assert sclient.fetch(2).is_junk

    def test_trim_prefix_evicts_below(self, cluster):
        corfu = cluster.client()
        sclient = StreamClient(corfu)
        for i in range(6):
            corfu.append(b"e%d" % i)
        for off in range(6):
            sclient.fetch(off)
        corfu.trim_prefix(4)
        assert sclient.cached_offsets() == (4, 5)

    def test_trim_by_other_client_handle_does_not_evict(self, cluster):
        """Eviction keys off the subscribed client: a different client's
        trim is invisible until the cache misses naturally (documented
        limitation — GC runs through the owning runtime's client)."""
        corfu = cluster.client()
        sclient = StreamClient(corfu)
        corfu.append(b"a")
        sclient.fetch(0)
        other = cluster.client()
        other.trim(0)
        assert sclient.cached_offsets() == (0,)


class TestBatchedSync:
    def test_windowed_cold_sync_slashes_rpcs(self):
        """Cold sync with a prefetch window issues >=4x fewer storage
        RPCs than the per-offset walk over identical contents."""
        n = 256
        window = 64

        def build(cluster):
            writer = cluster.client()
            for i in range(n):
                writer.append(b"e%d" % i, (1,))

        plain_cluster = CorfuCluster(num_sets=2, replication_factor=2)
        build(plain_cluster)
        plain_reader = plain_cluster.client()
        plain = StreamClient(plain_reader)
        plain.open_stream(1)
        before = _storage_rpcs(plain_reader, plain_cluster)
        plain.sync(1)
        plain_rpcs = _storage_rpcs(plain_reader, plain_cluster) - before

        batch_cluster = CorfuCluster(num_sets=2, replication_factor=2)
        build(batch_cluster)
        batch_reader = batch_cluster.client()
        batched = StreamClient(batch_reader, prefetch_window=window)
        batched.open_stream(1)
        before = _storage_rpcs(batch_reader, batch_cluster)
        batched.sync(1)
        batch_rpcs = _storage_rpcs(batch_reader, batch_cluster) - before

        assert batched.known_offsets(1) == plain.known_offsets(1)
        assert plain_rpcs >= 4 * batch_rpcs

    def test_windowed_sync_delivers_identical_entries(self, cluster):
        writer = cluster.client()
        for i in range(40):
            writer.append(b"e%d" % i, (1,) if i % 3 else (2,))
        batched = StreamClient(cluster.client(), prefetch_window=16)
        batched.open_stream(1)
        batched.sync(1)
        plain = StreamClient(cluster.client())
        plain.open_stream(1)
        plain.sync(1)
        assert batched.known_offsets(1) == plain.known_offsets(1)
        for off in plain.known_offsets(1):
            assert batched.fetch(off).payload == plain.fetch(off).payload

    def test_windowed_sync_with_holes(self, cluster):
        """Holes inside a speculative window are skipped by the batch
        and resolved per-offset with the hole handler."""
        writer = cluster.client()
        for i in range(10):
            writer.append(b"e%d" % i, (1,))
        cluster.sequencer().increment()  # hole at 10
        for i in range(10, 20):
            writer.append(b"e%d" % i, (1,))
        batched = StreamClient(cluster.client(), prefetch_window=16)
        batched.open_stream(1)
        batched.sync(1)
        assert batched.known_offsets(1) == tuple(
            o for o in range(21) if o != 10
        )

    def test_fetch_many_handles_holes_and_trims(self, cluster):
        corfu = cluster.client()
        corfu.append(b"zero", (1,))
        cluster.sequencer().increment()  # hole at 1
        corfu.append(b"two", (1,))
        corfu.trim(0)
        sclient = StreamClient(corfu)
        entries = sclient.fetch_many([0, 1, 2])
        assert entries[0].is_junk  # trimmed -> junk
        assert entries[1].is_junk  # hole -> filled by the handler
        assert entries[2].payload == b"two"
        assert corfu.fills == 1
