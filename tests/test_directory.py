"""Tests for the Tango object directory (naming + GC)."""

import pytest

from repro.errors import TrimmedError, UnknownObjectError
from repro.objects import TangoMap, TangoRegister
from repro.tango.directory import DIRECTORY_OID, TangoDirectory


class TestNaming:
    def test_lookup_missing(self, make_client):
        _rt, directory = make_client()
        assert directory.lookup("nope") is None

    def test_get_or_create_assigns_oid(self, make_client):
        _rt, directory = make_client()
        oid = directory.get_or_create("widgets")
        assert oid >= 1  # 0 is the directory itself
        assert directory.lookup("widgets") == oid

    def test_get_or_create_is_stable(self, make_client):
        _rt, directory = make_client()
        assert directory.get_or_create("x") == directory.get_or_create("x")

    def test_names_unique_oids(self, make_client):
        _rt, directory = make_client()
        oids = {directory.get_or_create(f"name-{i}") for i in range(10)}
        assert len(oids) == 10

    def test_names_replicated_across_clients(self, make_client):
        _rt1, d1 = make_client()
        _rt2, d2 = make_client()
        oid = d1.get_or_create("shared-name")
        assert d2.get_or_create("shared-name") == oid

    def test_interleaved_creates_never_collide(self, make_client):
        """Clients alternating creates get globally unique OIDs."""
        _rt1, d1 = make_client()
        _rt2, d2 = make_client()
        oids = []
        for i in range(6):
            directory = d1 if i % 2 == 0 else d2
            oids.append(directory.get_or_create(f"obj-{i}"))
        assert len(set(oids)) == 6

    def test_remove(self, make_client):
        _rt, directory = make_client()
        directory.get_or_create("temp")
        directory.remove("temp")
        assert directory.lookup("temp") is None

    def test_removed_name_gets_fresh_oid(self, make_client):
        _rt, directory = make_client()
        old = directory.get_or_create("temp")
        directory.remove("temp")
        new = directory.get_or_create("temp")
        assert new != old  # OIDs are never recycled

    def test_names_listing(self, make_client):
        _rt, directory = make_client()
        directory.get_or_create("b")
        directory.get_or_create("a")
        assert directory.names() == ("a", "b")

    def test_directory_oid_is_hardcoded(self, make_client):
        _rt, directory = make_client()
        assert directory.oid == DIRECTORY_OID == 0


class TestOpen:
    def test_open_instantiates_class(self, make_client):
        rt, directory = make_client()
        obj = directory.open(TangoRegister, "reg")
        obj.write(1)
        assert obj.read() == 1

    def test_open_same_name_returns_existing_view(self, make_client):
        _rt, directory = make_client()
        a = directory.open(TangoRegister, "reg")
        b = directory.open(TangoRegister, "reg")
        assert a is b

    def test_open_wrong_class_rejected(self, make_client):
        _rt, directory = make_client()
        directory.open(TangoRegister, "reg")
        with pytest.raises(UnknownObjectError):
            directory.open(TangoMap, "reg")

    def test_open_same_name_different_clients(self, make_client):
        _rt1, d1 = make_client()
        _rt2, d2 = make_client()
        r1 = d1.open(TangoRegister, "reg")
        r2 = d2.open(TangoRegister, "reg")
        r1.write("hello")
        assert r2.read() == "hello"


class TestGarbageCollection:
    def test_forget_offsets_replicated(self, make_client):
        _rt1, d1 = make_client()
        _rt2, d2 = make_client()
        oid = d1.get_or_create("obj")
        d1.forget(oid, 50)
        assert d2.forget_offset(oid) == 50

    def test_forget_is_monotone(self, make_client):
        _rt, directory = make_client()
        oid = directory.get_or_create("obj")
        directory.forget(oid, 50)
        directory.forget(oid, 30)  # lower offsets cannot re-pin history
        assert directory.forget_offset(oid) == 50

    def test_gc_pinned_by_object_without_forget(self, make_client):
        """An object that never forgets pins the whole log."""
        _rt, directory = make_client()
        directory.open(TangoMap, "a")
        oid_b = directory.get_or_create("b")
        directory.forget(oid_b, 100)
        assert directory.gc() == 0

    def test_gc_trims_to_minimum(self, make_client):
        rt, directory = make_client()
        m = directory.open(TangoMap, "a")
        for i in range(10):
            m.put(f"k{i}", i)
        rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        trim_point = directory.gc()
        assert trim_point > 0
        with pytest.raises(TrimmedError):
            rt.streams.corfu.read(0)

    def test_fresh_client_after_gc(self, make_client):
        """Post-GC reconstruction goes through checkpoints."""
        rt, directory = make_client()
        m = directory.open(TangoMap, "a")
        for i in range(10):
            m.put(f"k{i}", i)
        rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        assert directory.gc() > 0
        _rt2, d2 = make_client()
        fresh = d2.open(TangoMap, "a")
        assert fresh.size() == 10
        assert fresh.get("k5") == 5

    def test_gc_preserves_everything_still_needed(self, make_client):
        """Updates after the checkpoint survive GC and reach fresh views."""
        rt, directory = make_client()
        m = directory.open(TangoMap, "a")
        m.put("old", 1)
        rt.checkpoint_and_forget(m.oid, directory)
        m.put("new", 2)  # after the cover: must survive
        rt.checkpoint_and_forget(directory.oid, directory)
        directory.gc()
        _rt2, d2 = make_client()
        fresh = d2.open(TangoMap, "a")
        assert fresh.get("old") == 1
        assert fresh.get("new") == 2
