"""Per-object behaviour tests for the standard library of Tango objects."""

import pytest

from repro.objects import (
    TangoCounter,
    TangoIndexedMap,
    TangoList,
    TangoMap,
    TangoQueue,
    TangoRegister,
    TangoTreeSet,
)


class TestRegister:
    def test_initial_value(self, make_runtime):
        reg = TangoRegister(make_runtime(), oid=1)
        assert reg.read() is None

    def test_write_read(self, make_runtime):
        reg = TangoRegister(make_runtime(), oid=1)
        reg.write({"nested": [1, 2, 3]})
        assert reg.read() == {"nested": [1, 2, 3]}

    def test_last_write_wins(self, make_runtime):
        reg = TangoRegister(make_runtime(), oid=1)
        for i in range(5):
            reg.write(i)
        assert reg.read() == 4

    def test_checkpoint_round_trip(self, make_runtime):
        reg = TangoRegister(make_runtime(), oid=1)
        reg.write("state")
        reg.read()
        other = TangoRegister(make_runtime(), oid=2)
        other.load_checkpoint(reg.get_checkpoint())
        assert other._state == "state"


class TestCounter:
    def test_increment_decrement(self, make_runtime):
        ctr = TangoCounter(make_runtime(), oid=1)
        ctr.increment()
        ctr.increment(5)
        ctr.decrement(2)
        assert ctr.value() == 4

    def test_set(self, make_runtime):
        ctr = TangoCounter(make_runtime(), oid=1)
        ctr.set(100)
        ctr.increment()
        assert ctr.value() == 101

    def test_increments_commute_across_clients(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        c1, c2 = TangoCounter(rt1, oid=1), TangoCounter(rt2, oid=1)
        c1.increment(10)
        c2.increment(20)
        assert c1.value() == c2.value() == 30

    def test_next_id_unique_across_clients(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        c1, c2 = TangoCounter(rt1, oid=1), TangoCounter(rt2, oid=1)
        ids = [c1.next_id(), c2.next_id(), c1.next_id(), c2.next_id()]
        assert ids == [0, 1, 2, 3]


class TestMap:
    def test_put_get_remove(self, make_runtime):
        m = TangoMap(make_runtime(), oid=1)
        m.put("a", [1, 2])
        assert m.get("a") == [1, 2]
        m.remove("a")
        assert m.get("a") is None
        assert m.get("a", default="gone") == "gone"

    def test_contains_size_keys_items(self, make_runtime):
        m = TangoMap(make_runtime(), oid=1)
        m.put("a", 1)
        m.put("b", 2)
        assert m.contains("a")
        assert not m.contains("z")
        assert m.size() == 2
        assert sorted(m.keys()) == ["a", "b"]
        assert dict(m.items()) == {"a": 1, "b": 2}

    def test_clear(self, make_runtime):
        m = TangoMap(make_runtime(), oid=1)
        m.put("a", 1)
        m.clear()
        assert m.size() == 0

    def test_remove_absent_is_noop(self, make_runtime):
        m = TangoMap(make_runtime(), oid=1)
        m.remove("never-there")
        assert m.size() == 0


class TestIndexedMap:
    def test_view_stores_offsets_not_values(self, make_runtime):
        """Section 3.1: the view is an index over log-structured storage."""
        m = TangoIndexedMap(make_runtime(), oid=1)
        m.put("a", "big-value")
        assert m.get("a") == "big-value"
        offset = m.offset_of("a")
        assert isinstance(offset, int) and offset >= 0
        assert m._index == {"a": offset}  # no value in RAM

    def test_get_issues_random_read(self, make_runtime):
        rt = make_runtime()
        m = TangoIndexedMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")  # warm
        reads_before = rt.streams.corfu.reads
        # Evict the entry from the stream cache to force a log read.
        rt.streams._cache.clear()
        assert m.get("a") == 1
        assert rt.streams.corfu.reads > reads_before

    def test_overwrite_moves_index(self, make_runtime):
        m = TangoIndexedMap(make_runtime(), oid=1)
        m.put("a", "v1")
        first = m.offset_of("a")
        m.put("a", "v2")
        assert m.offset_of("a") > first
        assert m.get("a") == "v2"

    def test_remove(self, make_runtime):
        m = TangoIndexedMap(make_runtime(), oid=1)
        m.put("a", 1)
        m.remove("a")
        assert m.get("a") is None
        assert m.size() == 0

    def test_indexed_get_of_transactional_put(self, make_runtime):
        """Inline TX updates are dereferenced via the commit record."""
        rt = make_runtime()
        m = TangoIndexedMap(rt, oid=1)
        rt.begin_tx()
        m.put("a", "tx-value")
        assert rt.end_tx() is True
        assert m.get("a") == "tx-value"


class TestList:
    def test_append_and_read(self, make_runtime):
        lst = TangoList(make_runtime(), oid=1)
        lst.append("a")
        lst.append("b")
        assert lst.to_list() == ("a", "b")
        assert lst.get(1) == "b"
        assert lst.head() == "a"
        assert lst.size() == 2
        assert lst.contains("a")

    def test_insert_clamps(self, make_runtime):
        lst = TangoList(make_runtime(), oid=1)
        lst.append("a")
        lst.insert(99, "z")  # beyond the end: clamp to append
        lst.insert(-5, "x")  # before the start: clamp to prepend
        assert lst.to_list() == ("x", "a", "z")

    def test_remove_value(self, make_runtime):
        lst = TangoList(make_runtime(), oid=1)
        for v in ("a", "b", "a"):
            lst.append(v)
        lst.remove_value("a")
        assert lst.to_list() == ("b", "a")
        lst.remove_value("never")  # no-op
        assert lst.size() == 2

    def test_take_head_exactly_once(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        l1, l2 = TangoList(rt1, oid=1), TangoList(rt2, oid=1)
        for i in range(4):
            l1.append(i)
        taken = [l1.take_head(), l2.take_head(), l1.take_head(), l2.take_head()]
        assert taken == [0, 1, 2, 3]
        assert l1.take_head() is None

    def test_clear(self, make_runtime):
        lst = TangoList(make_runtime(), oid=1)
        lst.append(1)
        lst.clear()
        assert lst.to_list() == ()


class TestTreeSet:
    def test_sorted_order(self, make_runtime):
        ts = TangoTreeSet(make_runtime(), oid=1)
        for v in (5, 1, 3, 2, 4):
            ts.add(v)
        assert ts.to_list() == (1, 2, 3, 4, 5)

    def test_duplicates_ignored(self, make_runtime):
        ts = TangoTreeSet(make_runtime(), oid=1)
        ts.add(1)
        ts.add(1)
        assert ts.size() == 1

    def test_first_last(self, make_runtime):
        ts = TangoTreeSet(make_runtime(), oid=1)
        assert ts.first() is None and ts.last() is None
        for v in (10, 30, 20):
            ts.add(v)
        assert ts.first() == 10
        assert ts.last() == 30

    def test_floor_ceiling(self, make_runtime):
        ts = TangoTreeSet(make_runtime(), oid=1)
        for v in (10, 20, 30):
            ts.add(v)
        assert ts.floor(25) == 20
        assert ts.floor(20) == 20
        assert ts.floor(5) is None
        assert ts.ceiling(25) == 30
        assert ts.ceiling(30) == 30
        assert ts.ceiling(35) is None

    def test_range_query(self, make_runtime):
        """The ordered query a plain coordination service can't do."""
        ts = TangoTreeSet(make_runtime(), oid=1)
        for v in range(0, 100, 10):
            ts.add(v)
        assert ts.range(25, 65) == (30, 40, 50, 60)

    def test_discard(self, make_runtime):
        ts = TangoTreeSet(make_runtime(), oid=1)
        ts.add(1)
        ts.discard(1)
        ts.discard(99)  # absent: no-op
        assert not ts.contains(1)

    def test_string_elements(self, make_runtime):
        ts = TangoTreeSet(make_runtime(), oid=1)
        for name in ("carol", "alice", "bob"):
            ts.add(name)
        assert ts.to_list() == ("alice", "bob", "carol")


class TestQueue:
    def test_fifo_order(self, make_runtime):
        q = TangoQueue(make_runtime(), oid=1)
        for i in range(3):
            q.enqueue(i)
        assert [q.dequeue() for _ in range(3)] == [0, 1, 2]

    def test_dequeue_empty(self, make_runtime):
        q = TangoQueue(make_runtime(), oid=1)
        assert q.dequeue() is None

    def test_peek_does_not_consume(self, make_runtime):
        q = TangoQueue(make_runtime(), oid=1)
        q.enqueue("x")
        assert q.peek() == "x"
        assert q.size() == 1

    def test_concurrent_consumers_each_item_once(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        q1, q2 = TangoQueue(rt1, oid=1), TangoQueue(rt2, oid=1)
        for i in range(6):
            q1.enqueue(i)
        taken = []
        for i in range(6):
            consumer = q1 if i % 2 == 0 else q2
            taken.append(consumer.dequeue())
        assert sorted(taken) == list(range(6))
        assert q1.dequeue() is None

    def test_producer_without_view(self, make_runtime):
        """The paper's producer-consumer pattern (section 4.1)."""
        rt_prod, rt_cons = make_runtime(), make_runtime()
        producer = TangoQueue(rt_prod, oid=1, host_view=False)
        consumer = TangoQueue(rt_cons, oid=1)
        producer.enqueue("job")
        assert consumer.dequeue() == "job"

    def test_producer_view_accessors_rejected(self, make_runtime):
        from repro.errors import TangoError

        producer = TangoQueue(make_runtime(), oid=1, host_view=False)
        with pytest.raises(TangoError):
            producer.peek()


class TestCheckpointableObjects:
    @pytest.mark.parametrize(
        "cls,mutate,probe",
        [
            (TangoMap, lambda o: o.put("k", 1), lambda o: o._map),
            (TangoList, lambda o: o.append(1), lambda o: o._items),
            (TangoTreeSet, lambda o: o.add(1), lambda o: o._items),
            (TangoQueue, lambda o: o.enqueue(1), lambda o: o._items),
            (TangoCounter, lambda o: o.increment(), lambda o: o._value),
        ],
    )
    def test_checkpoint_state_round_trip(self, make_runtime, cls, mutate, probe):
        rt1, rt2 = make_runtime(), make_runtime()
        obj = cls(rt1, oid=1)
        mutate(obj)
        rt1.query_helper(1)
        clone = cls(rt2, oid=2)
        clone.load_checkpoint(obj.get_checkpoint())
        assert probe(clone) == probe(obj)
