"""tangolint rule tests: every rule fires on its bad fixture and stays
quiet on its good twin; suppressions, JSON output, and the CLI work."""

import json
import os
import subprocess
import sys

import pytest

from repro.tools.discovery import iter_python_files, module_name_for
from repro.tools.lint import (
    ALL_RULES,
    Severity,
    lint_paths,
    render_json,
    render_text,
    rules_by_id,
)
from repro.tools.lint.engine import PARSE_ERROR_ID, lint_file

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

RULE_IDS = [rule.rule_id for rule in ALL_RULES]


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def finding_ids(path: str):
    return [d.rule_id for d in lint_paths([path])]


# ---------------------------------------------------------------------------
# each rule fires on its bad fixture, not on its good one
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fires_on_bad_fixture(rule_id):
    path = fixture(f"{rule_id.lower()}_bad.py")
    ids = finding_ids(path)
    assert rule_id in ids, f"{rule_id} did not fire on {path}: {ids}"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    path = fixture(f"{rule_id.lower()}_good.py")
    ids = finding_ids(path)
    assert ids == [], f"good fixture {path} produced findings: {ids}"


def test_bad_fixtures_fire_only_their_own_rule():
    for rule_id in RULE_IDS:
        ids = set(finding_ids(fixture(f"{rule_id.lower()}_bad.py")))
        assert ids == {rule_id}, (
            f"{rule_id} bad fixture produced cross-rule findings: {ids}"
        )


def test_expected_finding_counts():
    # The bad fixtures each contain a known number of violations.
    assert len(finding_ids(fixture("tl001_bad.py"))) == 3
    assert len(finding_ids(fixture("tl003_bad.py"))) == 3
    assert len(finding_ids(fixture("tl005_bad.py"))) == 2
    assert len(finding_ids(fixture("tl006_bad.py"))) == 2
    assert len(finding_ids(fixture("tl009_bad.py"))) == 2


# ---------------------------------------------------------------------------
# parse failures, suppressions
# ---------------------------------------------------------------------------


def test_unparsable_file_reports_tl000():
    findings = lint_paths([fixture("tl000_bad.py")])
    assert [d.rule_id for d in findings] == [PARSE_ERROR_ID]
    assert findings[0].severity is Severity.ERROR


def test_inline_suppressions_silence_findings():
    assert finding_ids(fixture("suppressed.py")) == []


def test_suppression_is_rule_specific():
    # The same-line suppression names TL001 only; selecting a different
    # rule must not be affected, and stripping the comment must re-fire.
    source_path = fixture("suppressed.py")
    with open(source_path, "r", encoding="utf-8") as handle:
        stripped = "".join(
            line.split("# tangolint:")[0].rstrip() + "\n"
            for line in handle
        )
    unsuppressed = os.path.join(FIXTURES, "_stripped_tmp.py")
    with open(unsuppressed, "w", encoding="utf-8") as handle:
        handle.write(stripped)
    try:
        ids = finding_ids(unsuppressed)
        assert ids == ["TL001", "TL001", "TL001"]
    finally:
        os.remove(unsuppressed)


# ---------------------------------------------------------------------------
# engine API: selection, ordering, reporters
# ---------------------------------------------------------------------------


def test_select_restricts_rules():
    path = fixture("tl003_bad.py")
    assert lint_paths([path], select=["TL001"]) == []
    assert {d.rule_id for d in lint_paths([path], select=["TL003"])} == {"TL003"}


def test_findings_are_sorted_and_stable():
    findings = lint_paths([FIXTURES])
    assert findings == sorted(findings)
    assert findings == lint_paths([FIXTURES])  # deterministic


def test_render_text_shape():
    findings = lint_paths([fixture("tl008_bad.py")])
    text = render_text(findings)
    assert "tl008_bad.py" in text
    assert "TL008" in text
    assert "finding(s)" in text
    assert render_text([]) == "tangolint: no findings"


def test_render_json_schema():
    findings = lint_paths([fixture("tl007_bad.py")])
    payload = json.loads(render_json(findings))
    assert payload["version"] == 1
    assert payload["summary"]["total"] == len(findings) > 0
    assert payload["summary"]["errors"] >= 1
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "rule", "severity", "message"}
    assert first["rule"].startswith("TL")


def test_lint_file_with_explicit_rules():
    rule = rules_by_id()["TL008"]
    findings = lint_file(fixture("tl008_bad.py"), [rule])
    assert {d.rule_id for d in findings} == {"TL008"}


# ---------------------------------------------------------------------------
# discovery helpers (shared with the other tools)
# ---------------------------------------------------------------------------


def test_iter_python_files_dedups_and_sorts():
    files = list(iter_python_files([FIXTURES, fixture("tl001_bad.py")]))
    assert len(files) == len(set(files))
    assert all(f.endswith(".py") for f in files)
    assert any(f.endswith("tl001_bad.py") for f in files)


def test_module_name_for():
    assert module_name_for("src/repro/tango/runtime.py") == "repro.tango.runtime"
    assert module_name_for("src/repro/tools/lint/__init__.py") == (
        "repro.tools.lint"
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _run_cli(*args):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.tools.lint", *args],
        capture_output=True,
        text=True,
        env=env,
    )


def test_cli_exit_codes_and_json():
    clean = _run_cli(fixture("tl001_good.py"))
    assert clean.returncode == 0, clean.stderr
    assert "no findings" in clean.stdout

    dirty = _run_cli("--json", fixture("tl001_bad.py"))
    assert dirty.returncode == 1
    payload = json.loads(dirty.stdout)
    assert payload["summary"]["total"] == 3

    selected = _run_cli("--select", "TL007", fixture("tl001_bad.py"))
    assert selected.returncode == 0


def test_cli_list_rules_and_bad_args():
    listing = _run_cli("--list-rules")
    assert listing.returncode == 0
    for rule_id in RULE_IDS:
        assert rule_id in listing.stdout

    unknown = _run_cli("--select", "TL999", fixture("tl001_good.py"))
    assert unknown.returncode == 2

    missing = _run_cli("no/such/path.py")
    assert missing.returncode == 2
