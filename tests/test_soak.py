"""Soak test: every feature together, at modest scale, end to end.

One long scenario exercising the cross-feature interactions no focused
test covers: multiple clients with partially overlapping hosting sets, a
dynamic hosting registry, batched updates, cross-object and
cross-partition transactions, mid-run infrastructure failures, a
compaction sweep, and finally fsck + full-state convergence checks.
"""

import pytest

from repro.corfu import CorfuCluster
from repro.objects import TangoList, TangoMap, TangoQueue
from repro.tango.directory import TangoDirectory
from repro.tango.hosting import HostingRegistry
from repro.tango.runtime import TangoRuntime
from repro.tools import check_log, compact_all


@pytest.mark.parametrize("seed", [1, 2])
def test_full_system_soak(seed):
    import random

    rng = random.Random(seed)
    cluster = CorfuCluster(num_sets=3, replication_factor=2)

    # --- topology: 3 clients with overlapping hosting sets ------------------
    runtimes = [
        TangoRuntime(cluster, client_id=i + 1, name=f"soak-{i}")
        for i in range(3)
    ]
    directories = [TangoDirectory(rt) for rt in runtimes]

    registry = directories[0].open(HostingRegistry, "hosting")
    registries = [registry] + [
        d.open(HostingRegistry, "hosting") for d in directories[1:]
    ]

    # Everyone hosts the work queue; each client hosts its own ledger
    # map; clients 0 and 1 share an inventory.
    queues = [d.open(TangoQueue, "work-queue") for d in directories]
    ledgers = [
        directories[i].open(TangoMap, f"ledger-{i}") for i in range(3)
    ]
    inventory0 = directories[0].open(TangoMap, "inventory")
    inventory1 = directories[1].open(TangoMap, "inventory")

    for i, (rt, d) in enumerate(zip(runtimes, directories)):
        hosted = [registry.oid, queues[i].oid, ledgers[i].oid]
        if i in (0, 1):
            hosted.append(inventory0.oid)
        registries[i].announce(rt.name, hosted)
        rt.use_hosting_registry(registries[i])

    inventory0.put("widgets", 100)
    inventory0.get("widgets")
    inventory1.get("widgets")

    # --- phase 1: batched production into the queue -------------------------
    with runtimes[0].batch(size=4):
        for i in range(20):
            queues[0].enqueue({"job": i})
    assert queues[1].size() == 20

    # --- phase 2: mixed transactional consumption ---------------------------
    consumed = []
    for round_no in range(20):
        consumer = rng.randrange(3)
        rt, queue, ledger = runtimes[consumer], queues[consumer], ledgers[consumer]
        item = queue.dequeue()
        if item is not None:
            ledger.put(f"done-{item['job']}", consumer)
            consumed.append(item["job"])

        # Occasionally, a cross-object transaction touching the shared
        # inventory (clients 0/1) with decision records driven by the
        # registry.
        if consumer in (0, 1) and round_no % 4 == 0:
            inv = inventory0 if consumer == 0 else inventory1

            def spend(inv=inv, ledger=ledger, round_no=round_no):
                stock = inv.get("widgets")
                if stock > 0:
                    inv.put("widgets", stock - 1)
                    ledger.put(f"spent-{round_no}", stock)

            rt.run_transaction(spend)

    # --- phase 3: infrastructure failures mid-run ----------------------------
    victim = cluster.projection.replica_sets[1].head
    cluster.crash_storage(victim)
    queues[2].enqueue({"job": "after-storage-crash"})
    cluster.crash_sequencer(cluster.projection.sequencer)
    queues[0].enqueue({"job": "after-sequencer-crash"})

    # --- phase 4: drain and verify -------------------------------------------
    drained = []
    while True:
        item = queues[1].dequeue()
        if item is None:
            break
        drained.append(item["job"])
    assert sorted(consumed + drained, key=str) == sorted(
        list(range(20)) + ["after-storage-crash", "after-sequencer-crash"],
        key=str,
    )

    # Inventory math is exact despite races.
    spends = sum(
        1
        for ledger in ledgers
        for key in ledger.keys()
        if key.startswith("spent-")
    )
    assert inventory0.get("widgets") == 100 - spends
    assert inventory1.get("widgets") == 100 - spends

    # --- phase 5: compaction + fsck -----------------------------------------
    # Only client 0's hosted objects compact; others pin the log (fine).
    result = compact_all(runtimes[0], directories[0])
    assert "work-queue" in result["checkpointed"]
    report = check_log(cluster)
    assert report.healthy, (
        report.orphaned_txes,
        report.undecided_txes,
        report.bad_backpointers,
    )

    # --- phase 6: a cold observer reconstructs everything --------------------
    rt_new = TangoRuntime(cluster, client_id=99, name="late")
    d_new = TangoDirectory(rt_new)
    fresh_inventory = d_new.open(TangoMap, "inventory")
    assert fresh_inventory.get("widgets") == 100 - spends
    fresh_queue = d_new.open(TangoQueue, "work-queue")
    assert fresh_queue.size() == 0
    for i in range(3):
        fresh_ledger = d_new.open(TangoMap, f"ledger-{i}")
        assert dict(fresh_ledger.items()) == dict(ledgers[i].items())
