"""Tests for the `python -m repro.bench` command-line entry point."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_quick_single_figure(self, capsys):
        assert main(["--quick", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "kreq_per_sec" in out

    def test_multiple_figures(self, capsys):
        assert main(["--quick", "fig2", "sec5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "sequencer failover" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["nonsense"])
        assert excinfo.value.code != 0

    def test_functional_section(self, capsys):
        assert main(["--quick", "sec63"]) == 0
        out = capsys.readouterr().out
        assert "TangoZK" in out
