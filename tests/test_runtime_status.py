"""Tests for runtime introspection and the compaction sweep."""

import pytest

from repro.errors import TrimmedError
from repro.objects import TangoList, TangoMap
from repro.tango.runtime import TangoRuntime
from repro.tools import compact_all


class TestStatus:
    def test_initial_status(self, make_runtime):
        rt = make_runtime()
        status = rt.status()
        assert status["hosted_oids"] == []
        assert status["watermark"] == -1
        assert not status["open_transaction"]
        assert status["stats"]["commits"] == 0

    def test_status_reflects_activity(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("k", 1)
        m.get("k")
        rt.run_transaction(lambda: m.put("k2", 2))
        m.get("k2")  # play the write-only transaction's update
        status = rt.status()
        assert status["hosted_oids"] == [1]
        assert status["watermark"] >= 0
        assert status["stats"]["commits"] == 1
        assert status["stats"]["applied_updates"] >= 2

    def test_status_shows_open_transaction(self, make_runtime):
        rt = make_runtime()
        rt.begin_tx()
        assert rt.status()["open_transaction"]
        rt.abort_tx()
        assert not rt.status()["open_transaction"]

    def test_status_shows_parked_transactions(self, make_runtime):
        """An awaiting decision shows up for the operator to act on."""

        class Marked(TangoMap):
            needs_decision_record = True

        rt1, rt2 = make_runtime(), make_runtime()
        private = Marked(rt1, oid=1)
        shared1 = TangoList(rt1, oid=2)
        shared2 = TangoList(rt2, oid=2)
        private.put("g", 1)
        private.get("g")
        rt1.begin_tx()
        _ = private.get("g")
        shared1.append("x")
        ctx = rt1._current_tx()
        rt1._tls.tx = None
        rt1._append_commit(ctx)  # commit without decision ("crash")
        shared2.to_list()  # rt2 parks the transaction
        status = rt2.status()
        assert status["awaiting_decisions"] == [ctx.tx_id]
        assert 2 in status["blocked_streams"]

    def test_status_is_a_snapshot(self, make_runtime):
        rt = make_runtime()
        status = rt.status()
        status["stats"]["commits"] = 999  # mutating the copy is safe
        assert rt.stats["commits"] == 0


class TestCompactAll:
    def test_compacts_hosted_objects(self, make_client):
        rt, directory = make_client()
        m = directory.open(TangoMap, "m")
        lst = directory.open(TangoList, "l")
        for i in range(10):
            m.put(f"k{i}", i)
            lst.append(i)
        result = compact_all(rt, directory)
        assert sorted(result["checkpointed"]) == ["l", "m"]
        assert result["skipped"] == []
        assert result["trimmed_below"] > 0
        with pytest.raises(TrimmedError):
            rt.streams.corfu.read(0)

    def test_fresh_client_after_compaction(self, make_client):
        rt, directory = make_client()
        m = directory.open(TangoMap, "m")
        for i in range(10):
            m.put(f"k{i}", i)
        compact_all(rt, directory)
        _rt2, d2 = make_client()
        fresh = d2.open(TangoMap, "m")
        assert fresh.size() == 10

    def test_unhosted_objects_skipped_and_pin_the_log(self, make_client):
        rt1, d1 = make_client()
        rt2, d2 = make_client()
        mine = d1.open(TangoMap, "mine")
        theirs = d2.open(TangoMap, "theirs")
        mine.put("a", 1)
        theirs.put("b", 2)
        result = compact_all(rt1, d1)
        assert result["checkpointed"] == ["mine"]
        assert result["skipped"] == ["theirs"]
        assert result["trimmed_below"] == 0  # pinned by "theirs"
        assert theirs.get("b") == 2

    def test_compaction_is_repeatable(self, make_client):
        rt, directory = make_client()
        m = directory.open(TangoMap, "m")
        m.put("a", 1)
        compact_all(rt, directory)
        m.put("b", 2)
        second = compact_all(rt, directory)
        assert second["trimmed_below"] > 0
        _rt2, d2 = make_client()
        fresh = d2.open(TangoMap, "m")
        assert fresh.get("a") == 1 and fresh.get("b") == 2
