"""TL010-TL013 analysis tests: lock-set inference, order graph, and
lifecycle checks on focused source snippets (the fixture pairs in
``lint_fixtures/`` cover the fire/quiet basics; these pin down the
inference rules the messages depend on)."""

import textwrap

from repro.tools.lint import lint_paths
from repro.tools.lint.engine import parse_module
from repro.tools.lint.rules.concurrency import build_lock_graph

CONCURRENCY = ["TL010", "TL011", "TL012", "TL013"]


def lint_source(tmp_path, source, select=None):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([str(path)], select=select or CONCURRENCY)


def graph_of(tmp_path, source):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    module, error = parse_module(str(path))
    assert error is None
    return build_lock_graph([module])


# ---------------------------------------------------------------------------
# TL010: guarded-attribute inference
# ---------------------------------------------------------------------------


def test_tl010_private_helper_inherits_caller_locks(tmp_path):
    # _bump is only ever called with the lock held, so its writes are
    # guarded accesses — no findings anywhere.
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._bump()

            def _bump(self):
                self._n += 1
        """,
    )
    assert findings == []


def test_tl010_helper_with_one_unlocked_caller_is_not_protected(tmp_path):
    # The intersection over call sites is empty (one caller holds no
    # lock), so the helper's write executes unguarded.
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._n += 1
                    self._bump()

            def sloppy_bump(self):
                self._bump()

            def _bump(self):
                self._n += 1
        """,
    )
    assert [d.rule_id for d in findings] == ["TL010"]
    assert "_n" in findings[0].message


def test_tl010_locked_suffix_asserts_all_locks_held(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._n += 1

            def _drain_locked(self):
                self._n = 0
        """,
    )
    assert findings == []


def test_tl010_construction_only_helpers_are_exempt(tmp_path):
    # _seed is reachable only from __init__: no concurrency yet.
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Table:
            def __init__(self):
                self._lock = threading.Lock()
                self._rows = {}
                self._seed()

            def _seed(self):
                self._rows[0] = "genesis"

            def put(self, key, value):
                with self._lock:
                    self._rows[key] = value
        """,
    )
    assert findings == []


def test_tl010_subclass_inherits_base_guards(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Base:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._n += 1

        class Child(Base):
            def peek(self):
                return self._n
        """,
    )
    assert [d.rule_id for d in findings] == ["TL010"]
    assert "Child._n" in findings[0].message


def test_tl010_container_mutation_counts_as_write(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, item):
                with self._lock:
                    self._items.append(item)

            def rogue_add(self, item):
                self._items.append(item)
        """,
    )
    assert [d.rule_id for d in findings] == ["TL010"]


def test_tl010_typed_attr_calls_are_not_container_writes(tmp_path):
    # _child has a known program-class type: .append() is a call into
    # that class, not a mutation of an attribute named _child.
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Log:
            def append(self, item):
                return item

        class Owner:
            def __init__(self, log: Log):
                self._lock = threading.Lock()
                self._child = log
                self._n = 0

            def locked_use(self):
                with self._lock:
                    self._n += 1
                    self._child.append(1)

            def unlocked_use(self):
                self._child.append(2)
        """,
    )
    assert findings == []


def test_tl010_suppression_comment_silences(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._n += 1

            def racy_peek(self):
                return self._n  # tangolint: disable=TL010
        """,
    )
    assert findings == []


# ---------------------------------------------------------------------------
# TL011: the acquisition-order graph
# ---------------------------------------------------------------------------


def test_tl011_reports_the_cycle_chain(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def fwd(self):
                with self._a:
                    with self._b:
                        pass

            def rev(self):
                with self._b:
                    with self._a:
                        pass
        """,
    )
    assert [d.rule_id for d in findings] == ["TL011"]
    assert "Pair._a" in findings[0].message and "Pair._b" in findings[0].message


def test_tl011_cross_class_edge_via_typed_attr(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Inner:
            def __init__(self, outer: "Outer"):
                self._ilock = threading.Lock()
                self._outer = outer

            def poke(self):
                with self._ilock:
                    pass

            def backwards(self):
                # Inner._ilock -> Outer._olock: closes the cycle.
                with self._ilock:
                    self._outer.run()

        class Outer:
            def __init__(self):
                self._olock = threading.Lock()
                self._inner = Inner(self)

            def run(self):
                with self._olock:
                    self._inner.poke()
        """,
        select=["TL011"],
    )
    assert [d.rule_id for d in findings] == ["TL011"]


def test_lock_graph_edges_and_topo_order(tmp_path):
    graph = graph_of(
        tmp_path,
        """
        import threading

        class Chain:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def nest(self):
                with self._a:
                    with self._b:
                        pass
        """,
    )
    assert ("Chain._a", "Chain._b") in graph.edges
    assert graph.cycles() == []
    order = graph.topological_order()
    assert order is not None
    assert order.index("Chain._a") < order.index("Chain._b")


def test_lock_graph_records_guards(tmp_path):
    graph = graph_of(
        tmp_path,
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def bump(self):
                with self._lock:
                    self._n += 1
        """,
    )
    assert graph.guards.get("Counter._lock") == {"Counter._n"}


# ---------------------------------------------------------------------------
# TL012: blocking calls under a lock
# ---------------------------------------------------------------------------


def test_tl012_flags_each_blocking_kind(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading
        import time

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
                self._gate = threading.Lock()
                self._node = object()

            def naps(self):
                with self._lock:
                    time.sleep(0.1)

            def acquires(self):
                with self._lock:
                    self._gate.acquire()
                    self._gate.release()

            def rpcs(self):
                with self._lock:
                    self._node.read(1)
        """,
        select=["TL012"],
    )
    kinds = sorted(d.message.split(" while")[0] for d in findings)
    assert len(findings) == 3
    assert any("time.sleep" in k for k in kinds)
    assert any("acquire" in k for k in kinds)
    assert any("RPC 'read'" in k for k in kinds)


def test_tl012_nonblocking_acquire_and_timed_wait_pass(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
                self._gate = threading.Lock()
                self._event = threading.Event()

            def polite(self):
                with self._lock:
                    got = self._gate.acquire(blocking=False)
                    if got:
                        self._gate.release()
                    self._event.wait(timeout=0.01)
        """,
        select=["TL012"],
    )
    assert findings == []


def test_tl012_super_calls_are_not_rpcs(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Base:
            def write(self, address):
                return address

        class Child(Base):
            def __init__(self):
                self._lock = threading.Lock()

            def write(self, address):
                with self._lock:
                    return super().write(address)
        """,
        select=["TL012"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# TL013: lock lifecycle
# ---------------------------------------------------------------------------


def test_tl013_distinguishes_creation_and_reassignment(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import threading

        class Shifty:
            def __init__(self):
                self._lock = threading.Lock()

            def reset(self):
                self._lock = threading.Lock()

            def sprout(self):
                self._extra = threading.Lock()
        """,
        select=["TL013"],
    )
    messages = sorted(d.message for d in findings)
    assert len(messages) == 2
    assert any("reassigned" in m for m in messages)
    assert any("outside __init__" in m for m in messages)
