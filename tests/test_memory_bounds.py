"""Tests for memory-bounded mode: version eviction and cache budgets."""

import pytest

from repro.corfu import CorfuCluster
from repro.objects import TangoMap
from repro.tango.directory import TangoDirectory
from repro.tango.records import NO_VERSION
from repro.tango.runtime import TangoRuntime
from repro.tango.versioning import EvictedKeySet, VersionTable


class TestEvictedKeySet:
    def test_membership(self):
        s = EvictedKeySet()
        s.add_many([b"a", b"b", b"c"])
        assert b"a" in s and b"c" in s
        assert b"zzz" not in s
        assert len(s) == 3

    def test_add_is_idempotent(self):
        s = EvictedKeySet()
        s.add_many([b"a", b"b"])
        s.add_many([b"b", b"a"])
        assert len(s) == 2

    def test_serialization_round_trip(self):
        s = EvictedKeySet()
        s.add_many([b"k%d" % i for i in range(50)])
        restored = EvictedKeySet.from_bytes(s.to_bytes())
        assert len(restored) == 50
        assert all(b"k%d" % i in restored for i in range(50))

    def test_merge(self):
        a, b = EvictedKeySet(), EvictedKeySet()
        a.add_many([b"x", b"y"])
        b.add_many([b"y", b"z"])
        a.merge_bytes(b.to_bytes())
        assert len(a) == 3
        assert b"z" in a


class TestVersionTableEviction:
    def test_evict_below_drops_keyed_entries(self):
        table = VersionTable()
        for i in range(10):
            table.bump(1, i, key=b"k%d" % i)
        assert table.resident_stats()["keyed_entries"] == 10
        assert table.evict_below(5) == 5
        stats = table.resident_stats()
        assert stats["keyed_entries"] == 5
        assert stats["evicted_keys"] == 5

    def test_evicted_keys_answer_with_floor(self):
        """Evicted keys report an upper bound, never a stale low version."""
        table = VersionTable()
        table.bump(1, 2, key=b"old")
        table.bump(1, 9, key=b"new")
        table.evict_below(5)
        assert table.get(1, b"old") == 4  # the floor: horizon - 1
        assert table.get(1, b"new") == 9  # exact version retained
        assert table.get(1, b"never-seen") == NO_VERSION

    def test_floor_is_conservative_for_occ(self):
        """A read at a version below the floor must look stale."""
        table = VersionTable()
        table.bump(1, 2, key=b"k")
        table.evict_below(5)
        assert table.is_stale(1, b"k", read_version=2)  # would be fresh
        assert not table.is_stale(1, b"k", read_version=4)

    def test_eviction_snapshot_round_trips_through_checkpoint(self):
        writer = VersionTable()
        writer.bump(1, 2, key=b"gone")
        writer.evict_below(5)
        floor, blob = writer.eviction_snapshot(1)
        reader = VersionTable()
        reader.load_checkpoint(
            1, 9, (), version_floor=floor, evicted_filter=blob
        )
        assert reader.get(1, b"gone") == floor
        assert reader.get(1, b"other") == NO_VERSION


class TestRuntimeMemoryBudget:
    def test_budget_validation(self, cluster):
        with pytest.raises(ValueError):
            TangoRuntime(cluster, client_id=900, memory_budget=0)
        with pytest.raises(ValueError):
            TangoRuntime(cluster, client_id=901, memory_budget=-1)

    def bounded_client(self, cluster, budget=64 * 1024, cid=902):
        rt = TangoRuntime(
            cluster, client_id=cid, name=f"bounded-{cid}", memory_budget=budget
        )
        return rt, TangoDirectory(rt)

    def test_trim_evicts_version_entries(self, cluster):
        rt, directory = self.bounded_client(cluster)
        m = directory.open(TangoMap, "obj")
        for i in range(30):
            m.put(f"k{i}", i)
        m.size()
        before = rt.status()["store"]["versions"]["keyed_entries"]
        assert before >= 30
        rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        assert directory.gc() > 0
        after = rt.status()["store"]["versions"]
        assert after["keyed_entries"] < before
        assert after["evicted_keys"] > 0
        assert rt.stats["evicted_versions"] > 0
        # The map still answers correctly through the floor.
        assert m.get("k7") == 7

    def test_unbounded_runtime_keeps_exact_versions(self, cluster):
        """Without a budget, trim must not change version bookkeeping."""
        rt = TangoRuntime(cluster, client_id=903, name="unbounded")
        directory = TangoDirectory(rt)
        m = directory.open(TangoMap, "obj")
        for i in range(10):
            m.put(f"k{i}", i)
        m.size()
        before = rt.status()["store"]["versions"]["keyed_entries"]
        rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        directory.gc()
        after = rt.status()["store"]["versions"]
        # GC bookkeeping (forget records) may add entries; none drop.
        assert after["keyed_entries"] >= before
        assert after["evicted_keys"] == 0
        assert rt.stats["evicted_versions"] == 0

    def test_transactions_stay_sound_after_eviction(self, cluster):
        """Spurious aborts are allowed post-eviction; lost conflicts are not."""
        rt1, d1 = self.bounded_client(cluster, cid=904)
        rt2 = TangoRuntime(cluster, client_id=905, name="peer")
        m1 = d1.open(TangoMap, "obj")
        m2 = TangoMap(rt2, oid=m1.oid)
        for i in range(10):
            m1.put(f"k{i}", i)
        m1.size()
        rt1.checkpoint_and_forget(m1.oid, d1)
        rt1.checkpoint_and_forget(d1.oid, d1)
        d1.gc()
        # A genuinely conflicting tx must still abort.
        m2.get("k3")
        rt2.begin_tx()
        _ = m2.get("k3")
        m2.put("k3", 100)
        m1.put("k3", 999)
        assert rt2.end_tx() is False
        # And a clean write-only tx still commits.
        rt1.run_transaction(lambda: m1.put("fresh", 1))
        assert m1.get("fresh") == 1


class TestStreamCacheBudget:
    def test_cache_budget_validation(self, cluster):
        rt = TangoRuntime(cluster, client_id=906)
        with pytest.raises(ValueError):
            rt.streams.set_cache_budget(0)

    def test_resident_bytes_stay_under_budget(self, cluster):
        budget = 8 * 1024
        rt = TangoRuntime(cluster, client_id=907, memory_budget=budget)
        m = TangoMap(rt, oid=1)
        for i in range(200):
            m.put(f"k{i}", "v" * 64)
        m.size()
        cache = rt.status()["store"]["stream_cache"]
        assert 0 < cache["resident_bytes"] <= budget

    def test_playback_correct_with_tiny_cache(self, cluster):
        rt = TangoRuntime(cluster, client_id=908, memory_budget=1024)
        m = TangoMap(rt, oid=1)
        for i in range(50):
            m.put(f"k{i}", i)
        assert m.size() == 50
        assert all(m.get(f"k{i}") == i for i in range(0, 50, 7))

    def test_trim_releases_stream_state(self, cluster):
        """Prefix GC shrinks per-stream offset lists in bounded mode."""
        rt, directory = TestRuntimeMemoryBudget().bounded_client(
            cluster, cid=909
        )
        m = directory.open(TangoMap, "obj")
        for i in range(40):
            m.put(f"k{i}", i)
        m.size()
        rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        assert directory.gc() > 0
        # Continued use stays linearizable after the forget.
        m.put("post", 1)
        assert m.get("post") == 1
        assert m.get("k11") == 11


class TestStoreStatus:
    def test_status_shape(self, cluster):
        rt = TangoRuntime(cluster, client_id=910, memory_budget=1 << 20)
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        rt.checkpoint(1)
        store = rt.status()["store"]
        assert store["memory_budget"] == 1 << 20
        assert store["versions"]["objects"] >= 1
        assert store["stream_cache"]["entries"] >= 0
        assert store["checkpoint_chains"] == {1: 0}
        # In-process deployments aggregate node accounting too.
        assert store["cluster"]["nodes"]

    def test_status_without_budget(self, cluster):
        rt = TangoRuntime(cluster, client_id=911)
        assert rt.status()["store"]["memory_budget"] is None

    def test_store_status_rpc_survey(self, cluster):
        rt = TangoRuntime(cluster, client_id=912)
        nodes = rt.store_status()
        assert nodes
        assert all("kind" in status for status in nodes.values())


def test_memory_budget_accepted_by_cluster_kwarg():
    """The knob is part of the constructor surface, not a hidden setter."""
    cluster = CorfuCluster(num_sets=2, replication_factor=2)
    rt = TangoRuntime(cluster, client_id=913, memory_budget=1 << 16)
    assert rt.status()["store"]["memory_budget"] == 1 << 16
