"""Tests for transaction-size limits and stream fuzzing.

Section 4.1: "a single transaction can only write to a fixed number of
Tango objects. The multiappend call places a limit on the number of
streams to which a single entry can be appended ... this limit is set
at deployment time."
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corfu import CorfuCluster
from repro.errors import TooManyStreamsError
from repro.objects import TangoMap
from repro.streams import StreamClient
from repro.tango.runtime import TangoRuntime


class TestWriteSetCap:
    def test_tx_touching_too_many_objects_rejected(self):
        cluster = CorfuCluster(num_sets=3, replication_factor=2, max_streams=4)
        rt = TangoRuntime(cluster, client_id=1)
        maps = [TangoMap(rt, oid=i + 1) for i in range(6)]
        rt.begin_tx()
        for m in maps:
            m.put("k", 1)
        with pytest.raises(TooManyStreamsError):
            rt.end_tx()
        # The runtime is usable afterwards: no half-open context.
        assert rt._current_tx() is None
        rt.run_transaction(lambda: maps[0].put("ok", 1))
        assert maps[0].get("ok") == 1

    def test_tx_at_the_cap_commits(self):
        cluster = CorfuCluster(num_sets=3, replication_factor=2, max_streams=4)
        rt = TangoRuntime(cluster, client_id=1)
        maps = [TangoMap(rt, oid=i + 1) for i in range(4)]
        rt.begin_tx()
        for m in maps:
            m.put("k", 1)
        assert rt.end_tx() is True
        assert all(m.get("k") == 1 for m in maps)

    def test_header_overhead_matches_deployment_limit(self):
        """More streams per entry -> less payload per entry."""
        from repro.corfu.entry import max_payload_bytes

        small = max_payload_bytes(4096, max_streams=4)
        large = max_payload_bytes(4096, max_streams=64)
        assert small - large == 60 * 12  # 12 bytes per extra header slot


class TestStreamFuzz:
    @given(
        plan=st.lists(
            st.tuples(
                st.sampled_from(["append", "hole", "multi"]),
                st.integers(min_value=0, max_value=2),  # stream id
            ),
            max_size=25,
        ),
        data=st.data(),
    )
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sync_delivers_exactly_the_streams_entries(self, plan, data):
        """Random mixes of appends, holes, and multiappends: every
        stream's playback yields exactly its non-junk entries, in
        order."""
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        writer = StreamClient(cluster.client())
        expected = {0: [], 1: [], 2: []}
        for action, sid in plan:
            if action == "append":
                offset = writer.append(b"p", (sid,))
                expected[sid].append(offset)
            elif action == "hole":
                cluster.sequencer().increment(stream_ids=(sid,))
            else:  # multi
                other = data.draw(
                    st.integers(min_value=0, max_value=2), label="other"
                )
                sids = tuple(sorted({sid, other}))
                offset = writer.append(b"m", sids)
                for s in sids:
                    expected[s].append(offset)
        reader = StreamClient(cluster.client())
        for sid in range(3):
            reader.open_stream(sid)
            reader.sync(sid)
            got = []
            while True:
                item = reader.readnext(sid)
                if item is None:
                    break
                if not item[1].is_junk:
                    got.append(item[0])
            assert got == expected[sid], f"stream {sid}"

    @given(
        appends=st.integers(min_value=1, max_value=30),
        sync_every=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_incremental_syncs_equal_one_big_sync(self, appends, sync_every):
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        incremental = StreamClient(cluster.client())
        incremental.open_stream(1)
        for i in range(appends):
            incremental.append(b"e%d" % i, (1,))
            if i % sync_every == 0:
                incremental.sync(1)
        incremental.sync(1)
        fresh = StreamClient(cluster.client())
        fresh.open_stream(1)
        fresh.sync(1)
        assert (
            incremental.known_offsets(1) == fresh.known_offsets(1)
        )
