"""Tests for temporary views (the section 4.1 case-D alternative)."""

import pytest

from repro.errors import RemoteReadError
from repro.objects import TangoList, TangoMap
from repro.tango.runtime import TangoRuntime


class TestTemporaryView:
    def test_remote_read_without_view_still_rejected(self, make_runtime):
        rt = make_runtime()
        rt.begin_tx()
        with pytest.raises(RemoteReadError):
            rt.query_helper(5)
        rt.abort_tx()

    def test_tx_reads_through_temporary_view(self, make_runtime):
        rt_owner, rt_reader = make_runtime(), make_runtime()
        prices = TangoMap(rt_owner, oid=5)
        prices.put("widget", 80)
        orders = TangoList(rt_reader, oid=6)

        with rt_reader.temporary_view(TangoMap, 5) as remote_prices:
            def tx():
                if remote_prices.get("widget") < 100:
                    orders.append("widget")

            rt_reader.run_transaction(tx)
        assert orders.to_list() == ("widget",)
        assert not rt_reader.is_hosted(5)  # gone after the scope

    def test_conflict_detection_works_inside_scope(self, make_runtime):
        rt_owner, rt_reader = make_runtime(), make_runtime()
        prices = TangoMap(rt_owner, oid=5)
        prices.put("widget", 80)
        orders = TangoList(rt_reader, oid=6)
        with rt_reader.temporary_view(TangoMap, 5) as remote_prices:
            remote_prices.get("widget")  # sync
            rt_reader.begin_tx()
            _ = remote_prices.get("widget")
            orders.append("widget")
            prices.put("widget", 200)  # owner changes it mid-window
            assert rt_reader.end_tx() is False
        assert orders.to_list() == ()

    def test_view_catches_up_full_history(self, make_runtime):
        rt_owner, rt_reader = make_runtime(), make_runtime()
        m = TangoMap(rt_owner, oid=5)
        for i in range(20):
            m.put(f"k{i}", i)
        # Reader has played other streams already (late registration).
        own = TangoMap(rt_reader, oid=7)
        own.put("x", 1)
        own.get("x")
        with rt_reader.temporary_view(TangoMap, 5) as view:
            assert view.size() == 20

    def test_already_hosted_object_not_deregistered(self, make_runtime):
        rt = make_runtime()
        mine = TangoMap(rt, oid=5)
        mine.put("k", 1)
        with rt.temporary_view(TangoMap, 5) as view:
            assert view is mine
        assert rt.is_hosted(5)  # permanent view untouched

    def test_exception_in_scope_still_deregisters(self, make_runtime):
        rt_owner, rt_reader = make_runtime(), make_runtime()
        TangoMap(rt_owner, oid=5)
        with pytest.raises(RuntimeError):
            with rt_reader.temporary_view(TangoMap, 5):
                raise RuntimeError("boom")
        assert not rt_reader.is_hosted(5)

    def test_reopening_after_scope_replays_again(self, make_runtime):
        rt_owner, rt_reader = make_runtime(), make_runtime()
        m = TangoMap(rt_owner, oid=5)
        m.put("a", 1)
        with rt_reader.temporary_view(TangoMap, 5) as view:
            assert view.get("a") == 1
        m.put("b", 2)
        with rt_reader.temporary_view(TangoMap, 5) as view:
            assert view.size() == 2
