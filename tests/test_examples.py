"""The examples are part of the public contract: they must all run.

Each example's ``main()`` is executed in-process; a broken example
fails the suite rather than rotting silently.
"""

import importlib.util
import pathlib
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> None:
    path = _EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "job_scheduler.py",
        "zookeeper_namespaces.py",
        "hdfs_namenode.py",
        "time_travel_mirror.py",
        "topology_service.py",
    ],
)
def test_example_runs(script, capsys):
    _run_example(script)
    out = capsys.readouterr().out
    assert out  # every example narrates what it demonstrates
    assert "BAD" not in out
