"""Tests for the sequencer (tail counter + stream backpointer state)."""

import pytest

from repro.corfu.entry import NO_BACKPOINTER
from repro.corfu.sequencer import Sequencer
from repro.errors import NodeDownError, SealedError


@pytest.fixture
def seq():
    return Sequencer("seq-0", k=4)


class TestCounter:
    def test_monotone_offsets(self, seq):
        offsets = [seq.increment()[0] for _ in range(10)]
        assert offsets == list(range(10))

    def test_multi_count_reservation(self, seq):
        first, _ = seq.increment(count=3)
        assert first == 0
        nxt, _ = seq.increment()
        assert nxt == 3

    def test_invalid_count(self, seq):
        with pytest.raises(ValueError):
            seq.increment(count=0)

    def test_query_does_not_advance(self, seq):
        seq.increment()
        tail1, _ = seq.query()
        tail2, _ = seq.query()
        assert tail1 == tail2 == 1


class TestStreamBackpointers:
    def test_first_append_gets_no_backpointers(self, seq):
        _, bps = seq.increment(stream_ids=(7,))
        assert bps[7] == (NO_BACKPOINTER,) * 4

    def test_last_k_newest_first(self, seq):
        for _ in range(6):
            seq.increment(stream_ids=(7,))
        _, bps = seq.increment(stream_ids=(7,))
        assert bps[7] == (5, 4, 3, 2)

    def test_streams_are_independent(self, seq):
        seq.increment(stream_ids=(1,))  # offset 0
        seq.increment(stream_ids=(2,))  # offset 1
        _, bps = seq.increment(stream_ids=(1, 2))  # offset 2
        assert bps[1][0] == 0
        assert bps[2][0] == 1

    def test_multiappend_records_offset_for_all_streams(self, seq):
        seq.increment(stream_ids=(1, 2))  # offset 0 in both
        _, bps = seq.increment(stream_ids=(1, 2))
        assert bps[1][0] == 0
        assert bps[2][0] == 0

    def test_query_returns_stream_state(self, seq):
        seq.increment(stream_ids=(3,))
        seq.increment(stream_ids=(3,))
        tail, streams = seq.query(stream_ids=(3, 4))
        assert tail == 2
        assert streams[3] == (1, 0)
        assert streams[4] == ()

    def test_multi_count_assigns_all_offsets(self, seq):
        seq.increment(stream_ids=(5,), count=3)
        _, streams = seq.query(stream_ids=(5,))
        assert streams[5] == (2, 1, 0)

    def test_state_footprint(self, seq):
        """32 bytes per stream with K=4 (paper section 5)."""
        for sid in range(100):
            seq.increment(stream_ids=(sid,))
        assert seq.stream_state_bytes() == 100 * 32


class TestSealAndCrash:
    def test_seal_fences_stale_epoch(self, seq):
        seq.seal(2)
        with pytest.raises(SealedError):
            seq.increment(epoch=1)
        seq.increment(epoch=2)

    def test_seal_not_backwards(self, seq):
        seq.seal(2)
        with pytest.raises(SealedError):
            seq.seal(2)

    def test_crash_loses_soft_state(self, seq):
        seq.increment(stream_ids=(1,))
        seq.crash()
        assert seq.is_down
        with pytest.raises(NodeDownError):
            seq.increment()
        with pytest.raises(NodeDownError):
            seq.query()

    def test_bootstrap_restores_state(self, seq):
        seq.increment(stream_ids=(1,))
        seq.increment(stream_ids=(1,))
        seq.crash()
        seq.bootstrap(tail=2, stream_tails={1: [1, 0]}, epoch=1)
        assert not seq.is_down
        offset, bps = seq.increment(stream_ids=(1,), epoch=1)
        assert offset == 2
        assert bps[1] == (1, 0)

    def test_bootstrap_truncates_to_k(self):
        seq = Sequencer("s", k=2)
        seq.bootstrap(tail=10, stream_tails={1: [9, 8, 7, 6]}, epoch=0)
        _, streams = seq.query(stream_ids=(1,))
        assert streams[1] == (9, 8)


class TestLifecycleRaces:
    """crash()/seal() vs in-flight increments from other threads.

    Before the lock covered the lifecycle methods, a crash could clear
    the tail while an increment was mid-flight in another thread,
    letting the increment hand out an offset from a half-cleared
    counter (duplicate offsets after recovery). Every observation must
    be all-or-nothing: a live response or a clean error.
    """

    def test_increments_during_crashes_never_duplicate_offsets(self):
        import threading

        seq = Sequencer("seq-0", k=4)
        issued = []
        errors = []
        lock = threading.Lock()
        stop = threading.Event()

        def incrementer():
            while not stop.is_set():
                try:
                    offset, _ = seq.increment((1,), epoch=0)
                except NodeDownError:
                    continue
                except SealedError:
                    return
                with lock:
                    issued.append(offset)

        def chaos():
            for i in range(50):
                seq.crash()
                # Each recovery installs a floor far above anything the
                # previous era could have issued, so a duplicate offset
                # can only come from an increment that observed a
                # half-cleared counter mid-crash.
                seq.bootstrap((i + 1) * 10**9, {}, epoch=0)
            stop.set()

        threads = [threading.Thread(target=incrementer) for _ in range(4)]
        threads.append(threading.Thread(target=chaos))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(issued) == len(set(issued)), "duplicate offsets issued"

    def test_seal_is_atomic_against_increments(self):
        import threading

        seq = Sequencer("seq-0", k=4)
        results = {"sealed": 0, "issued": []}
        barrier = threading.Barrier(5)

        def incrementer():
            barrier.wait()
            try:
                for _ in range(200):
                    offset, _ = seq.increment((), epoch=0)
                    results["issued"].append(offset)
            except SealedError:
                results["sealed"] += 1

        def sealer():
            barrier.wait()
            seq.seal(1)

        threads = [threading.Thread(target=incrementer) for _ in range(4)]
        threads.append(threading.Thread(target=sealer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Once seal returned, no epoch-0 increment can have completed
        # after it: the issued offsets are exactly 0..N-1, no gaps from
        # half-finished requests.
        issued = sorted(results["issued"])
        assert issued == list(range(len(issued)))
        with pytest.raises(SealedError):
            seq.increment((), epoch=0)


class TestStriping:
    """A shard (i, N) only ever issues offsets congruent to i mod N."""

    def test_default_shard_is_the_dense_counter(self):
        seq = Sequencer("seq-0", k=4)
        assert seq.shard_index == 0
        assert seq.num_shards == 1
        assert [seq.increment()[0] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_offsets_land_on_own_stripe(self):
        seq = Sequencer("seq-0.1", k=4, shard_index=1, num_shards=4)
        offsets = [seq.increment(stream_ids=(1,))[0] for _ in range(5)]
        assert offsets == [1, 5, 9, 13, 17]

    def test_multi_count_strides_within_the_stripe(self):
        seq = Sequencer("seq-0.2", k=4, shard_index=2, num_shards=3)
        first, bps = seq.increment(stream_ids=(2,), count=3)
        assert first == 2
        # Backpointers for the reservation are the stripe's own offsets,
        # newest first.
        assert bps[2][:3] == (NO_BACKPOINTER,) * 3
        nxt, bps = seq.increment(stream_ids=(2,))
        assert nxt == 11
        assert bps[2][:3] == (8, 5, 2)

    def test_query_reports_the_global_tail_bound(self):
        seq = Sequencer("seq-0.1", k=4, shard_index=1, num_shards=4)
        assert seq.query()[0] == 0
        seq.increment()  # issues 1
        assert seq.query()[0] == 2  # everything below 2 is decided here
        seq.increment()  # issues 5
        assert seq.query()[0] == 6

    def test_bootstrap_takes_a_global_tail(self):
        seq = Sequencer("seq-0.3", k=4, shard_index=3, num_shards=4)
        seq.crash()
        seq.bootstrap(10, {7: [7, 3]}, epoch=0)
        # First own offset at or above the global tail 10 is 11.
        offset, bps = seq.increment(stream_ids=(7,))
        assert offset == 11
        assert bps[7][:2] == (7, 3)

    def test_shard_parameters_validated(self):
        with pytest.raises(ValueError):
            Sequencer("bad", shard_index=2, num_shards=2)
        with pytest.raises(ValueError):
            Sequencer("bad", shard_index=-1, num_shards=2)
        with pytest.raises(ValueError):
            Sequencer("bad", num_shards=0)


class TestVectorGrant:
    """reserve_group / commit_group: the two-phase cross-shard grant."""

    def test_reserve_lands_on_own_stripe_and_respects_floor(self):
        seq = Sequencer("seq-0.1", k=4, shard_index=1, num_shards=4)
        r0 = seq.reserve_group()
        assert r0 == 1
        r1 = seq.reserve_group(floor=r0 + 1)
        assert r1 == 5
        # A floor far ahead ratchets the shard forward.
        r2 = seq.reserve_group(floor=100)
        assert r2 >= 100 and r2 % 4 == 1

    def test_commit_records_backpointers_and_returns_priors(self):
        seq = Sequencer("seq-0.1", k=4, shard_index=1, num_shards=4)
        o1 = seq.reserve_group()
        prior = seq.commit_group((7,), o1)
        assert prior[7] == (NO_BACKPOINTER,) * 4
        o2 = seq.reserve_group(floor=o1 + 1)
        prior = seq.commit_group((7,), o2)
        assert prior[7][0] == o1

    def test_commit_is_idempotent_at_the_same_offset(self):
        seq = Sequencer("seq-0.1", k=4, shard_index=1, num_shards=4)
        o = seq.reserve_group()
        first = seq.commit_group((7,), o)
        again = seq.commit_group((7,), o)
        assert first == again

    def test_stale_commit_raises(self):
        from repro.errors import StaleGrantError

        seq = Sequencer("seq-0.1", k=4, shard_index=1, num_shards=4)
        o_old = seq.reserve_group()
        o_new = seq.reserve_group(floor=o_old + 1)
        seq.commit_group((7,), o_new)
        with pytest.raises(StaleGrantError):
            seq.commit_group((7,), o_old)

    def test_commit_bumps_the_tail_past_the_offset(self):
        seq = Sequencer("seq-0.2", k=4, shard_index=2, num_shards=4)
        # Commit an offset granted by some *other* shard's reservation.
        seq.commit_group((2,), 17)
        offset, _ = seq.increment(stream_ids=(2,))
        assert offset > 17 and offset % 4 == 2

    def test_sealed_shard_rejects_grant_ops(self):
        seq = Sequencer("seq-0.1", k=4, shard_index=1, num_shards=4)
        seq.seal(1)
        with pytest.raises(SealedError):
            seq.reserve_group(epoch=0)
        with pytest.raises(SealedError):
            seq.commit_group((7,), 1, epoch=0)


class TestShardedSequencer:
    def test_single_shard_group_is_the_plain_sequencer(self):
        from repro.corfu.sequencer import ShardedSequencer

        group = ShardedSequencer("seq-0", shards=1)
        assert len(group) == 1
        assert group.shard_names() == ("seq-0",)
        only = group.shard_for(123)
        assert only.name == "seq-0"
        assert only.num_shards == 1

    def test_shards_partition_streams_by_modulus(self):
        from repro.corfu.sequencer import ShardedSequencer, shard_name

        group = ShardedSequencer("seq-0", shards=4)
        assert group.shard_names() == tuple(
            shard_name("seq-0", i) for i in range(4)
        )
        for sid in range(8):
            shard = group.shard_for(sid)
            assert shard.shard_index == sid % 4

    def test_group_tail_is_the_max_over_shards(self):
        from repro.corfu.sequencer import ShardedSequencer

        group = ShardedSequencer("seq-0", shards=4)
        assert group.tail() == 0
        group.shard_for(2).increment(stream_ids=(2,))  # issues offset 2
        assert group.tail() == 3

    def test_group_seal_seals_every_shard(self):
        from repro.corfu.sequencer import ShardedSequencer

        group = ShardedSequencer("seq-0", shards=3)
        group.seal(1)
        for shard in group:
            with pytest.raises(SealedError):
                shard.increment(epoch=0)

    def test_disjoint_shards_never_issue_the_same_offset(self):
        import threading

        from repro.corfu.sequencer import ShardedSequencer

        group = ShardedSequencer("seq-0", shards=4)
        issued = []
        lock = threading.Lock()

        def worker(sid):
            shard = group.shard_for(sid)
            mine = [shard.increment(stream_ids=(sid,))[0] for _ in range(200)]
            with lock:
                issued.extend(mine)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(issued) == len(set(issued)) == 800
