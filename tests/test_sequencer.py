"""Tests for the sequencer (tail counter + stream backpointer state)."""

import pytest

from repro.corfu.entry import NO_BACKPOINTER
from repro.corfu.sequencer import Sequencer
from repro.errors import NodeDownError, SealedError


@pytest.fixture
def seq():
    return Sequencer("seq-0", k=4)


class TestCounter:
    def test_monotone_offsets(self, seq):
        offsets = [seq.increment()[0] for _ in range(10)]
        assert offsets == list(range(10))

    def test_multi_count_reservation(self, seq):
        first, _ = seq.increment(count=3)
        assert first == 0
        nxt, _ = seq.increment()
        assert nxt == 3

    def test_invalid_count(self, seq):
        with pytest.raises(ValueError):
            seq.increment(count=0)

    def test_query_does_not_advance(self, seq):
        seq.increment()
        tail1, _ = seq.query()
        tail2, _ = seq.query()
        assert tail1 == tail2 == 1


class TestStreamBackpointers:
    def test_first_append_gets_no_backpointers(self, seq):
        _, bps = seq.increment(stream_ids=(7,))
        assert bps[7] == (NO_BACKPOINTER,) * 4

    def test_last_k_newest_first(self, seq):
        for _ in range(6):
            seq.increment(stream_ids=(7,))
        _, bps = seq.increment(stream_ids=(7,))
        assert bps[7] == (5, 4, 3, 2)

    def test_streams_are_independent(self, seq):
        seq.increment(stream_ids=(1,))  # offset 0
        seq.increment(stream_ids=(2,))  # offset 1
        _, bps = seq.increment(stream_ids=(1, 2))  # offset 2
        assert bps[1][0] == 0
        assert bps[2][0] == 1

    def test_multiappend_records_offset_for_all_streams(self, seq):
        seq.increment(stream_ids=(1, 2))  # offset 0 in both
        _, bps = seq.increment(stream_ids=(1, 2))
        assert bps[1][0] == 0
        assert bps[2][0] == 0

    def test_query_returns_stream_state(self, seq):
        seq.increment(stream_ids=(3,))
        seq.increment(stream_ids=(3,))
        tail, streams = seq.query(stream_ids=(3, 4))
        assert tail == 2
        assert streams[3] == (1, 0)
        assert streams[4] == ()

    def test_multi_count_assigns_all_offsets(self, seq):
        seq.increment(stream_ids=(5,), count=3)
        _, streams = seq.query(stream_ids=(5,))
        assert streams[5] == (2, 1, 0)

    def test_state_footprint(self, seq):
        """32 bytes per stream with K=4 (paper section 5)."""
        for sid in range(100):
            seq.increment(stream_ids=(sid,))
        assert seq.stream_state_bytes() == 100 * 32


class TestSealAndCrash:
    def test_seal_fences_stale_epoch(self, seq):
        seq.seal(2)
        with pytest.raises(SealedError):
            seq.increment(epoch=1)
        seq.increment(epoch=2)

    def test_seal_not_backwards(self, seq):
        seq.seal(2)
        with pytest.raises(SealedError):
            seq.seal(2)

    def test_crash_loses_soft_state(self, seq):
        seq.increment(stream_ids=(1,))
        seq.crash()
        assert seq.is_down
        with pytest.raises(NodeDownError):
            seq.increment()
        with pytest.raises(NodeDownError):
            seq.query()

    def test_bootstrap_restores_state(self, seq):
        seq.increment(stream_ids=(1,))
        seq.increment(stream_ids=(1,))
        seq.crash()
        seq.bootstrap(tail=2, stream_tails={1: [1, 0]}, epoch=1)
        assert not seq.is_down
        offset, bps = seq.increment(stream_ids=(1,), epoch=1)
        assert offset == 2
        assert bps[1] == (1, 0)

    def test_bootstrap_truncates_to_k(self):
        seq = Sequencer("s", k=2)
        seq.bootstrap(tail=10, stream_tails={1: [9, 8, 7, 6]}, epoch=0)
        _, streams = seq.query(stream_ids=(1,))
        assert streams[1] == (9, 8)


class TestLifecycleRaces:
    """crash()/seal() vs in-flight increments from other threads.

    Before the lock covered the lifecycle methods, a crash could clear
    the tail while an increment was mid-flight in another thread,
    letting the increment hand out an offset from a half-cleared
    counter (duplicate offsets after recovery). Every observation must
    be all-or-nothing: a live response or a clean error.
    """

    def test_increments_during_crashes_never_duplicate_offsets(self):
        import threading

        seq = Sequencer("seq-0", k=4)
        issued = []
        errors = []
        lock = threading.Lock()
        stop = threading.Event()

        def incrementer():
            while not stop.is_set():
                try:
                    offset, _ = seq.increment((1,), epoch=0)
                except NodeDownError:
                    continue
                except SealedError:
                    return
                with lock:
                    issued.append(offset)

        def chaos():
            for i in range(50):
                seq.crash()
                # Each recovery installs a floor far above anything the
                # previous era could have issued, so a duplicate offset
                # can only come from an increment that observed a
                # half-cleared counter mid-crash.
                seq.bootstrap((i + 1) * 10**9, {}, epoch=0)
            stop.set()

        threads = [threading.Thread(target=incrementer) for _ in range(4)]
        threads.append(threading.Thread(target=chaos))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(issued) == len(set(issued)), "duplicate offsets issued"

    def test_seal_is_atomic_against_increments(self):
        import threading

        seq = Sequencer("seq-0", k=4)
        results = {"sealed": 0, "issued": []}
        barrier = threading.Barrier(5)

        def incrementer():
            barrier.wait()
            try:
                for _ in range(200):
                    offset, _ = seq.increment((), epoch=0)
                    results["issued"].append(offset)
            except SealedError:
                results["sealed"] += 1

        def sealer():
            barrier.wait()
            seq.seal(1)

        threads = [threading.Thread(target=incrementer) for _ in range(4)]
        threads.append(threading.Thread(target=sealer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Once seal returned, no epoch-0 increment can have completed
        # after it: the issued offsets are exactly 0..N-1, no gaps from
        # half-finished requests.
        issued = sorted(results["issued"])
        assert issued == list(range(len(issued)))
        with pytest.raises(SealedError):
            seq.increment((), epoch=0)
