"""Tests for delta (incremental) checkpoints."""

import pytest

from repro.errors import TangoError, TrimmedError
from repro.objects import TangoIndexedMap, TangoMap
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import MAX_DELTA_CHAIN


class TestModeSelection:
    def test_unknown_mode_rejected(self, make_runtime):
        rt = make_runtime()
        TangoMap(rt, oid=1).put("a", 1)
        with pytest.raises(ValueError):
            rt.checkpoint(1, mode="incremental")

    def test_auto_emits_full_then_deltas(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        rt.checkpoint(1)  # no base yet: full
        m.put("b", 2)
        m.get("b")
        rt.checkpoint(1)  # chained: delta
        m.put("c", 3)
        m.get("c")
        rt.checkpoint(1)  # still chained: delta
        assert rt.stats["full_checkpoints"] == 1
        assert rt.stats["delta_checkpoints"] == 2

    def test_auto_falls_back_to_full_without_delta_support(self, make_runtime):
        rt = make_runtime()
        idx = TangoIndexedMap(rt, oid=1)
        idx.put("a", 1)
        idx.get("a")
        rt.checkpoint(1)
        idx.put("b", 2)
        idx.get("b")
        rt.checkpoint(1)
        assert rt.stats["full_checkpoints"] == 2
        assert rt.stats["delta_checkpoints"] == 0

    def test_unkeyed_update_forces_full(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        rt.checkpoint(1)
        m.clear()  # unkeyed: a delta cannot express it
        m.size()  # play the clear
        rt.checkpoint(1)
        assert rt.stats["full_checkpoints"] == 2
        assert rt.stats["delta_checkpoints"] == 0

    def test_chain_length_capped(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        for i in range(MAX_DELTA_CHAIN + 2):
            m.put(f"k{i}", i)
            m.get(f"k{i}")
            rt.checkpoint(1)
        # One base, MAX_DELTA_CHAIN deltas, then a fresh full.
        assert rt.stats["full_checkpoints"] == 2
        assert rt.stats["delta_checkpoints"] == MAX_DELTA_CHAIN

    def test_checkpoint_event_reports_delta_flag(self, make_runtime):
        rt = make_runtime()
        events = []
        rt.subscribe("checkpoint", events.append)
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        rt.checkpoint(1)
        m.put("b", 2)
        m.get("b")
        rt.checkpoint(1)
        assert [e["delta"] for e in events] == [False, True]


class TestExplicitDeltaMode:
    def test_requires_delta_support(self, make_runtime):
        rt = make_runtime()
        idx = TangoIndexedMap(rt, oid=1)
        idx.put("a", 1)
        idx.get("a")
        rt.checkpoint(1, mode="full")
        with pytest.raises(TangoError, match="delta"):
            rt.checkpoint(1, mode="delta")

    def test_requires_base(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        with pytest.raises(TangoError, match="base"):
            rt.checkpoint(1, mode="delta")

    def test_rejects_unkeyed_dirty_state(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        rt.checkpoint(1, mode="full")
        m.clear()
        m.size()
        with pytest.raises(TangoError, match="unkeyed"):
            rt.checkpoint(1, mode="delta")

    def test_full_mode_always_allowed(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        rt.checkpoint(1)
        m.put("b", 2)
        m.get("b")
        rt.checkpoint(1, mode="full")  # override auto's delta choice
        assert rt.stats["full_checkpoints"] == 2
        assert rt.stats["delta_checkpoints"] == 0


class TestReload:
    def test_fresh_client_loads_through_chain(self, make_runtime):
        rt1 = make_runtime()
        m1 = TangoMap(rt1, oid=1)
        m1.put("a", 1)
        m1.put("b", 2)
        m1.get("b")
        rt1.checkpoint(1)  # full: {a, b}
        m1.put("c", 3)
        m1.remove("a")
        m1.get("c")
        rt1.checkpoint(1)  # delta: +c, -a
        m1.put("d", 4)
        m1.get("d")
        rt1.checkpoint(1)  # delta: +d

        rt2 = make_runtime()
        m2 = TangoMap(rt2, oid=1)
        assert m2.items() == (("b", 2), ("c", 3), ("d", 4))
        assert m2.get("a") is None
        # The reload went through the chain (and adopted it as its own
        # base for future deltas), not a from-zero replay.
        assert rt2.status()["store"]["checkpoint_chains"].get(1, 0) >= 1

    def test_delta_only_covers_dirty_keys(self, make_runtime):
        """Updates between checkpoints land in exactly one delta."""
        rt1 = make_runtime()
        m1 = TangoMap(rt1, oid=1)
        for i in range(5):
            m1.put(f"base{i}", i)
        m1.size()
        rt1.checkpoint(1)
        m1.put("base2", 99)  # overwrite: dirty key
        m1.get("base2")
        rt1.checkpoint(1)
        rt2 = make_runtime()
        m2 = TangoMap(rt2, oid=1)
        assert m2.get("base2") == 99  # delta won over the base value
        assert m2.size() == 5

    def test_updates_after_last_delta_still_replayed(self, make_runtime):
        rt1 = make_runtime()
        m1 = TangoMap(rt1, oid=1)
        m1.put("a", 1)
        m1.get("a")
        rt1.checkpoint(1)
        m1.put("b", 2)
        m1.get("b")
        rt1.checkpoint(1)
        m1.put("late", 3)  # after the newest checkpoint's cover
        rt2 = make_runtime()
        m2 = TangoMap(rt2, oid=1)
        assert m2.get("late") == 3
        assert m2.size() == 3

    def test_conflict_detection_survives_delta_reload(self, make_runtime):
        """Version state carried by the chain still detects conflicts."""
        rt1 = make_runtime()
        m1 = TangoMap(rt1, oid=1)
        m1.put("k", 0)
        m1.get("k")
        rt1.checkpoint(1)
        m1.put("k", 1)
        m1.get("k")
        rt1.checkpoint(1)  # delta carries k's bumped version

        rt2 = make_runtime()
        m2 = TangoMap(rt2, oid=1)
        m2.get("k")
        rt2.begin_tx()
        _ = m2.get("k")
        m2.put("k", 2)
        m1.put("k", 99)  # conflicting write from the other client
        assert rt2.end_tx() is False


class TestGCInteraction:
    def test_checkpoint_and_forget_takes_full(self, make_client):
        rt, directory = make_client()
        m = directory.open(TangoMap, "obj")
        m.put("a", 1)
        m.get("a")
        rt.checkpoint(m.oid)
        m.put("b", 2)
        m.get("b")
        # Would be a delta under auto; checkpoint_and_forget must not.
        rt.checkpoint_and_forget(m.oid, directory)
        assert rt.stats["full_checkpoints"] == 2
        assert rt.stats["delta_checkpoints"] == 0

    def test_reload_after_gc_under_delta_usage(self, make_client, cluster):
        """GC after delta checkpoints never strands a fresh client."""
        rt, directory = make_client()
        m = directory.open(TangoMap, "obj")
        for i in range(6):
            m.put(f"k{i}", i)
            m.get(f"k{i}")
            rt.checkpoint(m.oid)  # builds a delta chain
        rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        assert directory.gc() > 0
        with pytest.raises(TrimmedError):
            cluster.client().read(0)
        _rt2, d2 = make_client()
        fresh = d2.open(TangoMap, "obj")
        assert fresh.size() == 6
        assert fresh.get("k3") == 3
