"""Tests for Tango record serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tango.records import (
    NO_TX,
    NO_VERSION,
    CheckpointRecord,
    CommitRecord,
    DecisionRecord,
    ReadSetEntry,
    UpdateRecord,
    decode_records,
    encode_records,
)


class TestUpdateRecord:
    def test_round_trip(self):
        record = UpdateRecord(7, b"payload", key=b"k1", tx_id=42)
        decoded = decode_records(encode_records([record]))
        assert decoded == [record]

    def test_no_key(self):
        record = UpdateRecord(7, b"payload")
        decoded = decode_records(encode_records([record]))[0]
        assert decoded.key is None
        assert decoded.tx_id == NO_TX

    def test_speculative_flag(self):
        assert UpdateRecord(1, b"x", tx_id=5).is_speculative
        assert not UpdateRecord(1, b"x").is_speculative

    def test_empty_key_is_distinct_from_no_key(self):
        record = UpdateRecord(1, b"x", key=b"")
        decoded = decode_records(encode_records([record]))[0]
        assert decoded.key == b""


class TestCommitRecord:
    def _sample(self, **kwargs):
        return CommitRecord(
            tx_id=99,
            read_set=(
                ReadSetEntry(1, b"k", 10),
                ReadSetEntry(2, None, NO_VERSION),
            ),
            write_oids=(2, 3),
            inline_updates=(UpdateRecord(2, b"up", tx_id=99),),
            **kwargs,
        )

    def test_round_trip(self):
        record = self._sample()
        decoded = decode_records(encode_records([record]))[0]
        assert decoded == record

    def test_flags(self):
        record = self._sample(decision_expected=True, forced_abort=True)
        decoded = decode_records(encode_records([record]))[0]
        assert decoded.decision_expected
        assert decoded.forced_abort

    def test_no_version_sentinel(self):
        record = self._sample()
        decoded = decode_records(encode_records([record]))[0]
        assert decoded.read_set[1].version == NO_VERSION

    def test_read_oids_deduplicated(self):
        record = CommitRecord(
            1,
            (ReadSetEntry(5, b"a", 1), ReadSetEntry(5, b"b", 2), ReadSetEntry(6, None, 3)),
            (),
        )
        assert record.read_oids() == (5, 6)


class TestDecisionRecord:
    def test_round_trip(self):
        for committed in (True, False):
            record = DecisionRecord(7, committed)
            assert decode_records(encode_records([record])) == [record]


class TestCheckpointRecord:
    def test_round_trip(self):
        record = CheckpointRecord(
            oid=4,
            covers_offset=100,
            object_version=99,
            key_versions=((b"a", 5), (b"b", 7)),
            state=b"serialized-view",
            unkeyed_version=42,
        )
        decoded = decode_records(encode_records([record]))[0]
        assert decoded == record

    def test_no_version_fields(self):
        record = CheckpointRecord(1, NO_VERSION, NO_VERSION, (), b"")
        decoded = decode_records(encode_records([record]))[0]
        assert decoded.covers_offset == NO_VERSION
        assert decoded.unkeyed_version == NO_VERSION


class TestBatches:
    def test_mixed_batch(self):
        batch = [
            UpdateRecord(1, b"u"),
            CommitRecord(2, (), (1,)),
            DecisionRecord(2, True),
            CheckpointRecord(1, 5, 5, (), b"s"),
        ]
        assert decode_records(encode_records(batch)) == batch

    def test_empty_payload(self):
        assert decode_records(b"") == []

    def test_empty_batch(self):
        assert decode_records(encode_records([])) == []

    def test_unknown_kind_rejected(self):
        raw = bytearray(encode_records([UpdateRecord(1, b"x")]))
        raw[2] = 0xEE  # corrupt the record kind
        with pytest.raises(ValueError):
            decode_records(bytes(raw))


_updates = st.builds(
    UpdateRecord,
    oid=st.integers(min_value=0, max_value=2**32 - 1),
    payload=st.binary(max_size=128),
    key=st.none() | st.binary(max_size=16),
    tx_id=st.integers(min_value=0, max_value=2**64 - 1),
)

_read_entries = st.builds(
    ReadSetEntry,
    oid=st.integers(min_value=0, max_value=2**32 - 1),
    key=st.none() | st.binary(max_size=16),
    version=st.one_of(
        st.just(NO_VERSION), st.integers(min_value=0, max_value=2**62)
    ),
)

_commits = st.builds(
    CommitRecord,
    tx_id=st.integers(min_value=0, max_value=2**64 - 1),
    read_set=st.lists(_read_entries, max_size=4).map(tuple),
    write_oids=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), max_size=4
    ).map(tuple),
    inline_updates=st.lists(_updates, max_size=3).map(tuple),
    decision_expected=st.booleans(),
    forced_abort=st.booleans(),
)


class TestProperties:
    @given(st.lists(_updates, max_size=8))
    def test_update_batches_round_trip(self, batch):
        assert decode_records(encode_records(batch)) == batch

    @given(st.lists(_commits, max_size=4))
    def test_commit_batches_round_trip(self, batch):
        assert decode_records(encode_records(batch)) == batch
