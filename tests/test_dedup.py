"""Tests for the deduplicating chunk store."""

import pytest

from repro.apps.dedup import DedupStore


@pytest.fixture
def store(make_client):
    rt, directory = make_client()
    return DedupStore(rt, directory, chunk_bytes=64)


class TestWritePath:
    def test_round_trip(self, store):
        data = bytes(range(256)) * 2
        store.put_file("f", data)
        assert store.get_file("f") == data

    def test_duplicate_chunks_stored_once(self, store):
        block = b"A" * 64
        stats = store.put_file("f", block * 10)
        assert stats["chunks"] == 10
        assert stats["unique_chunks"] == 1
        assert stats["new_chunks"] == 1
        assert stats["deduplicated"] == 9

    def test_cross_file_dedup(self, store):
        shared = b"S" * 64
        store.put_file("one", shared + b"1" * 64)
        stats = store.put_file("two", shared + b"2" * 64)
        assert stats["new_chunks"] == 1  # only the "2" chunk is new
        assert store.get_file("two") == shared + b"2" * 64

    def test_duplicate_filename_rejected(self, store):
        store.put_file("f", b"x" * 64)
        with pytest.raises(FileExistsError):
            store.put_file("f", b"y" * 64)

    def test_empty_file(self, store):
        store.put_file("empty", b"")
        assert store.get_file("empty") == b""

    def test_odd_sized_tail_chunk(self, store):
        data = b"q" * 100  # 64 + 36
        store.put_file("f", data)
        assert store.get_file("f") == data


class TestChunksLiveInTheLog:
    def test_index_holds_offsets(self, store):
        store.put_file("f", b"Z" * 64)
        import hashlib

        digest = hashlib.sha256(b"Z" * 64).hexdigest()
        offset = store.chunk_offset(digest)
        assert isinstance(offset, int) and offset >= 0

    def test_fresh_client_reads_same_chunks(self, cluster, make_client):
        rt1, d1 = make_client()
        store1 = DedupStore(rt1, d1, chunk_bytes=64)
        data = bytes(range(200))
        store1.put_file("f", data)
        rt2, d2 = make_client()
        store2 = DedupStore(rt2, d2, chunk_bytes=64)
        assert store2.get_file("f") == data
        assert store2.files() == ("f",)


class TestDeletePath:
    def test_delete_releases_unshared_chunks(self, store):
        store.put_file("f", b"U" * 64)
        store.delete_file("f")
        assert store.files() == ()
        assert store.stats()["unique_chunks"] == 0

    def test_shared_chunks_survive_deletion(self, store):
        shared = b"S" * 64
        store.put_file("a", shared)
        store.put_file("b", shared)
        store.delete_file("a")
        assert store.get_file("b") == shared

    def test_delete_missing_file(self, store):
        with pytest.raises(FileNotFoundError):
            store.delete_file("ghost")

    def test_refcounts_across_delete_cycles(self, store):
        shared = b"R" * 64
        store.put_file("a", shared * 2)  # two references
        store.put_file("b", shared)  # one more
        store.delete_file("a")
        assert store.get_file("b") == shared
        store.delete_file("b")
        assert store.stats()["unique_chunks"] == 0


class TestStats:
    def test_dedup_ratio(self, store):
        block = b"D" * 64
        store.put_file("f", block * 4)
        stats = store.stats()
        assert stats["files"] == 1
        assert stats["unique_chunks"] == 1
        assert stats["total_references"] == 4
        assert stats["dedup_ratio"] == 4.0

    def test_empty_store(self, store):
        stats = store.stats()
        assert stats == {
            "files": 0,
            "unique_chunks": 0,
            "total_references": 0,
            "dedup_ratio": 0.0,
        }
