"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools
import os

import pytest

from repro.corfu import CorfuCluster
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime

_client_ids = itertools.count(1)


@pytest.fixture
def cluster() -> CorfuCluster:
    """A small in-process CORFU deployment (3 chains of 2)."""
    return CorfuCluster(num_sets=3, replication_factor=2)


@pytest.fixture
def big_cluster() -> CorfuCluster:
    """The paper's 9x2 deployment."""
    return CorfuCluster(num_sets=9, replication_factor=2)


@pytest.fixture
def make_runtime(cluster):
    """Factory for runtimes (clients) on the shared cluster fixture."""

    def factory(name: str = None) -> TangoRuntime:
        cid = next(_client_ids)
        return TangoRuntime(cluster, client_id=cid, name=name or f"client-{cid}")

    return factory


@pytest.fixture
def make_client(cluster, make_runtime):
    """Factory for (runtime, directory) pairs on the shared cluster."""

    def factory(name: str = None):
        runtime = make_runtime(name)
        return runtime, TangoDirectory(runtime)

    return factory


@pytest.fixture(scope="session", autouse=True)
def _lockcheck_session():
    """Opt-in runtime lock-order sanitizer for the whole session.

    ``REPRO_LOCKCHECK=1 pytest`` wraps every lock the repro code
    creates; a witnessed lock-order cycle anywhere in the run fails
    the session at teardown (see docs/CONCURRENCY.md).
    """
    if os.environ.get("REPRO_LOCKCHECK") != "1":
        yield
        return
    from repro.tools import lockcheck

    monitor = lockcheck.install()
    yield
    lockcheck.uninstall()
    monitor.assert_acyclic()
