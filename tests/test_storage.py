"""Tests for the flash storage unit (write-once semantics, trim, seal)."""

import pytest

from repro.corfu.storage import FlashUnit
from repro.errors import (
    NodeDownError,
    SealedError,
    TrimmedError,
    UnwrittenError,
    WrittenError,
)


@pytest.fixture
def unit():
    return FlashUnit("flash-0")


class TestWriteOnce:
    def test_write_then_read(self, unit):
        unit.write(5, b"data", epoch=0)
        assert unit.read(5, epoch=0) == b"data"

    def test_double_write_rejected(self, unit):
        unit.write(5, b"first", epoch=0)
        with pytest.raises(WrittenError):
            unit.write(5, b"second", epoch=0)
        assert unit.read(5, epoch=0) == b"first"

    def test_read_unwritten(self, unit):
        with pytest.raises(UnwrittenError):
            unit.read(0, epoch=0)

    def test_is_written(self, unit):
        assert not unit.is_written(3, epoch=0)
        unit.write(3, b"x", epoch=0)
        assert unit.is_written(3, epoch=0)

    def test_negative_address_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.write(-1, b"x", epoch=0)

    def test_sparse_address_space(self, unit):
        unit.write(0, b"a", epoch=0)
        unit.write(2**40, b"b", epoch=0)
        assert unit.read(2**40, epoch=0) == b"b"


class TestTrim:
    def test_trim_single(self, unit):
        unit.write(5, b"x", epoch=0)
        unit.trim(5, epoch=0)
        with pytest.raises(TrimmedError):
            unit.read(5, epoch=0)

    def test_trimmed_counts_as_written(self, unit):
        unit.write(5, b"x", epoch=0)
        unit.trim(5, epoch=0)
        assert unit.is_written(5, epoch=0)
        with pytest.raises(TrimmedError):
            unit.write(5, b"y", epoch=0)

    def test_trim_idempotent(self, unit):
        unit.write(5, b"x", epoch=0)
        unit.trim(5, epoch=0)
        unit.trim(5, epoch=0)

    def test_trim_unwritten_address(self, unit):
        unit.trim(9, epoch=0)
        with pytest.raises(TrimmedError):
            unit.read(9, epoch=0)

    def test_trim_prefix(self, unit):
        for addr in range(10):
            unit.write(addr, b"%d" % addr, epoch=0)
        unit.trim_prefix(7, epoch=0)
        for addr in range(7):
            with pytest.raises(TrimmedError):
                unit.read(addr, epoch=0)
        assert unit.read(7, epoch=0) == b"7"

    def test_trim_prefix_is_monotone(self, unit):
        unit.write(5, b"x", epoch=0)
        unit.trim_prefix(4, epoch=0)
        unit.trim_prefix(2, epoch=0)  # lower prefix is a no-op
        assert unit.read(5, epoch=0) == b"x"
        with pytest.raises(TrimmedError):
            unit.read(3, epoch=0)

    def test_sparse_trims_compact_into_prefix(self, unit):
        for addr in range(5):
            unit.write(addr, b"x", epoch=0)
        for addr in (0, 1, 2):
            unit.trim(addr, epoch=0)
        # Internal compaction keeps memory bounded; semantics unchanged.
        assert unit._trimmed_prefix == 3
        assert unit._trimmed_sparse == set()


class TestLocalTail:
    def test_empty(self, unit):
        assert unit.local_tail() == 0

    def test_after_writes(self, unit):
        unit.write(0, b"x", epoch=0)
        unit.write(7, b"y", epoch=0)
        assert unit.local_tail() == 8

    def test_trim_preserves_tail(self, unit):
        """The slow check must still work after reclamation."""
        unit.write(9, b"x", epoch=0)
        unit.trim(9, epoch=0)
        assert unit.local_tail() == 10

    def test_trim_prefix_preserves_tail(self, unit):
        for addr in range(4):
            unit.write(addr, b"x", epoch=0)
        unit.trim_prefix(4, epoch=0)
        assert unit.local_tail() == 4


class TestSeal:
    def test_seal_fences_old_epoch(self, unit):
        unit.write(0, b"x", epoch=0)
        unit.seal(1)
        with pytest.raises(SealedError):
            unit.write(1, b"y", epoch=0)
        with pytest.raises(SealedError):
            unit.read(0, epoch=0)

    def test_new_epoch_accepted_after_seal(self, unit):
        unit.seal(1)
        unit.write(0, b"x", epoch=1)
        assert unit.read(0, epoch=1) == b"x"

    def test_seal_returns_local_tail(self, unit):
        unit.write(3, b"x", epoch=0)
        assert unit.seal(1) == 4

    def test_seal_not_backwards(self, unit):
        unit.seal(2)
        with pytest.raises(SealedError):
            unit.seal(1)
        with pytest.raises(SealedError):
            unit.seal(2)

    def test_future_epoch_requests_pass(self, unit):
        # A client with a newer projection than the unit has seen.
        unit.write(0, b"x", epoch=3)
        assert unit.epoch == 0  # seal is explicit, not implied


class TestCrashRecover:
    def test_down_unit_rejects_everything(self, unit):
        unit.write(0, b"x", epoch=0)
        unit.crash()
        assert unit.is_down
        with pytest.raises(NodeDownError):
            unit.read(0, epoch=0)
        with pytest.raises(NodeDownError):
            unit.write(1, b"y", epoch=0)
        with pytest.raises(NodeDownError):
            unit.local_tail()

    def test_flash_is_nonvolatile(self, unit):
        unit.write(0, b"x", epoch=0)
        unit.crash()
        unit.recover()
        assert unit.read(0, epoch=0) == b"x"

    def test_epoch_survives_crash(self, unit):
        unit.seal(3)
        unit.crash()
        unit.recover()
        with pytest.raises(SealedError):
            unit.write(0, b"x", epoch=2)


class TestCounters:
    def test_read_write_counters(self, unit):
        unit.write(0, b"x", epoch=0)
        unit.read(0, epoch=0)
        unit.read(0, epoch=0)
        assert unit.writes == 1
        assert unit.reads == 2

    def test_written_addresses(self, unit):
        unit.write(3, b"x", epoch=0)
        unit.write(1, b"y", epoch=0)
        assert unit.written_addresses() == [1, 3]
