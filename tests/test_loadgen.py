"""Tests for the functional-layer load generator."""

import pytest

from repro.bench.loadgen import LoadGenerator, LoadMix, LoadReport


class TestLoadMix:
    def test_pure_read_mix(self):
        gen = LoadGenerator(
            num_clients=2, num_keys=50,
            mix=LoadMix(reads=1, writes=0, transactions=0),
        )
        report = gen.run(40)
        assert report.ops == {"read": 40}
        assert report.commits == report.aborts == 0

    def test_mixed_workload_hits_every_op(self):
        gen = LoadGenerator(
            num_clients=2, num_keys=50,
            mix=LoadMix(reads=0.4, writes=0.4, transactions=0.2),
            seed=3,
        )
        report = gen.run(120)
        assert set(report.ops) == {"read", "write", "tx"}
        assert sum(report.ops.values()) == 120

    def test_transactions_commit_under_low_contention(self):
        gen = LoadGenerator(
            num_clients=2, num_keys=10_000,
            mix=LoadMix(reads=0, writes=0, transactions=1),
        )
        report = gen.run(30)
        assert report.commits + report.aborts == 30
        assert report.abort_rate() < 0.5  # plenty of keys, few clients

    def test_contention_raises_abort_rate(self):
        calm = LoadGenerator(
            num_clients=2, num_keys=10_000,
            mix=LoadMix(reads=0, writes=0, transactions=1), seed=5,
        ).run(40)
        hot = LoadGenerator(
            num_clients=2, num_keys=4, distribution="uniform",
            mix=LoadMix(reads=0, writes=0, transactions=1), seed=5,
        ).run(40)
        assert hot.abort_rate() >= calm.abort_rate()


class TestLoadReport:
    def test_throughput_and_percentiles(self):
        report = LoadReport(
            duration_s=2.0,
            ops={"read": 10},
            latencies_ms={"read": [float(i) for i in range(1, 11)]},
        )
        assert report.throughput() == 5.0
        assert report.throughput("read") == 5.0
        assert report.percentile_ms("read", 50) == 6.0
        assert report.percentile_ms("read", 99) == 10.0
        assert report.percentile_ms("ghost", 99) == 0.0

    def test_rows_shape(self):
        gen = LoadGenerator(num_clients=1, num_keys=20)
        report = gen.run(30)
        rows = report.rows()
        assert rows[-1]["op"] == "TOTAL"
        assert all("ops_per_sec" in row for row in rows)

    def test_views_consistent_after_load(self):
        gen = LoadGenerator(num_clients=3, num_keys=30, seed=9)
        gen.run(90)
        states = [dict(m.items()) for m in gen.maps]
        assert states[0] == states[1] == states[2]
