"""Serializability harness: committed transactions replay serially.

The guarantee under test (section 3.2): "Tango provides the same
isolation guarantee as 2-phase locking, which is at least as strong as
strict serializability."

Method: run a randomized mix of read-modify-write transactions across
several clients. Each committed transaction also appends a record of
what it did to an audit list *within the same transaction*, so the audit
order is the serialization order (commit-record order in the log).
Replaying the audit against a plain Python dict must produce exactly the
final Tango state — if any committed transaction observed a
non-serializable view, the replay diverges.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corfu import CorfuCluster
from repro.objects import TangoList, TangoMap
from repro.tango.runtime import TangoRuntime

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_KEYS = ["a", "b", "c"]


def _build(n_clients):
    cluster = CorfuCluster(num_sets=3, replication_factor=2)
    runtimes = [TangoRuntime(cluster, client_id=i + 1) for i in range(n_clients)]
    maps = [TangoMap(rt, oid=1) for rt in runtimes]
    audits = [TangoList(rt, oid=2) for rt in runtimes]
    maps[0].put("a", 0)
    maps[0].put("b", 0)
    maps[0].put("c", 0)
    for m in maps:
        m.get("a")
    return cluster, runtimes, maps, audits


# One step: (client, read_key_index, write_key_index, increment)
_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=5),
    ),
    max_size=15,
)


class TestSerializability:
    @given(steps=_steps)
    @_settings
    def test_committed_history_replays_serially(self, steps):
        _cluster, runtimes, maps, audits = _build(3)
        for client, read_index, write_index, delta in steps:
            rt = runtimes[client]
            m, audit = maps[client], audits[client]
            read_key = _KEYS[read_index]
            write_key = _KEYS[write_index]

            def body(m=m, audit=audit, read_key=read_key,
                     write_key=write_key, delta=delta):
                observed = m.get(read_key)
                new_value = observed + delta
                m.put(write_key, new_value)
                audit.append(
                    {"r": read_key, "saw": observed, "w": write_key,
                     "put": new_value}
                )

            rt.run_transaction(body)

        # Replay the audit (= serialization order) on a plain dict.
        replay = {"a": 0, "b": 0, "c": 0}
        for action in audits[0].to_list():
            # The transaction's observation must match the serial state
            # at its position — this is the serializability check.
            assert replay[action["r"]] == action["saw"], (
                f"non-serializable read: {action} against {replay}"
            )
            replay[action["w"]] = action["put"]

        final = {k: maps[0].get(k) for k in _KEYS}
        assert final == replay

    @given(steps=_steps)
    @_settings
    def test_audit_identical_at_every_client(self, steps):
        _cluster, runtimes, maps, audits = _build(3)
        for client, read_index, write_index, delta in steps:
            rt, m, audit = runtimes[client], maps[client], audits[client]
            read_key, write_key = _KEYS[read_index], _KEYS[write_index]

            def body(m=m, audit=audit, read_key=read_key,
                     write_key=write_key, delta=delta):
                m.put(write_key, m.get(read_key) + delta)
                audit.append([read_key, write_key, delta])

            rt.run_transaction(body)
        histories = [audit.to_list() for audit in audits]
        assert histories[0] == histories[1] == histories[2]
