"""Tests for the YCSB-style zipfian generator."""

import random

import pytest

from repro.util.zipf import ScrambledZipfGenerator, ZipfGenerator, estimate_skew


class TestZipfGenerator:
    def test_range(self):
        gen = ZipfGenerator(1000, rng=random.Random(1))
        for _ in range(2000):
            assert 0 <= gen.sample() < 1000

    def test_rank_zero_most_popular(self):
        gen = ZipfGenerator(1000, rng=random.Random(2))
        counts = {}
        for _ in range(20000):
            s = gen.sample()
            counts[s] = counts.get(s, 0) + 1
        assert counts[0] == max(counts.values())

    def test_high_skew(self):
        """Workload 'a' skew: top 1% of keys get a large share."""
        gen = ZipfGenerator(10000, rng=random.Random(3))
        samples = [gen.sample() for _ in range(30000)]
        assert estimate_skew(samples, top_fraction=0.01) > 0.3

    def test_uniform_comparison(self):
        rng = random.Random(4)
        uniform = [rng.randrange(10000) for _ in range(30000)]
        assert estimate_skew(uniform, top_fraction=0.01) < 0.1

    def test_large_universe_setup_is_fast(self):
        # Euler-Maclaurin path: 10M keys must not take O(n) setup.
        gen = ZipfGenerator(10_000_000, rng=random.Random(5))
        assert 0 <= gen.sample() < 10_000_000

    def test_zeta_approximation_accuracy(self):
        exact = ZipfGenerator._zeta(10000, 0.99)
        brute = sum(1.0 / (i ** 0.99) for i in range(1, 10001))
        assert abs(exact - brute) < 1e-6

    def test_zeta_large_n_close_to_brute_force(self):
        approx = ZipfGenerator._zeta(50000, 0.99)
        brute = sum(1.0 / (i ** 0.99) for i in range(1, 50001))
        assert abs(approx - brute) / brute < 1e-4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=1.5)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=0.0)

    def test_callable_interface(self):
        gen = ZipfGenerator(100, rng=random.Random(6))
        assert 0 <= gen() < 100

    def test_deterministic_with_seeded_rng(self):
        a = ZipfGenerator(1000, rng=random.Random(42))
        b = ZipfGenerator(1000, rng=random.Random(42))
        assert [a.sample() for _ in range(100)] == [b.sample() for _ in range(100)]


class TestScrambledZipf:
    def test_range(self):
        gen = ScrambledZipfGenerator(1000, rng=random.Random(7))
        for _ in range(1000):
            assert 0 <= gen.sample() < 1000

    def test_hot_keys_scattered(self):
        """Scrambling keeps the skew but spreads hot keys over the space."""
        gen = ScrambledZipfGenerator(10000, rng=random.Random(8))
        samples = [gen.sample() for _ in range(30000)]
        assert estimate_skew(samples, top_fraction=0.01) > 0.3
        counts = {}
        for s in samples:
            counts[s] = counts.get(s, 0) + 1
        hottest = max(counts, key=counts.get)
        # The hottest key is (almost surely) not key 0 after scrambling.
        assert hottest != 0


class TestEstimateSkew:
    def test_empty(self):
        assert estimate_skew([]) == 0.0

    def test_single_key(self):
        assert estimate_skew([5] * 100) == 1.0
