"""Tests for TangoBK: the single-writer ledger (section 6.3)."""

import pytest

from repro.errors import LedgerClosedError, LedgerFencedError
from repro.objects.bookkeeper import Ledger, TangoBK


@pytest.fixture
def bk(make_client):
    rt, directory = make_client()
    return TangoBK(rt, directory)


@pytest.fixture
def bk_pair(make_client):
    rt1, d1 = make_client()
    rt2, d2 = make_client()
    return TangoBK(rt1, d1), TangoBK(rt2, d2)


class TestSingleWriter:
    def test_add_entries_sequential_ids(self, bk):
        ledger = bk.create_ledger("l")
        ids = [ledger.add_entry(b"e%d" % i) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_read_entries(self, bk):
        ledger = bk.create_ledger("l")
        for i in range(5):
            ledger.add_entry(b"e%d" % i)
        assert ledger.read_entries(1, 3) == (b"e1", b"e2", b"e3")
        assert ledger.last_entry_id() == 4

    def test_read_out_of_range(self, bk):
        ledger = bk.create_ledger("l")
        ledger.add_entry(b"x")
        for first, last in ((-1, 0), (0, 5), (1, 0)):
            with pytest.raises(ValueError):
                ledger.read_entries(first, last)

    def test_second_claim_rejected(self, bk_pair):
        bk1, bk2 = bk_pair
        bk1.create_ledger("l", writer_token="w1")
        with pytest.raises(LedgerFencedError):
            bk2.create_ledger("l", writer_token="w2")

    def test_entry_offsets_index_the_log(self, bk):
        """Ledger views index log-structured storage (section 3.1)."""
        ledger = bk.create_ledger("l")
        ledger.add_entry(b"a")
        ledger.add_entry(b"b")
        assert ledger.entry_offset(1) > ledger.entry_offset(0)

    def test_close_stops_writes(self, bk):
        ledger = bk.create_ledger("l")
        ledger.add_entry(b"x")
        ledger.close()
        assert ledger.is_closed
        with pytest.raises(LedgerClosedError):
            ledger.add_entry(b"y")


class TestFencing:
    def test_fence_deposes_writer(self, bk_pair):
        bk1, bk2 = bk_pair
        writer = bk1.create_ledger("l", writer_token="w1")
        for i in range(3):
            writer.add_entry(b"e%d" % i)
        reader = bk2.open_ledger("l", recovery=True, writer_token="w2")
        assert reader.last_entry_id() == 2
        with pytest.raises((LedgerFencedError, LedgerClosedError)):
            writer.add_entry(b"after-fence")

    def test_fence_without_close_reports_fenced(self, bk_pair):
        bk1, bk2 = bk_pair
        writer = bk1.create_ledger("l", writer_token="w1")
        writer.add_entry(b"x")
        reader = bk2.open_ledger("l", writer_token="w2")
        # Raw fence (no recovery close): the old writer sees Fenced.
        import json

        reader._update(json.dumps({"op": "fence", "writer": "w2"}).encode())
        with pytest.raises(LedgerFencedError):
            writer.add_entry(b"y")

    def test_recovered_prefix_is_stable(self, bk_pair):
        """After recovery, the entry set never changes again."""
        bk1, bk2 = bk_pair
        writer = bk1.create_ledger("l", writer_token="w1")
        for i in range(4):
            writer.add_entry(b"e%d" % i)
        reader = bk2.open_ledger("l", recovery=True, writer_token="w2")
        before = reader.read_entries(0, reader.last_entry_id())
        try:
            writer.add_entry(b"zombie")
        except (LedgerFencedError, LedgerClosedError):
            pass
        assert reader.read_entries(0, reader.last_entry_id()) == before

    def test_reader_without_recovery_sees_live_writes(self, bk_pair):
        bk1, bk2 = bk_pair
        writer = bk1.create_ledger("l", writer_token="w1")
        reader = bk2.open_ledger("l", writer_token="r")
        writer.add_entry(b"a")
        assert reader.last_entry_id() == 0
        writer.add_entry(b"b")
        assert reader.read_entries(0, 1) == (b"a", b"b")


class TestLedgerManager:
    def test_ledgers_independent(self, bk):
        l1 = bk.create_ledger("one")
        l2 = bk.create_ledger("two")
        l1.add_entry(b"in-one")
        l2.add_entry(b"in-two")
        assert l1.read_entries(0, 0) == (b"in-one",)
        assert l2.read_entries(0, 0) == (b"in-two",)

    def test_delete_unbinds_name(self, bk):
        ledger = bk.create_ledger("temp")
        ledger.add_entry(b"x")
        bk.delete_ledger("temp")
        fresh = bk.create_ledger("temp")  # a brand-new ledger object
        assert fresh.oid != ledger.oid
        assert fresh.last_entry_id() == -1

    def test_writes_map_to_single_appends(self, make_client):
        """Section 6.3: ledger writes translate directly into appends."""
        rt, directory = make_client()
        bk = TangoBK(rt, directory)
        ledger = bk.create_ledger("l")
        before = rt.streams.corfu.appends
        ledger.add_entry(b"payload")
        assert rt.streams.corfu.appends == before + 1


class TestRecoveryAcrossClients:
    def test_fresh_view_replays_ledger(self, bk_pair, make_client):
        bk1, _ = bk_pair
        writer = bk1.create_ledger("l", writer_token="w1")
        for i in range(6):
            writer.add_entry(b"e%d" % i)
        rt3, d3 = make_client()
        reader = TangoBK(rt3, d3).open_ledger("l", writer_token="r3")
        assert reader.last_entry_id() == 5
        assert reader.read_entries(0, 5) == tuple(b"e%d" % i for i in range(6))
        assert reader.current_writer == "w1"


class TestBatchAndLAC:
    def test_add_entries_batch(self, bk):
        ledger = bk.create_ledger("l")
        last = ledger.add_entries([b"a", b"b", b"c"])
        assert last == 2
        assert ledger.read_entries(0, 2) == (b"a", b"b", b"c")
        assert ledger.length() == 3

    def test_batch_then_single_appends_interleave(self, bk):
        ledger = bk.create_ledger("l")
        ledger.add_entry(b"first")
        ledger.add_entries([b"x", b"y"])
        assert ledger.add_entry(b"last") == 3
        assert ledger.length() == 4

    def test_empty_batch(self, bk):
        ledger = bk.create_ledger("l")
        assert ledger.add_entries([]) == -1

    def test_batch_rejected_when_fenced(self, bk_pair):
        bk1, bk2 = bk_pair
        writer = bk1.create_ledger("l", writer_token="w1")
        writer.add_entry(b"x")
        bk2.open_ledger("l", recovery=True, writer_token="w2")
        with pytest.raises((LedgerFencedError, LedgerClosedError)):
            writer.add_entries([b"y", b"z"])

    def test_read_last_confirmed(self, bk):
        ledger = bk.create_ledger("l")
        assert ledger.read_last_confirmed() == -1
        ledger.add_entries([b"a", b"b"])
        assert ledger.read_last_confirmed() == 1
