"""Tests for in-process cluster wiring and deployment parameters."""

import pytest

from repro.corfu import CorfuCluster, Projection, ReplicaSet
from repro.errors import NodeDownError


class TestConstruction:
    def test_default_is_paper_deployment(self):
        cluster = CorfuCluster()
        proj = cluster.projection
        assert len(proj.replica_sets) == 9
        assert all(len(rs) == 2 for rs in proj.replica_sets)
        assert cluster.entry_size == 4096
        assert cluster.k == 4

    def test_custom_projection(self):
        proj = Projection(0, (ReplicaSet(("x", "y")),), "my-seq")
        cluster = CorfuCluster(projection=proj)
        assert cluster.projection.sequencer == "my-seq"
        assert cluster.storage("x").name == "x"

    def test_unknown_storage_node(self, cluster):
        with pytest.raises(NodeDownError):
            cluster.storage("ghost")

    def test_sequencer_created_on_demand(self, cluster):
        seq = cluster.sequencer("brand-new-seq")
        assert seq.name == "brand-new-seq"
        assert cluster.sequencer("brand-new-seq") is seq


class TestProjectionInstall:
    def test_stale_epoch_rejected(self, cluster):
        current = cluster.projection
        with pytest.raises(ValueError):
            cluster.install_projection(current)

    def test_newer_epoch_accepted(self, cluster):
        new = cluster.projection.with_sequencer("seq-next")
        cluster.install_projection(new)
        assert cluster.projection.epoch == 1

    def test_concurrent_installs_first_wins(self, cluster):
        base = cluster.projection
        a = base.with_sequencer("seq-a")
        b = base.with_sequencer("seq-b")
        cluster.install_projection(a)
        with pytest.raises(ValueError):
            cluster.install_projection(b)
        assert cluster.projection.sequencer == "seq-a"


class TestCounters:
    def test_storage_counters_aggregate(self, cluster):
        client = cluster.client()
        client.append(b"x")
        client.read(0)
        assert cluster.total_storage_writes() >= 2  # 2 replicas
        assert cluster.total_storage_reads() >= 1

    def test_client_counters(self, cluster):
        client = cluster.client()
        client.append(b"x")
        client.read(0)
        assert client.appends == 1
        assert client.reads == 1


class TestFaultInjectionSurface:
    def test_crash_and_recover_storage(self, cluster):
        victim = cluster.projection.replica_sets[0].head
        cluster.crash_storage(victim)
        assert cluster.storage(victim).is_down
        cluster.recover_storage(victim)
        assert not cluster.storage(victim).is_down

    def test_crash_specific_sequencer(self, cluster):
        cluster.crash_sequencer("seq-0")
        assert cluster.sequencer("seq-0").is_down
