"""Tests for the CORFU client library (append/read/check/trim/fill)."""

import pytest

from repro.corfu import CorfuCluster
from repro.errors import (
    TooManyStreamsError,
    TrimmedError,
    UnwrittenError,
)


@pytest.fixture
def client(cluster):
    return cluster.client()


class TestAppendRead:
    def test_append_returns_sequential_offsets(self, client):
        offsets = [client.append(b"entry-%d" % i) for i in range(5)]
        assert offsets == list(range(5))

    def test_read_round_trips_payload(self, client):
        offset = client.append(b"hello log")
        entry = client.read(offset)
        assert entry.payload == b"hello log"
        assert not entry.is_junk

    def test_appends_stripe_across_chains(self, cluster, client):
        for i in range(6):
            client.append(b"e%d" % i)
        # 3 chains, 6 entries: each chain holds 2 local addresses.
        proj = cluster.projection
        for rset in proj.replica_sets:
            head = cluster.storage(rset.head)
            assert head.local_tail() == 2

    def test_stream_headers_written(self, client):
        client.append(b"a", stream_ids=(5,))
        offset = client.append(b"b", stream_ids=(5,))
        entry = client.read(offset)
        header = entry.header_for(5)
        assert header is not None
        assert header.previous_offset() == 0

    def test_multiappend_single_position(self, client):
        """A multiappend occupies one position in the global order."""
        offset = client.append(b"tx", stream_ids=(1, 2, 3))
        entry = client.read(offset)
        assert entry.stream_ids() == (1, 2, 3)
        assert client.check() == offset + 1

    def test_too_many_streams_rejected(self, cluster, client):
        with pytest.raises(TooManyStreamsError):
            client.append(b"x", stream_ids=tuple(range(cluster.max_streams + 1)))

    def test_oversized_payload_rejected(self, cluster, client):
        with pytest.raises(ValueError):
            client.append(b"x" * (cluster.entry_size + 1))

    def test_read_hole(self, cluster, client):
        # Reserve an offset without writing it (simulated crash).
        seq = cluster.sequencer()
        seq.increment()
        client.append(b"after-hole")  # offset 1
        with pytest.raises(UnwrittenError):
            client.read(0)


class TestCheck:
    def test_fast_check_empty(self, client):
        assert client.check() == 0

    def test_fast_check_advances(self, client):
        client.append(b"x")
        client.append(b"y")
        assert client.check() == 2

    def test_slow_check_matches_fast(self, client):
        for i in range(7):
            client.append(b"e%d" % i)
        assert client.check(fast=False) == client.check(fast=True)

    def test_slow_check_survives_sequencer_crash(self, cluster, client):
        for i in range(5):
            client.append(b"e%d" % i)
        cluster.crash_sequencer()
        assert client.check(fast=False) == 5

    def test_linearizable_check_sees_completed_appends(self, cluster):
        """A check by one client sees another client's appends."""
        c1, c2 = cluster.client(), cluster.client()
        c1.append(b"from-c1")
        assert c2.check() == 1


class TestFill:
    def test_fill_patches_hole(self, cluster, client):
        cluster.sequencer().increment()  # hole at 0
        client.fill(0)
        assert client.read(0).is_junk

    def test_fill_loses_to_slow_writer(self, cluster, client):
        """If the original writer completes first, fill is a no-op."""
        client.append(b"real-data")
        client.fill(0)
        assert client.read(0).payload == b"real-data"

    def test_fill_races_are_safe(self, cluster):
        cluster.sequencer().increment()
        c1, c2 = cluster.client(), cluster.client()
        c1.fill(0)
        c2.fill(0)  # double-fill must not error
        assert c1.read(0).is_junk


class TestTrim:
    def test_trim_single_offset(self, client):
        offset = client.append(b"x")
        client.trim(offset)
        with pytest.raises(TrimmedError):
            client.read(offset)

    def test_trim_prefix(self, client):
        for i in range(9):
            client.append(b"e%d" % i)
        client.trim_prefix(6)
        for offset in range(6):
            with pytest.raises(TrimmedError):
                client.read(offset)
        assert client.read(6).payload == b"e6"

    def test_trim_prefix_preserves_tail(self, client):
        for i in range(9):
            client.append(b"e%d" % i)
        client.trim_prefix(6)
        assert client.check(fast=False) == 9


class TestFaultTolerance:
    def test_append_survives_storage_failure(self, cluster, client):
        """Losing one replica of a chain is transparent to appends."""
        client.append(b"before")
        victim = cluster.projection.replica_sets[0].head
        cluster.crash_storage(victim)
        for i in range(6):
            client.append(b"after-%d" % i)
        assert cluster.projection.epoch == 1
        assert victim not in cluster.projection.all_nodes()

    def test_read_survives_storage_failure(self, cluster, client):
        offsets = [client.append(b"e%d" % i) for i in range(6)]
        victim = cluster.projection.replica_sets[0].tail
        cluster.crash_storage(victim)
        for offset in offsets:
            assert client.read(offset).payload == b"e%d" % offset

    def test_append_survives_sequencer_failure(self, cluster, client):
        client.append(b"before")
        cluster.crash_sequencer()
        offset = client.append(b"after")
        assert offset == 1
        assert client.read(1).payload == b"after"

    def test_two_clients_after_reconfiguration(self, cluster):
        """A client with a stale projection transparently refreshes.

        Its first reserved offset may be abandoned mid-append (a stale
        epoch fails the chain write), leaving a hole any client may
        fill — but the append itself completes at some later offset.
        """
        c1, c2 = cluster.client(), cluster.client()
        c1.append(b"x")
        victim = cluster.projection.replica_sets[1].head
        cluster.crash_storage(victim)
        c1.append(b"y")  # c1 drives reconfiguration
        offset = c2.append(b"z")  # c2 held the old projection
        assert offset >= 2
        assert c2.read(offset).payload == b"z"
        # Any abandoned reservations below are fillable holes.
        for maybe_hole in range(offset):
            if not c1.is_written(maybe_hole):
                c1.fill(maybe_hole)
                assert c1.read(maybe_hole).is_junk

    def test_max_payload_property(self, cluster, client):
        assert client.max_payload > 0
        assert client.max_streams == cluster.max_streams
