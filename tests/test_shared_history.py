"""Figure 5(b): different in-memory structures over the same history.

Paper section 3.1: "objects with different in-memory data structures can
share the same data on the log. For example, a namespace can be
represented by different trees, one ordered on the filename and the
other on a directory hierarchy, allowing applications to perform two
types of queries efficiently."

Here, one client hosts a plain :class:`TangoMap` while another hosts a
sorted key index over the *same stream* — same OID, same update records,
different view structure.
"""

import bisect
import json

import pytest

from repro.objects import TangoMap
from repro.tango.object import TangoObject


class SortedKeyIndex(TangoObject):
    """A view of a TangoMap's stream that keeps keys sorted.

    Answers "list all keys starting with B" style queries in O(log n),
    which the hash-map view cannot.
    """

    def __init__(self, runtime, oid, host_view=True):
        self._keys = []
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload, offset):
        op = json.loads(payload.decode("utf-8"))
        if op["op"] == "put":
            index = bisect.bisect_left(self._keys, op["k"])
            if index == len(self._keys) or self._keys[index] != op["k"]:
                self._keys.insert(index, op["k"])
        elif op["op"] == "remove":
            index = bisect.bisect_left(self._keys, op["k"])
            if index < len(self._keys) and self._keys[index] == op["k"]:
                self._keys.pop(index)
        else:  # clear
            self._keys.clear()

    def get_checkpoint(self):
        return json.dumps(self._keys).encode("utf-8")

    def load_checkpoint(self, state):
        self._keys = json.loads(state.decode("utf-8"))

    def prefix(self, text):
        """All keys starting with *text*, in order (linearizable)."""
        self._query()
        lo = bisect.bisect_left(self._keys, text)
        hi = bisect.bisect_left(self._keys, text + "￿")
        return tuple(self._keys[lo:hi])

    def first(self):
        self._query()
        return self._keys[0] if self._keys else None


class TestSharedHistory:
    def test_two_structures_one_stream(self, make_runtime):
        rt_map, rt_index = make_runtime(), make_runtime()
        mapping = TangoMap(rt_map, oid=1)
        index = SortedKeyIndex(rt_index, oid=1)
        for name in ("beta", "alpha", "bravo", "charlie"):
            mapping.put(name, name.upper())
        assert mapping.get("bravo") == "BRAVO"
        assert index.prefix("b") == ("beta", "bravo")
        assert index.first() == "alpha"

    def test_removals_propagate_to_both_views(self, make_runtime):
        rt_map, rt_index = make_runtime(), make_runtime()
        mapping = TangoMap(rt_map, oid=1)
        index = SortedKeyIndex(rt_index, oid=1)
        mapping.put("a", 1)
        mapping.put("b", 2)
        mapping.remove("a")
        assert index.prefix("") == ("b",)
        assert mapping.get("a") is None

    def test_index_writes_visible_in_map(self, make_runtime):
        """Either view may mutate; the log is the object."""
        rt_map, rt_index = make_runtime(), make_runtime()
        mapping = TangoMap(rt_map, oid=1)
        index = SortedKeyIndex(rt_index, oid=1)
        # The index client writes through the shared stream using the
        # map's record format.
        op = json.dumps({"op": "put", "k": "via-index", "v": 9})
        rt_index.update_helper(1, op.encode("utf-8"), key=b"via-index")
        assert mapping.get("via-index") == 9
        assert index.prefix("via") == ("via-index",)

    def test_transaction_consistent_across_structures(self, make_runtime):
        """A TX validated on the map's versions applies to both views."""
        rt_map, rt_index = make_runtime(), make_runtime()
        mapping = TangoMap(rt_map, oid=1)
        index = SortedKeyIndex(rt_index, oid=1)
        mapping.put("k", 0)
        mapping.get("k")

        def bump():
            mapping.put("k2", mapping.get("k") + 1)

        rt_map.run_transaction(bump)
        assert index.prefix("k") == ("k", "k2")
