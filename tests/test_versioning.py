"""Tests for the OCC version table."""

from repro.tango.records import NO_VERSION
from repro.tango.versioning import VersionTable


class TestCoarseVersions:
    def test_initial_version(self):
        table = VersionTable()
        assert table.get(1) == NO_VERSION

    def test_bump_advances(self):
        table = VersionTable()
        table.bump(1, 10)
        assert table.get(1) == 10

    def test_bump_is_monotone(self):
        table = VersionTable()
        table.bump(1, 10)
        table.bump(1, 5)  # out-of-order replays must not regress
        assert table.get(1) == 10

    def test_objects_independent(self):
        table = VersionTable()
        table.bump(1, 10)
        assert table.get(2) == NO_VERSION


class TestFineGrainedVersions:
    def test_key_version_tracked(self):
        table = VersionTable()
        table.bump(1, 10, key=b"a")
        assert table.get(1, b"a") == 10
        assert table.get(1, b"b") == NO_VERSION

    def test_keyed_write_bumps_object_version(self):
        """Coarse readers must conflict with fine-grained writers."""
        table = VersionTable()
        table.bump(1, 10, key=b"a")
        assert table.get(1) == 10

    def test_unkeyed_write_invalidates_keyed_reads(self):
        """An unkeyed write may touch any sub-region."""
        table = VersionTable()
        table.bump(1, 5, key=b"a")
        table.bump(1, 20)  # clear() style whole-object write
        assert table.get(1, b"a") == 20
        assert table.is_stale(1, b"a", 5)

    def test_keyed_writes_do_not_cross_invalidate(self):
        table = VersionTable()
        table.bump(1, 5, key=b"a")
        table.bump(1, 20, key=b"b")
        assert not table.is_stale(1, b"a", 5)
        assert table.is_stale(1, b"b", 5)


class TestStaleness:
    def test_fresh_read_not_stale(self):
        table = VersionTable()
        table.bump(1, 10, key=b"a")
        assert not table.is_stale(1, b"a", 10)

    def test_never_written_not_stale(self):
        table = VersionTable()
        assert not table.is_stale(1, b"a", NO_VERSION)

    def test_written_after_no_version_read_is_stale(self):
        table = VersionTable()
        table.bump(1, 3, key=b"a")
        assert table.is_stale(1, b"a", NO_VERSION)


class TestCheckpointRoundTrip:
    def test_snapshot_and_load(self):
        table = VersionTable()
        table.bump(1, 5, key=b"a")
        table.bump(1, 7, key=b"b")
        table.bump(1, 9)
        table.bump(2, 11, key=b"x")  # other object excluded

        restored = VersionTable()
        restored.load_checkpoint(
            1, table.get(1), table.snapshot_keys(1), table.snapshot_unkeyed(1)
        )
        for key in (b"a", b"b", b"zzz"):
            assert restored.get(1, key) == table.get(1, key)
        assert restored.get(1) == table.get(1)

    def test_snapshot_keys_scoped_to_object(self):
        table = VersionTable()
        table.bump(1, 5, key=b"a")
        table.bump(2, 6, key=b"a")
        assert table.snapshot_keys(1) == ((b"a", 5),)

    def test_load_empty_checkpoint(self):
        table = VersionTable()
        table.load_checkpoint(1, NO_VERSION, (), NO_VERSION)
        assert table.get(1) == NO_VERSION


class TestDropObject:
    def test_drop_clears_everything(self):
        table = VersionTable()
        table.bump(1, 5, key=b"a")
        table.bump(1, 6)
        table.drop_object(1)
        assert table.get(1) == NO_VERSION
        assert table.get(1, b"a") == NO_VERSION

    def test_drop_leaves_other_objects(self):
        table = VersionTable()
        table.bump(1, 5, key=b"a")
        table.bump(2, 6, key=b"a")
        table.drop_object(1)
        assert table.get(2, b"a") == 6
