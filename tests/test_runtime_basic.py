"""Tests for the Tango runtime: SMR mechanics, playback, checkpoints."""

import pytest

from repro.errors import (
    ObjectExistsError,
    TangoError,
    UnknownObjectError,
)
from repro.objects import TangoCounter, TangoMap, TangoRegister
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime


class TestStateMachineReplication:
    def test_mutator_does_not_touch_view_directly(self, make_runtime):
        """Mutators append; only apply (via query) changes the view."""
        rt = make_runtime()
        reg = TangoRegister(rt, oid=1)
        reg.write(42)
        assert reg._state is None  # not yet applied locally
        assert reg.read() == 42  # accessor syncs, apply runs

    def test_two_views_converge(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        r1 = TangoRegister(rt1, oid=1)
        r2 = TangoRegister(rt2, oid=1)
        r1.write("a")
        r2.write("b")
        assert r1.read() == r2.read() == "b"

    def test_linearizable_read_sees_completed_write(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        r1 = TangoRegister(rt1, oid=1)
        r2 = TangoRegister(rt2, oid=1)
        r1.write("committed")
        assert r2.read() == "committed"

    def test_apply_receives_log_offset(self, make_runtime):
        rt = make_runtime()
        seen = []

        class Probe(TangoRegister):
            def apply(self, payload, offset):
                seen.append(offset)
                super().apply(payload, offset)

        probe = Probe(rt, oid=1)
        probe.write(1)
        probe.write(2)
        probe.read()
        assert seen == [0, 1]

    def test_fresh_view_replays_history(self, cluster, make_runtime):
        rt1 = make_runtime()
        counter = TangoCounter(rt1, oid=1)
        for _ in range(5):
            counter.increment()
        rt2 = make_runtime()
        fresh = TangoCounter(rt2, oid=1)
        assert fresh.value() == 5

    def test_duplicate_registration_rejected(self, make_runtime):
        rt = make_runtime()
        TangoRegister(rt, oid=1)
        with pytest.raises(ObjectExistsError):
            TangoRegister(rt, oid=1)

    def test_query_unhosted_object_rejected(self, make_runtime):
        rt = make_runtime()
        with pytest.raises(UnknownObjectError):
            rt.query_helper(99)

    def test_deregister(self, make_runtime):
        rt = make_runtime()
        reg = TangoRegister(rt, oid=1)
        reg.write(1)
        rt.deregister_object(1)
        assert not rt.is_hosted(1)
        assert rt.get_object(1) is None


class TestMergedPlayback:
    def test_multiple_objects_share_one_runtime(self, make_runtime):
        rt = make_runtime()
        reg = TangoRegister(rt, oid=1)
        ctr = TangoCounter(rt, oid=2)
        reg.write("x")
        ctr.increment()
        assert reg.read() == "x"
        assert ctr.value() == 1

    def test_query_one_object_plays_others_in_order(self, make_runtime):
        """Merged playback keeps cross-object order (section 4.1)."""
        rt = make_runtime()
        order = []

        class Probe(TangoRegister):
            def apply(self, payload, offset):
                order.append((self.oid, offset))
                super().apply(payload, offset)

        a = Probe(rt, oid=1)
        b = Probe(rt, oid=2)
        a.write(1)  # offset 0
        b.write(2)  # offset 1
        a.write(3)  # offset 2
        a.read()
        assert order == [(1, 0), (2, 1), (1, 2)]

    def test_watermark_advances(self, make_runtime):
        rt = make_runtime()
        reg = TangoRegister(rt, oid=1)
        reg.write(1)
        reg.read()
        assert rt._watermark == 0

    def test_version_of_tracks_last_modifier(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("a", 1)  # offset 0
        m.put("b", 2)  # offset 1
        m.get("a")
        assert rt.version_of(1) == 1
        assert rt.version_of(1, b"a") == 0
        assert rt.version_of(1, b"b") == 1


class TestLateRegistration:
    def test_catch_up_after_other_streams_played(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        m1 = TangoMap(rt1, oid=1)
        m2 = TangoMap(rt1, oid=2)
        m1.put("x", 1)
        m2.put("y", 2)
        # rt2 hosts object 1 only, plays it...
        other1 = TangoMap(rt2, oid=1)
        assert other1.get("x") == 1
        # ... then registers object 2 late; it must catch up.
        other2 = TangoMap(rt2, oid=2)
        assert other2.get("y") == 2

    def test_late_registration_with_single_object_tx(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        m1 = TangoMap(rt1, oid=1)
        m1.put("a", 0)
        m1.get("a")

        def bump():
            m1.put("a", m1.get("a") + 1)

        rt1.run_transaction(bump)
        # rt2 plays something else first, then registers oid 1 late.
        reg = TangoRegister(rt2, oid=9)
        reg.write("noise")
        reg.read()
        late = TangoMap(rt2, oid=1)
        assert late.get("a") == 1


class TestHistory:
    def test_historical_view(self, make_runtime):
        rt1 = make_runtime()
        reg = TangoRegister(rt1, oid=1)
        reg.write("v1")  # offset 0
        reg.write("v2")  # offset 1
        reg.read()
        rt2 = make_runtime()
        old = TangoRegister(rt2, oid=1)
        old.sync_to(0)
        assert old._state == "v1"

    def test_sync_to_then_forward(self, make_runtime):
        rt1 = make_runtime()
        reg = TangoRegister(rt1, oid=1)
        for value in ("a", "b", "c"):
            reg.write(value)
        rt2 = make_runtime()
        replica = TangoRegister(rt2, oid=1)
        replica.sync_to(1)
        assert replica._state == "b"
        assert replica.read() == "c"  # accessor plays the rest


class TestCheckpoints:
    def test_checkpoint_and_reload(self, make_runtime):
        rt1 = make_runtime()
        m = TangoMap(rt1, oid=1)
        for i in range(10):
            m.put(f"k{i}", i)
        m.get("k0")
        rt1.checkpoint(1)
        # A fresh client must reconstruct through the checkpoint.
        rt2 = make_runtime()
        fresh = TangoMap(rt2, oid=1)
        assert fresh.get("k7") == 7
        assert fresh.size() == 10

    def test_checkpoint_skips_covered_history(self, make_runtime):
        """Reload plays only entries above the checkpoint's cover."""
        rt1 = make_runtime()
        m = TangoMap(rt1, oid=1)
        for i in range(20):
            m.put(f"k{i}", i)
        m.get("k0")  # play everything
        rt1.checkpoint(1)
        m.put("after", 99)

        rt2 = make_runtime()
        applied = []

        class Probe(TangoMap):
            def apply(self, payload, offset):
                applied.append(offset)
                super().apply(payload, offset)

        fresh = Probe(rt2, oid=1)
        assert fresh.get("after") == 99
        assert fresh.get("k3") == 3  # from the checkpoint state
        assert len(applied) == 1  # only the post-checkpoint update

    def test_reload_after_trim(self, cluster, make_runtime):
        """After GC below the checkpoint, reconstruction still works."""
        rt1 = make_runtime()
        m = TangoMap(rt1, oid=1)
        for i in range(10):
            m.put(f"k{i}", i)
        m.get("k0")
        rt1.checkpoint(1)
        covers = rt1.streams.position(1)
        rt1.streams.corfu.trim_prefix(covers)
        rt2 = make_runtime()
        fresh = TangoMap(rt2, oid=1)
        assert fresh.size() == 10
        assert fresh.get("k9") == 9

    def test_checkpoint_preserves_versions(self, make_runtime):
        """Conflict decisions agree between reloaded and full views."""
        rt1 = make_runtime()
        m = TangoMap(rt1, oid=1)
        m.put("a", 1)
        m.get("a")
        rt1.checkpoint(1)
        rt2 = make_runtime()
        fresh = TangoMap(rt2, oid=1)
        fresh.get("a")
        assert rt2.version_of(1, b"a") == rt1.version_of(1, b"a")

    def test_checkpoint_unhosted_rejected(self, make_runtime):
        rt = make_runtime()
        with pytest.raises(UnknownObjectError):
            rt.checkpoint(42)


class TestRuntimeConveniences:
    def test_cluster_shorthand_constructor(self, cluster):
        rt = TangoRuntime(cluster)
        reg = TangoRegister(rt, oid=1)
        reg.write(5)
        assert reg.read() == 5

    def test_stats_counters(self, make_runtime):
        rt = make_runtime()
        reg = TangoRegister(rt, oid=1)
        reg.write(1)
        reg.read()
        assert rt.stats["applied_updates"] == 1
