"""Tests for TangoZK: the ZooKeeper interface over Tango (section 6.3)."""

import pytest

from repro.errors import (
    BadVersionError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    TransactionAborted,
    ZKError,
)
from repro.objects import TangoZK


@pytest.fixture
def zk(make_client):
    _rt, directory = make_client()
    return directory.open(TangoZK, "zk", session_id="s1")


@pytest.fixture
def zk_pair(make_client):
    rt1, d1 = make_client()
    rt2, d2 = make_client()
    zk1 = d1.open(TangoZK, "zk", session_id="s1")
    zk2 = d2.open(TangoZK, "zk", session_id="s2")
    return rt1, zk1, rt2, zk2


class TestCreate:
    def test_create_and_stat(self, zk):
        zk.create("/a", b"data")
        stat = zk.exists("/a")
        assert stat is not None
        assert stat.version == 0
        assert stat.czxid >= 0

    def test_parent_must_exist(self, zk):
        with pytest.raises(NoNodeError):
            zk.create("/missing/child", b"")

    def test_duplicate_rejected(self, zk):
        zk.create("/a", b"")
        with pytest.raises(NodeExistsError):
            zk.create("/a", b"")

    def test_root_exists(self, zk):
        assert zk.exists("/") is not None
        with pytest.raises(NodeExistsError):
            zk.create("/")

    def test_children_tracked(self, zk):
        zk.create("/a", b"")
        zk.create("/a/x", b"")
        zk.create("/a/y", b"")
        assert zk.get_children("/a") == ("x", "y")
        assert zk.exists("/a").num_children == 2

    def test_path_validation(self, zk):
        for bad in ("relative", "/trailing/", "/a//b"):
            with pytest.raises(ZKError):
                zk.create(bad, b"")

    def test_sequential_nodes(self, zk):
        zk.create("/q", b"")
        first = zk.create("/q/item-", b"", sequential=True)
        second = zk.create("/q/item-", b"", sequential=True)
        assert first == "/q/item-0000000000"
        assert second == "/q/item-0000000001"

    def test_sequential_counter_survives_deletes(self, zk):
        """cversion-based counters never reuse sequence numbers."""
        zk.create("/q", b"")
        first = zk.create("/q/item-", b"", sequential=True)
        zk.delete(first)
        second = zk.create("/q/item-", b"", sequential=True)
        assert second == "/q/item-0000000001"

    def test_ephemeral_cannot_have_children(self, zk):
        zk.create("/e", b"", ephemeral=True)
        with pytest.raises(ZKError):
            zk.create("/e/child", b"")


class TestDelete:
    def test_delete(self, zk):
        zk.create("/a", b"")
        zk.delete("/a")
        assert zk.exists("/a") is None

    def test_delete_missing(self, zk):
        with pytest.raises(NoNodeError):
            zk.delete("/missing")

    def test_delete_nonempty_rejected(self, zk):
        zk.create("/a", b"")
        zk.create("/a/x", b"")
        with pytest.raises(NotEmptyError):
            zk.delete("/a")

    def test_delete_version_check(self, zk):
        zk.create("/a", b"")
        zk.set_data("/a", b"v1")
        with pytest.raises(BadVersionError):
            zk.delete("/a", version=0)
        zk.delete("/a", version=1)

    def test_delete_root_rejected(self, zk):
        with pytest.raises(ZKError):
            zk.delete("/")

    def test_parent_children_updated(self, zk):
        zk.create("/a", b"")
        zk.create("/a/x", b"")
        zk.delete("/a/x")
        assert zk.get_children("/a") == ()


class TestSetData:
    def test_set_bumps_version(self, zk):
        zk.create("/a", b"v0")
        stat = zk.set_data("/a", b"v1")
        assert stat.version == 1
        data, stat2 = zk.get_data("/a")
        assert data == b"v1"
        assert stat2.version == 1
        assert stat2.mzxid > stat2.czxid

    def test_conditional_set(self, zk):
        zk.create("/a", b"v0")
        zk.set_data("/a", b"v1", version=0)
        with pytest.raises(BadVersionError):
            zk.set_data("/a", b"v2", version=0)

    def test_set_missing(self, zk):
        with pytest.raises(NoNodeError):
            zk.set_data("/missing", b"")


class TestReplication:
    def test_views_converge(self, zk_pair):
        _rt1, zk1, _rt2, zk2 = zk_pair
        zk1.create("/a", b"one")
        assert zk2.get_data("/a")[0] == b"one"
        zk2.set_data("/a", b"two")
        assert zk1.get_data("/a")[0] == b"two"

    def test_concurrent_creates_one_winner(self, zk_pair):
        _rt1, zk1, _rt2, zk2 = zk_pair
        zk1.create("/a", b"first")
        with pytest.raises(NodeExistsError):
            zk2.create("/a", b"second")
        assert zk2.get_data("/a")[0] == b"first"

    def test_independent_subtrees_do_not_conflict(self, zk_pair):
        """Fine-grained versioning: ops on disjoint paths commute."""
        rt1, zk1, _rt2, zk2 = zk_pair
        zk1.create("/left", b"")
        zk1.create("/right", b"")
        zk2.exists("/left")
        rt1.begin_tx()
        zk1.create("/left/a", b"")
        zk2.create("/right/b", b"")  # lands in the conflict window
        assert rt1.end_tx() is True


class TestMulti:
    def test_atomic_batch(self, zk):
        zk.multi(
            [
                ("create", ("/batch", b"")),
                ("create", ("/batch/x", b"1")),
                ("set_data", ("/batch/x", b"2")),
            ]
        )
        assert zk.get_data("/batch/x")[0] == b"2"

    def test_multi_sees_own_effects(self, zk):
        """Later ops observe earlier ones within the batch."""
        results = zk.multi(
            [
                ("create", ("/p", b"")),
                ("create", ("/p/seq-", b"")),
                ("delete", ("/p/seq-",)),
                ("create", ("/p/seq-", b"again")),
            ]
        )
        assert zk.get_data("/p/seq-")[0] == b"again"

    def test_failed_multi_applies_nothing(self, zk):
        zk.create("/exists", b"")
        with pytest.raises(NodeExistsError):
            zk.multi(
                [
                    ("create", ("/fresh", b"")),
                    ("create", ("/exists", b"")),  # fails the batch
                ]
            )
        assert zk.exists("/fresh") is None

    def test_unknown_multi_op(self, zk):
        with pytest.raises(ZKError):
            zk.multi([("rename", ("/a", "/b"))])


class TestWatches:
    def test_data_watch_fires_once(self, zk):
        events = []
        zk.create("/a", b"")
        zk.watch("/a", lambda p, e: events.append(e))
        zk.set_data("/a", b"1")
        zk.set_data("/a", b"2")
        zk.get_data("/a")
        assert events == ["changed"]  # one-shot

    def test_watch_fires_at_remote_view(self, zk_pair):
        _rt1, zk1, _rt2, zk2 = zk_pair
        events = []
        zk2.watch("/a", lambda p, e: events.append((p, e)))
        zk1.create("/a", b"")
        zk2.exists("/a")  # playback triggers the watch
        assert events == [("/a", "created")]

    def test_delete_watch(self, zk):
        events = []
        zk.create("/a", b"")
        zk.watch("/a", lambda p, e: events.append(e))
        zk.delete("/a")
        zk.exists("/a")
        assert events == ["deleted"]

    def test_watch_parameter_on_reads(self, zk):
        """ZooKeeper-style read-and-watch in one call."""
        events = []
        zk.create("/a", b"")
        data, _stat = zk.get_data("/a", watch=lambda p, e: events.append(e))
        zk.set_data("/a", b"changed")
        zk.exists("/a")
        assert events == ["changed"]

    def test_exists_watch_on_absent_node(self, zk):
        events = []
        assert zk.exists("/future", watch=lambda p, e: events.append(e)) is None
        zk.create("/future", b"")
        zk.exists("/future")
        assert events == ["created"]

    def test_get_children_watch(self, zk):
        events = []
        zk.create("/p", b"")
        zk.get_children("/p", watch=lambda p, e: events.append(e))
        zk.create("/p/kid", b"")
        zk.get_children("/p")
        assert events == ["children"]


class TestSessions:
    def test_ephemerals_listed(self, zk):
        zk.create("/persistent", b"")
        zk.create("/mine", b"", ephemeral=True)
        assert zk.ephemerals() == ("/mine",)

    def test_close_session_removes_ephemerals(self, zk_pair):
        _rt1, zk1, _rt2, zk2 = zk_pair
        zk1.create("/lock", b"", ephemeral=True)
        assert zk2.exists("/lock") is not None
        assert zk1.close_session() == 1
        assert zk2.exists("/lock") is None

    def test_expire_other_session(self, zk_pair):
        """Any client may expire a dead session (leader behaviour)."""
        _rt1, zk1, _rt2, zk2 = zk_pair
        zk1.create("/lock", b"", ephemeral=True)
        assert zk2.expire_session("s1") == 1
        assert zk1.exists("/lock") is None

    def test_persistent_nodes_survive_session(self, zk):
        zk.create("/keep", b"")
        zk.create("/drop", b"", ephemeral=True)
        zk.close_session()
        assert zk.exists("/keep") is not None


class TestCrossNamespaceMoves:
    def test_atomic_move(self, make_client):
        """Paper section 6.3: atomically move a file between namespaces."""
        rt, directory = make_client()
        src = directory.open(TangoZK, "ns-a", session_id="s")
        dst = directory.open(TangoZK, "ns-b", session_id="s")
        src.create("/f", b"payload")

        def move():
            data, _ = src.get_data("/f")
            src.delete("/f")
            dst.create("/f", data)

        rt.run_transaction(move)
        assert src.exists("/f") is None
        assert dst.get_data("/f")[0] == b"payload"

    def test_conflicting_move_leaves_no_half_state(self, make_client):
        rt1, d1 = make_client()
        rt2, d2 = make_client()
        src1 = d1.open(TangoZK, "ns-a", session_id="s1")
        dst1 = d1.open(TangoZK, "ns-b", session_id="s1")
        src2 = d2.open(TangoZK, "ns-a", session_id="s2")
        src1.create("/f", b"original")
        src2.exists("/f")
        rt1.begin_tx()
        data, _ = src1.get_data("/f")
        src1.delete("/f")
        dst1.create("/f", data)
        src2.set_data("/f", b"touched")  # conflicts with the move
        assert rt1.end_tx() is False
        assert src1.get_data("/f")[0] == b"touched"
        assert dst1.exists("/f") is None

    def test_move_visible_at_third_party(self, make_client):
        rt1, d1 = make_client()
        _rt3, d3 = make_client()
        src = d1.open(TangoZK, "ns-a", session_id="s1")
        dst = d1.open(TangoZK, "ns-b", session_id="s1")
        observer = d3.open(TangoZK, "ns-b", session_id="s3")
        src.create("/f", b"x")

        def move():
            data, _ = src.get_data("/f")
            src.delete("/f")
            dst.create("/moved", data)

        rt1.run_transaction(move)
        assert observer.get_data("/moved")[0] == b"x"


class TestCheckpoint:
    def test_namespace_checkpoint_round_trip(self, make_client):
        rt, directory = make_client()
        zk = directory.open(TangoZK, "zk", session_id="s")
        zk.create("/a", b"data")
        zk.create("/a/b", b"", ephemeral=True)
        zk.set_data("/a", b"v1")
        zk.exists("/a")
        rt.checkpoint(zk.oid)
        _rt2, d2 = make_client()
        fresh = d2.open(TangoZK, "zk", session_id="s2")
        assert fresh.get_data("/a")[0] == b"v1"
        assert fresh.get_data("/a")[1].version == 1
        assert fresh.exists("/a/b").ephemeral_owner == "s"


class TestEnsurePathAndMakepath:
    def test_ensure_path_creates_ancestors(self, zk):
        zk.ensure_path("/a/b/c")
        assert zk.exists("/a") is not None
        assert zk.exists("/a/b") is not None
        assert zk.exists("/a/b/c") is not None

    def test_ensure_path_idempotent(self, zk):
        zk.ensure_path("/a/b")
        zk.set_data("/a/b", b"keep-me")
        zk.ensure_path("/a/b")  # must not recreate or reset
        assert zk.get_data("/a/b")[0] == b"keep-me"

    def test_ensure_root_is_noop(self, zk):
        zk.ensure_path("/")

    def test_create_makepath(self, zk):
        actual = zk.create("/deep/ly/nested", b"leaf", makepath=True)
        assert actual == "/deep/ly/nested"
        assert zk.get_data("/deep/ly/nested")[0] == b"leaf"
        assert zk.get_children("/deep") == ("ly",)

    def test_create_makepath_existing_node_rejected(self, zk):
        zk.create("/x", b"")
        with pytest.raises(NodeExistsError):
            zk.create("/x", b"", makepath=True)

    def test_makepath_atomic_with_leaf(self, zk_pair):
        """Ancestors and leaf commit together; a conflict rolls back all."""
        rt1, zk1, _rt2, zk2 = zk_pair
        zk1.create("/claimed", b"")
        zk2.exists("/claimed")
        rt1.begin_tx()
        _ = zk1.get_data("/claimed")
        zk1.create("/fresh/leaf", b"", makepath=True)
        zk2.set_data("/claimed", b"moved")  # invalidate the read
        assert rt1.end_tx() is False
        assert zk1.exists("/fresh") is None  # nothing half-created
