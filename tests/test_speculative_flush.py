"""Tests for the speculative-write path of large transactions.

Section 3.2: "The update_helper call now buffers updates instead of
writing them immediately to the shared log; when a log entry's worth of
updates have been accumulated, it flushes them to the log as speculative
writes, not to be made visible by other clients playing the log until
the commit record is encountered."

Small transactions inline their updates in the commit record; these
tests force the overflow path with multi-kilobyte values.
"""

import pytest

from repro.objects import TangoMap
from repro.tango.records import CommitRecord, UpdateRecord, decode_records


BIG = "x" * 1500  # three of these exceed one 4KB entry


@pytest.fixture
def pair(make_runtime):
    rt1, rt2 = make_runtime(), make_runtime()
    return rt1, TangoMap(rt1, oid=1), rt2, TangoMap(rt2, oid=1)


class TestSpeculativeFlush:
    def test_large_tx_uses_multiple_entries(self, pair):
        rt1, m1, _rt2, m2 = pair
        before = rt1.streams.corfu.appends
        rt1.begin_tx()
        for i in range(3):
            m1.put(f"k{i}", BIG)
        assert rt1.end_tx() is True
        # 3 speculative entries + 1 commit record.
        assert rt1.streams.corfu.appends == before + 4

    def test_speculative_records_marked(self, pair):
        rt1, m1, _rt2, _m2 = pair
        rt1.begin_tx()
        for i in range(3):
            m1.put(f"k{i}", BIG)
        rt1.end_tx()
        client = rt1.streams.corfu
        kinds = []
        for offset in range(client.check()):
            for record in decode_records(client.read(offset).payload):
                kinds.append(record)
        spec = [r for r in kinds if isinstance(r, UpdateRecord)]
        commits = [r for r in kinds if isinstance(r, CommitRecord)]
        assert len(spec) == 3 and all(r.is_speculative for r in spec)
        assert len(commits) == 1 and commits[0].inline_updates == ()
        assert all(r.tx_id == commits[0].tx_id for r in spec)

    def test_commit_makes_all_writes_visible_atomically(self, pair):
        rt1, m1, _rt2, m2 = pair
        rt1.begin_tx()
        for i in range(3):
            m1.put(f"k{i}", BIG)
        rt1.end_tx()
        assert m2.size() == 3
        assert m2.get("k2") == BIG

    def test_speculative_writes_invisible_before_commit(self, pair):
        rt1, m1, _rt2, m2 = pair
        rt1.begin_tx()
        for i in range(3):
            m1.put(f"k{i}", BIG)
        # The speculative entries are not yet flushed (EndTX flushes),
        # but even after manual flushing consumers must hold them back.
        ctx = rt1._current_tx()
        rt1._tls.tx = None
        from repro.tango.records import encode_records

        for update in ctx.updates:
            rt1.streams.append(encode_records([update]), (update.oid,))
        assert m2.size() == 0  # buffered at the consumer, not applied

    def test_aborted_large_tx_discards_speculative_writes(self, pair):
        rt1, m1, rt2, m2 = pair
        m1.put("guard", "v0")
        m1.get("guard")
        rt1.begin_tx()
        _ = m1.get("guard")
        for i in range(3):
            m1.put(f"k{i}", BIG)
        m2.put("guard", "moved")  # invalidates rt1's read
        assert rt1.end_tx() is False
        assert m2.size() == 1  # only "guard"
        assert m1.get("k0") is None

    def test_mixed_small_and_large_values(self, pair):
        rt1, m1, _rt2, m2 = pair
        rt1.begin_tx()
        m1.put("small", 1)
        m1.put("large", BIG)
        m1.put("large2", BIG)
        m1.put("large3", BIG)
        rt1.end_tx()
        assert m2.get("small") == 1
        assert m2.get("large3") == BIG

    def test_versions_bump_at_commit_offset(self, pair):
        """All of a large TX's writes share the commit-point version."""
        rt1, m1, _rt2, m2 = pair
        rt1.begin_tx()
        for i in range(3):
            m1.put(f"k{i}", BIG)
        rt1.end_tx()
        m1.get("k0")
        commit_offset = rt1.streams.corfu.check() - 1
        for i in range(3):
            assert rt1.version_of(1, f"k{i}".encode()) == commit_offset

    def test_indexed_view_points_at_speculative_entries(self, make_runtime):
        """Data offsets differ from the visibility point: indexed views
        must dereference the speculative entry where the bytes live."""
        from repro.objects import TangoIndexedMap

        rt = make_runtime()
        m = TangoIndexedMap(rt, oid=1)
        rt.begin_tx()
        for i in range(3):
            m.put(f"k{i}", BIG)
        rt.end_tx()
        commit_offset = rt.streams.corfu.check() - 1
        assert m.get("k1") == BIG
        assert m.offset_of("k1") < commit_offset  # points at the data
