"""Determinism: identical inputs produce identical outputs, everywhere.

Reproducibility is the whole point of a reproduction. Three layers are
pinned: the DES experiments (same parameters → bit-identical rows), the
functional protocols (same operation sequence → identical log bytes),
and serialization (encoding is canonical).
"""

import pytest

from repro.bench import experiments as E
from repro.corfu import CorfuCluster
from repro.objects import TangoMap
from repro.tango.runtime import TangoRuntime

_FAST = {"duration": 0.01, "warmup": 0.002}


class TestModelDeterminism:
    def test_fig2_bit_identical(self):
        a = E.fig2_sequencer(client_counts=(4, 16), **_FAST)
        b = E.fig2_sequencer(client_counts=(4, 16), **_FAST)
        assert a == b

    def test_fig9_bit_identical_with_seed(self):
        kwargs = dict(
            node_counts=(3,), key_counts=(1000,), distributions=("zipf",),
            seed=11, **_FAST,
        )
        assert E.fig9_tx_goodput(**kwargs) == E.fig9_tx_goodput(**kwargs)

    def test_fig9_seed_changes_conflicts_not_capacity(self):
        rows = [
            E.fig9_tx_goodput(
                node_counts=(3,), key_counts=(100,), distributions=("zipf",),
                seed=seed, **_FAST,
            )[0]
            for seed in (1, 2, 3)
        ]
        # Throughput is capacity-bound: identical across seeds.
        tputs = {round(r["ktx_per_sec"], 6) for r in rows}
        assert len(tputs) == 1
        # Goodput is conflict-bound: seeds shuffle it a little.
        goodputs = {round(r["goodput_pct"], 3) for r in rows}
        assert len(goodputs) >= 2

    def test_fig10_middle_bit_identical(self):
        kwargs = dict(cross_pcts=(0, 50), nodes=4, **_FAST)
        assert E.fig10_cross_partition(**kwargs) == E.fig10_cross_partition(
            **kwargs
        )


class TestFunctionalDeterminism:
    def _run_history(self):
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        rt1 = TangoRuntime(cluster, client_id=1)
        rt2 = TangoRuntime(cluster, client_id=2)
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        m1.put("a", 1)
        m1.get("a")
        m2.get("a")
        rt1.run_transaction(lambda: m1.put("b", m1.get("a") + 1))
        rt2.run_transaction(lambda: m2.put("c", m2.get("b") + 1))
        client = cluster.client()
        return [client.read(o).payload for o in range(client.check())]

    def test_identical_runs_produce_identical_logs(self):
        """Byte-for-byte: payload encoding is canonical and the
        protocols introduce no hidden nondeterminism."""
        assert self._run_history() == self._run_history()

    def test_record_encoding_is_canonical(self):
        from repro.tango.records import (
            CommitRecord,
            ReadSetEntry,
            UpdateRecord,
            encode_records,
        )

        record = CommitRecord(
            7,
            (ReadSetEntry(1, b"k", 3),),
            (2,),
            (UpdateRecord(2, b"x", tx_id=7),),
        )
        assert encode_records([record]) == encode_records([record])

    def test_entry_encoding_is_canonical(self):
        from repro.corfu.entry import LogEntry, make_header

        header = make_header(3, (9, 8), 10, 4)
        entry = LogEntry(headers=(header,), payload=b"data")
        assert entry.encode(10) == entry.encode(10)


class TestSimulatorClock:
    def test_no_wall_clock_leakage(self):
        """Simulated time is a pure function of events, not of how long
        the host takes to run them."""
        import time

        from repro.sim.engine import Simulator

        sim = Simulator()

        def proc():
            yield 1.0
            time.sleep(0.01)  # host delay must not advance sim time
            yield 1.0

        sim.spawn(proc())
        sim.run()
        assert sim.now == 2.0
