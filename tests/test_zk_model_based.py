"""Model-based testing: TangoZK against an in-memory reference.

Random sequences of ZooKeeper operations run simultaneously against
TangoZK (through the whole stack: runtime, streams, shared log) and a
plain-Python reference implementation. Every result, every raised
error, and the final tree must match exactly.
"""

from typing import Dict, Optional, Set

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corfu import CorfuCluster
from repro.errors import (
    BadVersionError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
)
from repro.objects import TangoZK
from repro.tango.runtime import TangoRuntime


class _RefNode:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.version = 0
        self.children: Set[str] = set()


class ReferenceZK:
    """The specification: a plain dict-based znode tree."""

    def __init__(self) -> None:
        self.nodes: Dict[str, _RefNode] = {"/": _RefNode(b"")}

    @staticmethod
    def _parent(path: str) -> str:
        return path.rsplit("/", 1)[0] or "/"

    def create(self, path: str, data: bytes) -> str:
        parent = self._parent(path)
        if parent not in self.nodes:
            raise NoNodeError(parent)
        if path in self.nodes:
            raise NodeExistsError(path)
        self.nodes[path] = _RefNode(data)
        self.nodes[parent].children.add(path.rsplit("/", 1)[1])
        return path

    def delete(self, path: str, version: int = -1) -> None:
        node = self.nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        if node.children:
            raise NotEmptyError(path)
        if version != -1 and node.version != version:
            raise BadVersionError(path)
        del self.nodes[path]
        parent = self._parent(path)
        self.nodes[parent].children.discard(path.rsplit("/", 1)[1])

    def set_data(self, path: str, data: bytes, version: int = -1) -> None:
        node = self.nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        if version != -1 and node.version != version:
            raise BadVersionError(path)
        node.data = data
        node.version += 1

    def get_data(self, path: str):
        node = self.nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return node.data, node.version

    def children(self, path: str):
        node = self.nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return tuple(sorted(node.children))


_PATHS = ["/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep"]
_ERRORS = (NoNodeError, NodeExistsError, NotEmptyError, BadVersionError)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(_PATHS), st.binary(max_size=8)),
        st.tuples(st.just("delete"), st.sampled_from(_PATHS),
                  st.integers(min_value=-1, max_value=2)),
        st.tuples(st.just("set"), st.sampled_from(_PATHS), st.binary(max_size=8),
                  st.integers(min_value=-1, max_value=2)),
        st.tuples(st.just("get"), st.sampled_from(_PATHS)),
        st.tuples(st.just("children"), st.sampled_from(_PATHS)),
    ),
    max_size=25,
)


def _run_both(zk, ref, op):
    """Apply one op to both systems; return (impl_result, ref_result)."""

    def attempt(fn):
        try:
            return ("ok", fn())
        except _ERRORS as exc:
            return ("err", type(exc).__name__)

    kind = op[0]
    if kind == "create":
        return (
            attempt(lambda: zk.create(op[1], op[2])),
            attempt(lambda: ref.create(op[1], op[2])),
        )
    if kind == "delete":
        return (
            attempt(lambda: zk.delete(op[1], version=op[2])),
            attempt(lambda: ref.delete(op[1], version=op[2])),
        )
    if kind == "set":
        return (
            attempt(lambda: zk.set_data(op[1], op[2], version=op[3]) and None),
            attempt(lambda: ref.set_data(op[1], op[2], version=op[3])),
        )
    if kind == "get":
        return (
            attempt(lambda: (zk.get_data(op[1])[0], zk.get_data(op[1])[1].version)),
            attempt(lambda: ref.get_data(op[1])),
        )
    return (
        attempt(lambda: zk.get_children(op[1])),
        attempt(lambda: ref.children(op[1])),
    )


class TestZKAgainstReference:
    @given(ops=_ops)
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_op_sequences_match(self, ops):
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        rt = TangoRuntime(cluster, client_id=1)
        zk = TangoZK(rt, oid=1, session_id="s")
        ref = ReferenceZK()
        for op in ops:
            impl, spec = _run_both(zk, ref, op)
            # set_data returns a stat in the impl and None in the ref;
            # compare outcome kind and error type only for that op.
            if op[0] == "set":
                assert impl[0] == spec[0]
                if impl[0] == "err":
                    assert impl[1] == spec[1]
            else:
                assert impl == spec, f"divergence on {op}"
        # Final trees identical (paths and versions).
        for path in sorted(ref.nodes):
            stat = zk.exists(path)
            assert stat is not None, f"{path} missing in impl"
            assert stat.version == ref.nodes[path].version
            assert zk.get_children(path) == ref.children(path)
        # No extra paths in the implementation either.
        impl_paths = sorted(zk._nodes)
        assert impl_paths == sorted(ref.nodes)

    @given(ops=_ops)
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_second_view_agrees_with_reference(self, ops):
        """A remote replica ends up equal to the reference too."""
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        rt1 = TangoRuntime(cluster, client_id=1)
        zk1 = TangoZK(rt1, oid=1, session_id="s1")
        ref = ReferenceZK()
        for op in ops:
            _run_both(zk1, ref, op)
        rt2 = TangoRuntime(cluster, client_id=2)
        zk2 = TangoZK(rt2, oid=1, session_id="s2")
        zk2.exists("/")
        assert sorted(zk2._nodes) == sorted(ref.nodes)
