"""Tests for the job scheduler library app (paper section 4)."""

import pytest

from repro.apps.scheduler import JobScheduler


@pytest.fixture
def sched_pair(make_client):
    rt1, d1 = make_client()
    rt2, d2 = make_client()
    return JobScheduler(rt1, d1), JobScheduler(rt2, d2)


class TestScheduling:
    def test_allocates_free_nodes(self, sched_pair):
        a, _b = sched_pair
        a.add_node("n1")
        a.add_node("n2")
        j0 = a.schedule("train")
        j1 = a.schedule("serve")
        assert j0 == (0, "n1")
        assert j1 == (1, "n2")
        assert a.schedule("starved") is None
        assert a.free_count() == 0

    def test_replicas_never_double_assign(self, sched_pair):
        a, b = sched_pair
        for node in ("n1", "n2", "n3", "n4"):
            a.add_node(node)
        results = [a.schedule("x"), b.schedule("y"), a.schedule("z"), b.schedule("w")]
        job_ids = [r[0] for r in results]
        nodes = [r[1] for r in results]
        assert job_ids == [0, 1, 2, 3]
        assert sorted(nodes) == ["n1", "n2", "n3", "n4"]
        assert a.running_jobs() == b.running_jobs()

    def test_complete_frees_the_node(self, sched_pair):
        a, b = sched_pair
        a.add_node("n1")
        job_id, node = a.schedule("work")
        freed = b.complete(job_id)  # the *other* replica completes it
        assert freed == node
        assert a.job(job_id) is None
        assert a.free_count() == 1

    def test_complete_unknown_job(self, sched_pair):
        a, _b = sched_pair
        with pytest.raises(KeyError):
            a.complete(999)

    def test_job_ids_monotone_across_recycling(self, sched_pair):
        a, _b = sched_pair
        a.add_node("n1")
        j0, _ = a.schedule("first")
        a.complete(j0)
        j1, _ = a.schedule("second")
        assert j1 == j0 + 1  # ids never reused


class TestReschedule:
    def test_moves_job_to_fresh_node(self, sched_pair):
        a, b = sched_pair
        a.add_node("bad-node")
        a.add_node("good-node")
        job_id, first = a.schedule("job")
        assert first == "bad-node"
        result = b.reschedule(job_id)
        assert result == (job_id, "good-node")
        assert b.node_of(job_id) == "good-node"
        # The bad node went back to the pool.
        assert "bad-node" in b.free_nodes.to_list()

    def test_reschedule_without_spare_nodes(self, sched_pair):
        a, _b = sched_pair
        a.add_node("only")
        job_id, _ = a.schedule("job")
        assert a.reschedule(job_id) is None
        assert a.node_of(job_id) == "only"


class TestNodePool:
    def test_remove_free_node(self, sched_pair):
        a, b = sched_pair
        a.add_node("n1")
        assert b.remove_node("n1") is True
        assert a.schedule("x") is None

    def test_remove_allocated_node_fails(self, sched_pair):
        a, _b = sched_pair
        a.add_node("n1")
        a.schedule("x")
        assert a.remove_node("n1") is False


class TestRecovery:
    def test_fresh_replica_resumes_state(self, make_client, sched_pair):
        a, _b = sched_pair
        a.add_node("n1")
        a.add_node("n2")
        a.schedule("persisted")
        rt3, d3 = make_client()
        recovered = JobScheduler(rt3, d3)
        assert recovered.running_jobs() == a.running_jobs()
        assert recovered.free_count() == 1
        # And it can keep scheduling with the right next id.
        assert recovered.schedule("more")[0] == 1

    def test_independent_namespaces(self, make_client):
        rt, directory = make_client()
        prod = JobScheduler(rt, directory, namespace="prod")
        staging = JobScheduler(rt, directory, namespace="staging")
        prod.add_node("p1")
        staging.add_node("s1")
        assert prod.schedule("x") == (0, "p1")
        assert staging.schedule("y") == (0, "s1")
        assert prod.free_count() == 0 == staging.free_count()
