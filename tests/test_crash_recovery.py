"""End-to-end crash/recovery narratives across the whole stack.

Each test tells one operational story: something dies at the worst
moment, and the combination of protocols (holes + fill, forced aborts,
decision publishing, fsck, durable storage) brings the system back to a
consistent, verifiable state.
"""

import pytest

from repro.corfu import CorfuCluster
from repro.corfu.durable import open_durable_cluster
from repro.objects import TangoList, TangoMap
from repro.tango.records import UpdateRecord, encode_records
from repro.tango.runtime import TangoRuntime
from repro.tools import check_log


class TestClientCrashMidTransaction:
    def test_orphan_found_by_fsck_and_cleaned(self, cluster):
        """Crash after speculative flush, before the commit record."""
        rt1 = TangoRuntime(cluster, client_id=1)
        m1 = TangoMap(rt1, oid=1)
        m1.put("healthy", 1)
        # The "crashed" client flushed speculative updates only.
        rt_dead = TangoRuntime(cluster, client_id=66)
        dead_tx = (66 << 32) | 1
        rt_dead.streams.append(
            encode_records(
                [UpdateRecord(1, b'{"op":"put","k":"orphan","v":1}', tx_id=dead_tx)]
            ),
            (1,),
        )
        report = check_log(cluster)
        assert report.orphaned_txes == [dead_tx]
        # Any surviving client terminates the orphan...
        rt1.force_abort(dead_tx, oids=(1,))
        assert check_log(cluster).healthy
        # ...and the orphan's writes never surface.
        rt2 = TangoRuntime(cluster, client_id=2)
        m2 = TangoMap(rt2, oid=1)
        assert m2.get("orphan") is None
        assert m2.get("healthy") == 1

    def test_crash_between_commit_and_decision(self, cluster):
        """The read-set host publishes the missing decision."""

        class Marked(TangoMap):
            needs_decision_record = True

        rt_dead = TangoRuntime(cluster, client_id=1)
        private_dead = Marked(rt_dead, oid=1)
        list_dead = TangoList(rt_dead, oid=2)
        private_dead.put("g", 1)
        private_dead.get("g")
        rt_dead.begin_tx()
        _ = private_dead.get("g")
        list_dead.append("committed-item")
        ctx = rt_dead._current_tx()
        rt_dead._tls.tx = None
        rt_dead._append_commit(ctx)  # then the client dies

        report = check_log(cluster)
        assert report.undecided_txes == [ctx.tx_id]

        # A surviving read-set host decides and publishes.
        rt_helper = TangoRuntime(cluster, client_id=2)
        helper_private = Marked(rt_helper, oid=1)
        helper_list = TangoList(rt_helper, oid=2)
        helper_list.to_list()  # plays the commit; decides locally
        assert rt_helper.publish_decision(ctx.tx_id)
        assert check_log(cluster).healthy

        # A write-set-only consumer is unblocked by the decision.
        rt_consumer = TangoRuntime(cluster, client_id=3)
        consumer_list = TangoList(rt_consumer, oid=2)
        assert consumer_list.to_list() == ("committed-item",)


class TestClientCrashMidAppend:
    def test_hole_in_object_stream_is_transparent(self, cluster):
        rt1 = TangoRuntime(cluster, client_id=1)
        m1 = TangoMap(rt1, oid=1)
        m1.put("before", 1)
        # Crash: offset reserved for stream 1, never written.
        cluster.sequencer().increment(stream_ids=(1,))
        m1.put("after", 2)
        rt2 = TangoRuntime(cluster, client_id=2)
        m2 = TangoMap(rt2, oid=1)
        assert m2.get("before") == 1
        assert m2.get("after") == 2
        report = check_log(cluster)
        assert report.healthy  # the fill made the hole junk
        assert len(report.junk) == 1


class TestInfrastructureCascade:
    def test_storage_then_sequencer_then_fresh_client(self, cluster):
        rt1 = TangoRuntime(cluster, client_id=1)
        m1 = TangoMap(rt1, oid=1)
        for i in range(8):
            m1.put(f"k{i}", i)
        cluster.crash_storage(cluster.projection.replica_sets[0].head)
        for i in range(8, 12):
            m1.put(f"k{i}", i)
        cluster.crash_sequencer()
        for i in range(12, 16):
            m1.put(f"k{i}", i)
        fresh = TangoMap(TangoRuntime(cluster, client_id=2), oid=1)
        assert fresh.size() == 16
        assert cluster.projection.epoch >= 2

    def test_majority_of_one_chain_survivable_with_3x(self):
        cluster = CorfuCluster(num_sets=2, replication_factor=3)
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        chain = cluster.projection.replica_sets[0]
        cluster.crash_storage(chain.nodes[0])
        m.put("b", 2)
        cluster.crash_storage(chain.nodes[1])
        m.put("c", 3)
        fresh = TangoMap(TangoRuntime(cluster, client_id=2), oid=1)
        assert fresh.size() == 3


class TestDurableRestartMidWorkload:
    def test_restart_with_unresolved_orphan(self, tmp_path):
        """Durability + fsck: the orphan survives the restart and is
        still detectable and resolvable afterwards."""
        data_dir = str(tmp_path / "log")
        cluster = open_durable_cluster(data_dir, num_sets=3, replication_factor=2)
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        m.put("live", 1)
        rt.streams.append(
            encode_records([UpdateRecord(1, b"{}", tx_id=0xABC)]), (1,)
        )
        # Process restart.
        reopened = open_durable_cluster(data_dir, num_sets=3, replication_factor=2)
        report = check_log(reopened)
        assert report.orphaned_txes == [0xABC]
        rt2 = TangoRuntime(reopened, client_id=2)
        rt2.force_abort(0xABC, oids=(1,))
        assert check_log(reopened).healthy
        m2 = TangoMap(rt2, oid=1)
        assert m2.get("live") == 1
