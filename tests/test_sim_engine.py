"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Counter, Server, Simulator
from repro.sim.network import Link, Nic, rpc_delay


class TestSimulator:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_single_process_advances_time(self):
        sim = Simulator()
        trace = []

        def proc():
            yield 1.0
            trace.append(sim.now)
            yield 2.0
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [1.0, 3.0]

    def test_processes_interleave_in_time_order(self):
        sim = Simulator()
        trace = []

        def proc(name, delay):
            yield delay
            trace.append(name)

        sim.spawn(proc("slow", 2.0))
        sim.spawn(proc("fast", 1.0))
        sim.run()
        assert trace == ["fast", "slow"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        trace = []

        def proc():
            while True:
                yield 1.0
                trace.append(sim.now)

        sim.spawn(proc())
        sim.run(until=3.5)
        assert trace == [1.0, 2.0, 3.0]
        assert sim.now == 3.5

    def test_spawn_with_delay(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 0.0

        sim.spawn(proc(), delay=5.0)
        sim.run()
        assert trace == [5.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def bad():
            yield -1.0
            yield 0.0

        sim.spawn(bad())
        with pytest.raises(ValueError):
            sim.run()

    def test_fifo_tiebreak_at_same_instant(self):
        sim = Simulator()
        trace = []

        def proc(name):
            yield 1.0
            trace.append(name)

        for name in ("a", "b", "c"):
            sim.spawn(proc(name))
        sim.run()
        assert trace == ["a", "b", "c"]


class TestServer:
    def test_idle_server_serves_immediately(self):
        sim = Simulator()
        server = Server(sim)
        assert server.acquire(2.0) == 2.0

    def test_fifo_queueing(self):
        sim = Simulator()
        server = Server(sim)
        assert server.acquire(1.0) == 1.0
        assert server.acquire(1.0) == 2.0  # waits behind the first
        assert server.acquire(1.0) == 3.0

    def test_capacity_parallelism(self):
        sim = Simulator()
        server = Server(sim, capacity=2)
        assert server.acquire(1.0) == 1.0
        assert server.acquire(1.0) == 1.0  # second slot
        assert server.acquire(1.0) == 2.0  # now queues

    def test_idle_time_not_accumulated(self):
        sim = Simulator()
        server = Server(sim)
        server.acquire(1.0)

        def later():
            yield 10.0
            assert server.acquire(1.0) == 1.0  # server idled in between

        sim.spawn(later())
        sim.run()

    def test_utilization(self):
        sim = Simulator()
        server = Server(sim)
        server.acquire(3.0)
        assert server.utilization(10.0) == pytest.approx(0.3)
        assert server.utilization(0.0) == 0.0

    def test_negative_service_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Server(sim).acquire(-1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Server(Simulator(), capacity=0)

    def test_throughput_equals_service_rate_under_saturation(self):
        """An M/D/1-ish server saturates at exactly 1/service."""
        sim = Simulator()
        server = Server(sim)
        done = Counter()

        def client():
            while True:
                yield server.acquire(1e-3)
                done.record(0.0)

        for _ in range(4):
            sim.spawn(client())
        sim.run(until=1.0)
        assert done.completed == pytest.approx(1000, rel=0.02)


class TestNetwork:
    def test_link_wire_time_scales_with_bytes(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=1e9, latency=0.0)
        small = link.transfer(100)
        sim2 = Simulator()
        link2 = Link(sim2, bandwidth_bps=1e9, latency=0.0)
        big = link2.transfer(10000)
        assert big > small * 50

    def test_latency_added_after_serialization(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=1e9, latency=1e-3)
        assert link.transfer(0) == pytest.approx(1e-3)

    def test_nic_directions_independent(self):
        sim = Simulator()
        nic = Nic(sim, bandwidth_bps=1e6, latency=0.0)
        tx = nic.send(10000)
        rx = nic.recv(10000)
        # Full duplex: rx did not queue behind tx.
        assert rx == pytest.approx(tx)

    def test_rpc_delay_composition(self):
        sim = Simulator()
        a = Nic(sim, bandwidth_bps=1e9, latency=1e-4)
        b = Nic(sim, bandwidth_bps=1e9, latency=1e-4)
        delay = rpc_delay(a, b, 100, 100, service=1e-3)
        assert delay > 1e-3 + 4e-4  # service + four hops of latency


class TestCounter:
    def test_throughput_and_latency(self):
        counter = Counter()
        counter.record(0.5)
        counter.record(1.5)
        assert counter.completed == 2
        assert counter.mean_latency() == 1.0
        assert counter.throughput(4.0) == 0.5

    def test_empty(self):
        counter = Counter()
        assert counter.mean_latency() == 0.0
        assert counter.throughput(1.0) == 0.0
        assert counter.percentile_latency(99) == 0.0

    def test_percentiles_small_sample(self):
        counter = Counter()
        for latency in (1.0, 2.0, 3.0, 4.0):
            counter.record(latency)
        assert counter.percentile_latency(0) == 1.0
        assert counter.percentile_latency(50) == 3.0
        assert counter.percentile_latency(100) == 4.0

    def test_reservoir_bounds_memory(self):
        counter = Counter()
        for i in range(20_000):
            counter.record(float(i))
        assert len(counter._samples) == Counter._RESERVOIR
        # The reservoir still reflects the distribution's spread.
        assert counter.percentile_latency(99) > counter.percentile_latency(10)

    def test_deterministic_across_runs(self):
        a, b = Counter(), Counter()
        for i in range(10_000):
            a.record(float(i % 97))
            b.record(float(i % 97))
        assert a.percentile_latency(95) == b.percentile_latency(95)
