"""Unit tests for the model's playback pipeline and cost paths.

The :class:`_PlaybackPipe` implements the marker rule that makes
Figure 8's linearizable reads behave (a read waits only for entries
that existed at its check), and the ``ModeledCluster`` cost paths are
what every figure's curves are built from. Both deserve direct tests,
not just end-to-end curve assertions.
"""

import pytest

from repro.bench.experiments import _PlaybackPipe
from repro.bench.perfmodel import ModeledCluster
from repro.sim.engine import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    cluster = ModeledCluster(sim, num_sets=3, replication=2, num_clients=2)
    pipe = _PlaybackPipe(sim, cluster, client=0, window=4)
    sim.spawn(pipe.pump())
    return sim, cluster, pipe


class TestPlaybackPipe:
    def test_fetch_completes(self, rig):
        sim, _cluster, pipe = rig
        pipe.enqueue(0)
        sim.run(until=0.1)
        assert pipe.completed == 1

    def test_marker_semantics(self, rig):
        """A waiter for mark M wakes once M entries completed, even as
        later entries keep arriving (the overlapping-fetch bug that the
        first model version had)."""
        sim, _cluster, pipe = rig
        woke_at = []

        def reader():
            pipe.enqueue(0)
            pipe.enqueue(1)
            mark = pipe.mark()
            assert mark == 2
            yield from pipe.wait_mark(mark)
            woke_at.append(sim.now)

        def late_writer():
            while True:
                yield 100e-6
                pipe.enqueue(99)  # a steady stream of later arrivals

        sim.spawn(reader())
        sim.spawn(late_writer())
        sim.run(until=0.05)
        assert woke_at, "reader starved despite its mark being reached"
        assert woke_at[0] < 0.01

    def test_window_bounds_inflight(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_sets=3, replication=2, num_clients=1)
        pipe = _PlaybackPipe(sim, cluster, client=0, window=2)
        sim.spawn(pipe.pump())
        for offset in range(10):
            pipe.enqueue(offset)
        observed = []

        def monitor():
            while pipe.completed < 10:
                observed.append(pipe._inflight)
                yield 10e-6

        sim.spawn(monitor())
        sim.run(until=0.2)
        assert pipe.completed == 10
        assert max(observed) <= 2

    def test_throughput_bound_by_shared_servers(self, rig):
        """Pipelining hides latency but not server occupancy: the
        completion rate converges to the per-entry CPU cost."""
        sim, cluster, pipe = rig
        for offset in range(2000):
            pipe.enqueue(offset)
        sim.run(until=0.05)
        # apply_cpu * batch = 100us per entry -> ~10K entries/s, so a
        # 50ms window completes ~500 of the 2000 queued entries.
        assert 300 <= pipe.completed <= 700


class TestModeledClusterPaths:
    def test_chain_writes_hit_every_replica(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_sets=1, replication=2, num_clients=1)
        cluster.append_entry(0)
        assert cluster.ssd[(0, 0)].requests == 1
        assert cluster.ssd[(0, 1)].requests == 1

    def test_appends_stripe_chains(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_sets=3, replication=2, num_clients=1)
        for _ in range(6):
            cluster.append_entry(0)
        for chain in range(3):
            assert cluster.ssd[(chain, 0)].requests == 2

    def test_tail_reads_converge_on_one_nic(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_sets=1, replication=2, num_clients=1)
        for offset in range(10):
            cluster.read_entry(0, offset, tail=True)
        tail_nic = cluster.storage_nic[(0, 1)]
        head_nic = cluster.storage_nic[(0, 0)]
        assert tail_nic.tx.server.requests == 10
        assert head_nic.tx.server.requests == 0

    def test_balanced_reads_spread_replicas(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_sets=1, replication=2, num_clients=1)
        for offset in range(10):
            cluster.read_entry(0, offset, tail=False)
        assert cluster.ssd[(0, 0)].requests == 5
        assert cluster.ssd[(0, 1)].requests == 5

    def test_batched_op_amortizes_sequencer(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_sets=3, replication=2, num_clients=1)
        busy_before = cluster.seq_cpu.busy_time
        for _ in range(4):  # one batch worth of ops
            cluster.append_op(0)
        one_increment = cluster.params.seq_service
        assert cluster.seq_cpu.busy_time - busy_before == pytest.approx(
            one_increment, rel=1e-6
        )
