"""Public API contracts: the promises downstream code may rely on."""

import pytest

import repro
from repro import errors
from repro.errors import ReproError, TangoError
from repro.objects import (
    TangoCounter,
    TangoGraph,
    TangoList,
    TangoLock,
    TangoMap,
    TangoQueue,
    TangoRegister,
    TangoTreeSet,
)
from repro.tango.object import TangoObject


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        """One except-clause catches everything the library raises."""
        exception_types = [
            obj
            for name, obj in vars(errors).items()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert len(exception_types) > 20
        for exc_type in exception_types:
            assert issubclass(exc_type, ReproError), exc_type

    def test_error_messages_carry_context(self):
        assert "5" in str(errors.WrittenError(5))
        assert "epoch" in str(errors.SealedError(3))
        assert "9" in str(errors.UnknownStreamError(9))
        assert "7" in str(errors.RemoteReadError(7))

    def test_structured_fields(self):
        assert errors.WrittenError(5).offset == 5
        assert errors.SealedError(3).epoch == 3
        assert errors.NodeDownError("flash-1").node == "flash-1"
        assert errors.TooManyStreamsError(20, 16).limit == 16

    def test_tango_errors_also_catchable_narrowly(self):
        assert issubclass(errors.TransactionAborted, TangoError)
        assert issubclass(errors.RemoteReadError, TangoError)


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_py_typed_marker_ships(self):
        import pathlib

        pkg = pathlib.Path(repro.__file__).parent
        assert (pkg / "py.typed").exists()


class TestTangoObjectContract:
    def test_apply_is_mandatory(self, make_runtime):
        class Bare(TangoObject):
            pass

        rt = make_runtime()
        bare = Bare(rt, oid=1)
        rt.update_helper(1, b"x")
        with pytest.raises(NotImplementedError):
            rt.query_helper(1)

    def test_checkpoint_optional_with_clear_error(self, make_runtime):
        class NoCheckpoint(TangoObject):
            def apply(self, payload, offset):
                pass

        obj = NoCheckpoint(make_runtime(), oid=1)
        with pytest.raises(NotImplementedError):
            obj.get_checkpoint()
        with pytest.raises(NotImplementedError):
            obj.load_checkpoint(b"")

    def test_repr_is_informative(self, make_runtime):
        rt = make_runtime()
        obj = TangoRegister(rt, oid=7)
        assert "TangoRegister" in repr(obj)
        assert "7" in repr(obj)


_ACCESSORS = [
    (TangoRegister, lambda o: o.read()),
    (TangoCounter, lambda o: o.value()),
    (TangoMap, lambda o: o.get("k")),
    (TangoList, lambda o: o.to_list()),
    (TangoTreeSet, lambda o: o.first()),
    (TangoQueue, lambda o: o.peek()),
    (TangoLock, lambda o: o.held_locks()),
    (TangoGraph, lambda o: o.node_count()),
]


class TestWriteOnlyHandles:
    @pytest.mark.parametrize(
        "cls,accessor", _ACCESSORS, ids=[c.__name__ for c, _ in _ACCESSORS]
    )
    def test_accessors_rejected_without_view(self, make_runtime, cls, accessor):
        """host_view=False means mutate-only, uniformly (§4.1 case A)."""
        obj = cls(make_runtime(), oid=1, host_view=False)
        assert not obj.is_hosted
        with pytest.raises(TangoError):
            accessor(obj)

    @pytest.mark.parametrize(
        "cls,mutate",
        [
            (TangoRegister, lambda o: o.write(1)),
            (TangoCounter, lambda o: o.increment()),
            (TangoMap, lambda o: o.put("k", 1)),
            (TangoList, lambda o: o.append(1)),
            (TangoTreeSet, lambda o: o.add(1)),
            (TangoQueue, lambda o: o.enqueue(1)),
        ],
        ids=["reg", "ctr", "map", "list", "set", "queue"],
    )
    def test_mutators_work_without_view(self, make_runtime, cls, mutate):
        rt_writer, rt_reader = make_runtime(), make_runtime()
        writer = cls(rt_writer, oid=1, host_view=False)
        reader = cls(rt_reader, oid=1)
        mutate(writer)
        # The hosted view sees the remote write.
        rt_reader.query_helper(1)
        assert rt_reader.stats["applied_updates"] == 1
