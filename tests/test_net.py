"""The transport layer: loopback semantics, fault injection, retries.

``repro.net`` mediates every client↔node call. The loopback transport
must preserve direct-call semantics exactly; the faulty transport must
inject drops, duplicates, reordering and partitions deterministically;
and the client's retry machinery must keep the log exactly-once under
all of them (burned sequencer offsets become filled holes, duplicated
chain writes bounce off the write-once check, lost responses are
retried against the same offset).
"""

import pytest

import repro.corfu.client as client_mod
from repro.corfu import CorfuCluster
from repro.errors import (
    CorfuError,
    RetriesExhaustedError,
    RpcTimeout,
    UnwrittenError,
)
from repro.net import FaultyTransport, LoopbackTransport
from repro.objects import TangoMap
from repro.tango.runtime import TangoRuntime


class _Echo:
    """A minimal RPC server for transport-level tests."""

    def __init__(self):
        self.calls = []
        self.label = "echo"

    def ping(self, value, scale=1):
        self.calls.append(value)
        return value * scale


# ---------------------------------------------------------------------------
# loopback: direct-call semantics plus counters
# ---------------------------------------------------------------------------


class TestLoopbackTransport:
    def test_proxy_forwards_calls_and_counts(self):
        net = LoopbackTransport()
        server = _Echo()
        proxy = net.proxy("client-1", "node-a", lambda: server)
        assert proxy.ping(3, scale=2) == 6
        assert server.calls == [3]
        assert net.endpoint_stats()["node-a"]["rpcs"] == 1

    def test_attribute_reach_through_is_a_hard_error(self):
        # A real wire has no server object to reach into: accessing a
        # name yields an RPC callable, and *invoking* it against a
        # non-callable server attribute fails loudly at delivery time.
        net = LoopbackTransport()
        proxy = net.proxy("client-1", "node-a", lambda: _Echo())
        rpc = proxy.label  # attribute access only names the RPC
        assert callable(rpc)
        assert net.endpoint_stats() == {}  # nothing delivered yet
        with pytest.raises(TypeError, match="non-callable"):
            rpc()

    def test_proxy_exposes_endpoint_metadata_locally(self):
        net = LoopbackTransport()
        proxy = net.proxy("client-1", "node-a", lambda: _Echo())
        assert proxy.source == "client-1"
        assert proxy.target == "node-a"
        assert net.endpoint_stats() == {}  # metadata reads are local
        with pytest.raises(AttributeError):
            proxy._resolve_anything  # private names are never RPCs

    def test_resolve_happens_at_delivery_time(self):
        # Swapping the live server object (crash/recover) must be
        # visible through an existing proxy, like a real reconnect.
        net = LoopbackTransport()
        box = {"server": _Echo()}
        proxy = net.proxy("client-1", "node-a", lambda: box["server"])
        proxy.ping(1)
        replacement = _Echo()
        box["server"] = replacement
        proxy.ping(2)
        assert replacement.calls == [2]

    def test_stats_snapshot_is_fresh_and_sorted(self):
        net = LoopbackTransport()
        for node in ("node-b", "node-a"):
            net.record_retry(node)
        snap = net.endpoint_stats()
        assert list(snap) == ["node-a", "node-b"]
        snap["node-a"]["retries"] = 99
        assert net.endpoint_stats()["node-a"]["retries"] == 1

    def test_backoff_is_a_no_op(self):
        LoopbackTransport().backoff("client-1", attempt=3)


# ---------------------------------------------------------------------------
# fault injection mechanics
# ---------------------------------------------------------------------------


class TestFaultyTransportMechanics:
    def _proxy(self, net, server):
        return net.proxy("client-1", "node-a", lambda: server)

    def test_no_faults_behaves_like_loopback(self):
        net = FaultyTransport(seed=0)
        server = _Echo()
        assert self._proxy(net, server).ping(7) == 7
        assert server.calls == [7]

    def test_request_drop_never_reaches_the_server(self):
        net = FaultyTransport(seed=0, drop_request=1.0)
        server = _Echo()
        with pytest.raises(RpcTimeout):
            self._proxy(net, server).ping(1)
        assert server.calls == []
        stats = net.endpoint_stats()["node-a"]
        assert stats["drops"] == stats["timeouts"] == 1
        assert stats["rpcs"] == 0

    def test_response_drop_executes_but_times_out(self):
        net = FaultyTransport(seed=0, drop_response=1.0)
        server = _Echo()
        with pytest.raises(RpcTimeout):
            self._proxy(net, server).ping(1)
        assert server.calls == [1]  # the ambiguity: it DID execute
        assert net.endpoint_stats()["node-a"]["rpcs"] == 1

    def test_duplicate_executes_twice_returns_once(self):
        net = FaultyTransport(seed=0, duplicate=1.0)
        server = _Echo()
        assert self._proxy(net, server).ping(5) == 5
        assert server.calls == [5, 5]
        stats = net.endpoint_stats()["node-a"]
        assert stats["duplicates"] == 1 and stats["rpcs"] == 2

    def test_duplicate_swallows_the_second_outcome(self):
        # The retransmission bouncing off an idempotence check
        # (WrittenError and friends) must not surface to the caller.
        class OnceOnly:
            def __init__(self):
                self.armed = True

            def op(self):
                if self.armed:
                    self.armed = False
                    return "ok"
                raise CorfuError("already done")

        net = FaultyTransport(seed=0, duplicate=1.0)
        server = OnceOnly()
        proxy = net.proxy("c", "n", lambda: server)
        assert proxy.op() == "ok"
        assert not server.armed

    def test_reorder_defers_delivery_until_backoff(self):
        net = FaultyTransport(seed=0, reorder=1.0, max_delay=1)
        server = _Echo()
        proxy = self._proxy(net, server)
        with pytest.raises(RpcTimeout):
            proxy.ping(9)
        assert server.calls == []  # in flight, not delivered
        net.set_rates(reorder=0.0)
        net.backoff("client-1", attempt=0)  # logical time advances
        assert server.calls == [9]
        assert net.endpoint_stats()["node-a"]["reordered"] == 1

    def test_deliver_delayed_flushes_everything(self):
        net = FaultyTransport(seed=0, reorder=1.0, max_delay=1000)
        server = _Echo()
        proxy = self._proxy(net, server)
        for i in range(3):
            with pytest.raises(RpcTimeout):
                proxy.ping(i)
        assert net.deliver_delayed() == 3
        assert sorted(server.calls) == [0, 1, 2]

    def test_partition_and_heal(self):
        net = FaultyTransport(seed=0)
        server = _Echo()
        proxy = self._proxy(net, server)
        net.partition("client-1", "node-a")
        assert net.partitioned("node-a", "client-1")  # symmetric
        with pytest.raises(RpcTimeout):
            proxy.ping(1)
        assert server.calls == []
        net.heal("client-1", "node-a")
        assert proxy.ping(2) == 2
        with pytest.raises(ValueError):
            net.heal("client-1")  # one endpoint only is ambiguous

    def test_calm_silences_every_fault(self):
        net = FaultyTransport(
            seed=0, drop_request=1.0, duplicate=1.0, reorder=1.0
        )
        net.partition("a", "b")
        net.calm()
        assert net.partitions == ()
        server = _Echo()
        assert self._proxy(net, server).ping(4) == 4
        assert server.calls == [4]

    def test_set_rates_rejects_unknown_knobs(self):
        with pytest.raises(ValueError):
            FaultyTransport(seed=0).set_rates(jitter=0.5)

    def test_simulated_latency_accrues_without_sleeping(self):
        net = FaultyTransport(seed=0, latency_ms=5.0)
        proxy = self._proxy(net, _Echo())
        for _ in range(10):
            proxy.ping(0)
        assert 0 < net.simulated_latency_ms <= 50.0

    def test_same_seed_same_fault_schedule(self):
        def run(seed):
            net = FaultyTransport(
                seed=seed, drop_request=0.3, drop_response=0.2, duplicate=0.2
            )
            server = _Echo()
            proxy = net.proxy("c", "n", lambda: server)
            outcomes = []
            for i in range(40):
                try:
                    proxy.ping(i)
                    outcomes.append("ok")
                except RpcTimeout:
                    outcomes.append("timeout")
            return outcomes, server.calls, net.endpoint_stats()

        assert run(7) == run(7)
        assert run(7) != run(8)


# ---------------------------------------------------------------------------
# end-to-end: the client's retry machinery over a faulty network
# ---------------------------------------------------------------------------


def _harvest(cluster, client):
    """Read the whole log, filling any leftover holes; return
    (non-junk payloads in offset order, junk offsets)."""
    tail = client.check()
    payloads, junk = [], []
    for offset in range(tail):
        try:
            entry = client.read(offset)
        except UnwrittenError:
            client.fill(offset)
            entry = client.read(offset)
        if entry.is_junk:
            junk.append(offset)
        else:
            payloads.append(entry.payload)
    return payloads, junk


class TestClientOverFaultyNetwork:
    def test_response_drops_never_duplicate_or_lose_entries(self):
        # Lost responses force retries of both increments (burning
        # offsets) and chain writes (retried at the SAME offset with
        # maybe_mine); each payload must land exactly once.
        net = FaultyTransport(seed=3, drop_request=0.1, drop_response=0.2)
        cluster = CorfuCluster(num_sets=2, replication_factor=2, transport=net)
        client = cluster.client()
        expected = [b"payload-%d" % i for i in range(40)]
        offsets = [client.append(p) for p in expected]
        assert len(set(offsets)) == len(offsets)
        net.calm()
        payloads, _junk = _harvest(cluster, cluster.client())
        assert payloads == expected  # exactly once, in append order

    def test_duplicated_increments_become_filled_holes(self):
        # At-least-once delivery of `increment` burns offsets: the
        # second execution's offset is never written and must be
        # absorbed by hole-filling as a junk entry — the acceptance
        # criterion for the fault model.
        net = FaultyTransport(seed=7, duplicate=0.4)
        cluster = CorfuCluster(num_sets=2, replication_factor=2, transport=net)
        client = cluster.client()
        expected = [b"p%d" % i for i in range(30)]
        offsets = [client.append(p) for p in expected]
        net.calm()
        tail = client.check()
        assert tail > len(expected)  # offsets were burned
        burned = sorted(set(range(tail)) - set(offsets))
        assert burned
        reader = cluster.client()
        payloads, junk = _harvest(cluster, reader)
        assert junk == burned  # every burned offset is now a junk fill
        assert payloads == expected
        assert reader.fills == len(burned)

    def test_partition_from_storage_drives_ejection(self):
        net = FaultyTransport(seed=1)
        cluster = CorfuCluster(num_sets=2, replication_factor=2, transport=net)
        client = cluster.client()
        client.append(b"before")
        victim = sorted(cluster.projection.all_nodes())[0]
        epoch0 = cluster.projection.epoch
        net.partition(client.name, victim)
        for i in range(6):
            client.append(b"during-%d" % i)
        assert cluster.projection.epoch > epoch0
        assert victim not in cluster.projection.all_nodes()
        net.calm()
        payloads, _ = _harvest(cluster, cluster.client())
        assert payloads == [b"before"] + [b"during-%d" % i for i in range(6)]

    def test_partition_from_sequencer_drives_failover(self):
        net = FaultyTransport(seed=1)
        cluster = CorfuCluster(num_sets=2, replication_factor=2, transport=net)
        client = cluster.client()
        client.append(b"one", stream_ids=(4,))
        old_seq = cluster.projection.sequencer
        net.partition(client.name, old_seq)
        client.append(b"two", stream_ids=(4,))
        assert cluster.projection.sequencer != old_seq
        # The replacement recovered tail and backpointers by scanning.
        tail, ptrs = client.query_streams((4,))
        assert tail == 2
        assert set(ptrs[4]) == {0, 1}

    def test_retries_exhausted_surfaces_as_typed_error(self, monkeypatch):
        # With the failure detector disabled, a persistent partition
        # exhausts the retry budget instead of reconfiguring — the
        # bounded-retry paths must raise RetriesExhaustedError, never
        # the old sentinel values.
        monkeypatch.setattr(client_mod, "_TIMEOUT_FAILOVER", 10**9)
        net = FaultyTransport(seed=0)
        cluster = CorfuCluster(num_sets=1, replication_factor=2, transport=net)
        client = cluster.client()
        client.append(b"ok")
        net.partition(client.name, cluster.projection.sequencer)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.check()
        assert excinfo.value.op == "check"
        assert excinfo.value.attempts == client_mod._MAX_RETRIES
        assert isinstance(excinfo.value, CorfuError)

    def test_net_counters_reach_runtime_status(self):
        net = FaultyTransport(seed=2, drop_response=0.3)
        cluster = CorfuCluster(num_sets=2, replication_factor=2, transport=net)
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        for i in range(15):
            m.put(f"k{i}", i)
        status = rt.status()
        stats = status["net"]
        assert stats  # per-endpoint dicts present
        assert any(s["timeouts"] > 0 for s in stats.values())
        assert any(s["retries"] > 0 for s in stats.values())
        assert sum(s["rpcs"] for s in stats.values()) > 15

    def test_loopback_leaves_existing_counters_unchanged(self, cluster):
        # The default transport must not perturb the counters the
        # performance model reads (an append is still exactly one
        # sequencer increment plus one chain write per replica).
        client = cluster.client()
        client.append(b"x")
        seq = cluster.sequencer(cluster.projection.sequencer)
        assert seq.increments == 1
        stats = client.net_stats()
        assert stats[cluster.projection.sequencer]["rpcs"] == 1
        assert all(s["timeouts"] == 0 for s in stats.values())
        assert all(s["retries"] == 0 for s in stats.values())
