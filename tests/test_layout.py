"""Tests for projections and the deterministic offset mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corfu.layout import Projection, ReplicaSet, build_projection


class TestReplicaSet:
    def test_head_and_tail(self):
        rset = ReplicaSet(("a", "b", "c"))
        assert rset.head == "a"
        assert rset.tail == "c"
        assert len(rset) == 3

    def test_single_node_chain(self):
        rset = ReplicaSet(("solo",))
        assert rset.head == rset.tail == "solo"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicaSet(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ReplicaSet(("a", "a"))

    def test_without(self):
        rset = ReplicaSet(("a", "b", "c")).without("b")
        assert rset.nodes == ("a", "c")


class TestProjectionMapping:
    def test_paper_example_striping(self):
        """Offset 0 -> A:0, offset 1 -> B:0, ... wraps back to A:1."""
        proj = build_projection(2, 2)
        set_a, set_b = proj.replica_sets
        assert proj.map_offset(0) == (set_a, 0)
        assert proj.map_offset(1) == (set_b, 0)
        assert proj.map_offset(2) == (set_a, 1)
        assert proj.map_offset(3) == (set_b, 1)

    def test_negative_offset_rejected(self):
        proj = build_projection(2, 2)
        with pytest.raises(ValueError):
            proj.map_offset(-1)

    def test_inverse_mapping(self):
        proj = build_projection(9, 2)
        for offset in range(100):
            rset, local = proj.map_offset(offset)
            index = proj.replica_sets.index(rset)
            assert proj.global_offset(index, local) == offset

    @given(st.integers(min_value=0, max_value=10**12))
    def test_inverse_property(self, offset):
        proj = build_projection(9, 2)
        rset, local = proj.map_offset(offset)
        index = proj.replica_sets.index(rset)
        assert proj.global_offset(index, local) == offset

    def test_all_nodes(self):
        proj = build_projection(3, 2)
        assert len(proj.all_nodes()) == 6
        assert len(set(proj.all_nodes())) == 6


class TestProjectionValidation:
    def test_disjoint_sets_required(self):
        with pytest.raises(ValueError):
            Projection(
                0,
                (ReplicaSet(("a", "b")), ReplicaSet(("b", "c"))),
                "seq-0",
            )

    def test_at_least_one_set(self):
        with pytest.raises(ValueError):
            Projection(0, (), "seq-0")


class TestProjectionChanges:
    def test_with_sequencer_bumps_epoch(self):
        proj = build_projection(3, 2)
        new = proj.with_sequencer("seq-1")
        assert new.epoch == proj.epoch + 1
        assert new.sequencer == "seq-1"
        assert new.replica_sets == proj.replica_sets

    def test_eject_node(self):
        proj = build_projection(3, 2)
        victim = proj.replica_sets[1].nodes[0]
        new = proj.with_node_ejected(victim)
        assert new.epoch == proj.epoch + 1
        assert victim not in new.all_nodes()
        assert len(new.replica_sets[1]) == 1

    def test_eject_unknown_node(self):
        proj = build_projection(3, 2)
        with pytest.raises(ValueError):
            proj.with_node_ejected("nope")

    def test_eject_last_replica_rejected(self):
        proj = build_projection(1, 1)
        with pytest.raises(ValueError):
            proj.with_node_ejected(proj.replica_sets[0].nodes[0])

    def test_mapping_changes_after_ejection(self):
        """The shrunk chain still serves its offsets."""
        proj = build_projection(2, 2)
        victim = proj.replica_sets[0].nodes[0]
        new = proj.with_node_ejected(victim)
        rset, local = new.map_offset(0)
        assert victim not in rset.nodes
        assert local == 0


class TestBuildProjection:
    def test_paper_deployment(self):
        """The 18-node, 9x2 deployment of section 6."""
        proj = build_projection(9, 2)
        assert len(proj.replica_sets) == 9
        assert all(len(rs) == 2 for rs in proj.replica_sets)
        assert len(proj.all_nodes()) == 18
