"""Tier-1 self-check: the whole source tree satisfies every tangolint
rule.

This is the linter's reason to exist — the paper's invariants hold
machine-checkably across the codebase. A failure here means either a
protocol violation crept into ``src/repro`` or a rule regressed; both
block the build. Fix the code, or (for a hand-verified exception) add a
``# tangolint: disable=TL00X`` with a justifying comment.
"""

import os

from repro.tools.lint import ALL_RULES, lint_paths, render_text

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")
)


def test_source_tree_exists():
    assert os.path.isdir(SRC)


def test_full_rule_catalog_is_registered():
    ids = [rule.rule_id for rule in ALL_RULES]
    assert ids == sorted(ids)
    assert ids == [f"TL{n:03d}" for n in range(1, 14)]


def test_src_repro_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_every_rule_documents_itself():
    for rule in ALL_RULES:
        assert rule.title, rule.rule_id
        assert rule.rationale, rule.rule_id
        assert rule.paper_section, rule.rule_id
