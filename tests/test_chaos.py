"""Randomized fault injection: correctness under infrastructure chaos.

Hypothesis drives interleavings of application operations with storage
crashes/recoveries and sequencer kills. Invariants:

- no committed data is ever lost;
- all views converge;
- every fresh client reconstructs the same state;
- the log passes fsck (no dangling transaction state).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corfu import CorfuCluster
from repro.net import FaultyTransport
from repro.objects import TangoList, TangoMap
from repro.streams import StreamClient
from repro.tango.runtime import TangoRuntime
from repro.tools import check_log

_settings = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Actions: put (key, value), crash storage i, recover storage i,
# crash sequencer. With 3x replication, chains survive two dead nodes.
_actions = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 5), st.integers(0, 99)),
        st.tuples(st.just("crash"), st.integers(0, 5)),
        st.tuples(st.just("recover"), st.integers(0, 5)),
        st.tuples(st.just("kill_seq"), st.just(0)),
    ),
    max_size=20,
)


def _node_name(cluster, index):
    nodes = sorted(cluster.projection.all_nodes())
    if not nodes:
        return None
    return nodes[index % len(nodes)]


class TestChaos:
    @given(actions=_actions)
    @_settings
    def test_no_committed_write_is_ever_lost(self, actions):
        cluster = CorfuCluster(num_sets=2, replication_factor=3)
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        expected = {}
        crashed = set()
        for action in actions:
            kind = action[0]
            if kind == "put":
                key, value = f"k{action[1]}", action[2]
                m.put(key, value)
                expected[key] = value
            elif kind == "crash":
                name = _node_name(cluster, action[1])
                if name is None:
                    continue
                # Keep at least one live replica per chain: skip the
                # crash if it would empty the victim's chain.
                chain = next(
                    rs for rs in cluster.projection.replica_sets
                    if name in rs.nodes
                )
                live = [n for n in chain if n not in crashed]
                if len(live) <= 1 or name in crashed:
                    continue
                cluster.crash_storage(name)
                crashed.add(name)
            elif kind == "recover":
                name = _node_name(cluster, action[1])
                if name in crashed:
                    # Recovered nodes may have been ejected from the
                    # projection; recovery just brings the unit up.
                    cluster.recover_storage(name)
                    crashed.discard(name)
            else:  # kill_seq
                cluster.crash_sequencer(cluster.projection.sequencer)
        # Every committed put is visible to the writer...
        assert {k: m.get(k) for k in expected} == expected
        # ...and to a brand-new client reconstructing from the log.
        fresh = TangoMap(TangoRuntime(cluster, client_id=2), oid=1)
        assert {k: fresh.get(k) for k in expected} == expected

    @given(actions=_actions)
    @_settings
    def test_log_stays_fsck_clean(self, actions):
        cluster = CorfuCluster(num_sets=2, replication_factor=3)
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        crashed = set()
        for action in actions:
            kind = action[0]
            if kind == "put":
                m.put(f"k{action[1]}", action[2])
            elif kind == "crash":
                name = _node_name(cluster, action[1])
                if name is None or name in crashed:
                    continue
                chain = next(
                    rs for rs in cluster.projection.replica_sets
                    if name in rs.nodes
                )
                if len([n for n in chain if n not in crashed]) <= 1:
                    continue
                cluster.crash_storage(name)
                crashed.add(name)
            elif kind == "recover":
                name = _node_name(cluster, action[1])
                if name in crashed:
                    cluster.recover_storage(name)
                    crashed.discard(name)
            else:
                cluster.crash_sequencer(cluster.projection.sequencer)
        # Recover any still-crashed units so fsck can read everything.
        for name in list(crashed):
            cluster.recover_storage(name)
        report = check_log(cluster)
        assert report.healthy
        assert not report.bad_backpointers

    @given(
        puts=st.integers(min_value=1, max_value=15),
        kill_at=st.integers(min_value=0, max_value=14),
    )
    @_settings
    def test_transactions_across_sequencer_kill(self, puts, kill_at):
        """Transactional RMW stays exact no matter when the sequencer
        dies."""
        cluster = CorfuCluster(num_sets=2, replication_factor=2)
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        m.put("n", 0)
        m.get("n")
        for i in range(puts):
            if i == kill_at:
                cluster.crash_sequencer(cluster.projection.sequencer)
            rt.run_transaction(lambda: m.put("n", m.get("n") + 1))
        assert m.get("n") == puts


# Network chaos: application operations interleaved with transport
# faults. Rate mixes are indexed by the "rates" action; partitions cut
# the driving client off from one node at a time.
_RATE_MIXES = (
    {"drop_request": 0.0, "drop_response": 0.0, "duplicate": 0.0, "reorder": 0.0},
    {"drop_request": 0.15, "drop_response": 0.0, "duplicate": 0.0, "reorder": 0.0},
    {"drop_request": 0.0, "drop_response": 0.15, "duplicate": 0.2, "reorder": 0.0},
    {"drop_request": 0.1, "drop_response": 0.1, "duplicate": 0.1, "reorder": 0.1},
)

_net_actions = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 5), st.integers(0, 99)),
        st.tuples(st.just("rates"), st.integers(0, 3)),
        st.tuples(st.just("partition"), st.integers(0, 5)),
        st.tuples(st.just("heal"), st.just(0)),
    ),
    max_size=20,
)


class TestNetworkChaos:
    """Same invariants as TestChaos, but the failures live in the
    network: seeded drops, duplicates, reordering and partitions over
    a FaultyTransport. Committed writes must survive burned sequencer
    offsets, duplicated chain writes and failure-detector ejections."""

    @staticmethod
    def _safe_to_cut(cluster, transport, client_name, node):
        """Never cut the client off from ALL replicas of a chain: with
        nothing left to fail over to, retries (rightly) exhaust. The
        sequencer is always fair game — cutting it drives failover."""
        proj = cluster.projection
        if node == proj.sequencer:
            return True
        chain = next(
            (rs for rs in proj.replica_sets if node in rs.nodes), None
        )
        if chain is None:
            return True  # already ejected; nobody calls it
        live = [
            n
            for n in chain.nodes
            if n != node and not transport.partitioned(client_name, n)
        ]
        return bool(live)

    def _drive(self, transport, cluster, rt, m, actions):
        client_name = rt.streams.corfu.name
        expected = {}
        for action in actions:
            kind = action[0]
            if kind == "put":
                key, value = f"k{action[1]}", action[2]
                m.put(key, value)
                expected[key] = value
            elif kind == "rates":
                transport.set_rates(**_RATE_MIXES[action[1]])
            elif kind == "partition":
                name = _node_name(cluster, action[1])
                if name is not None and self._safe_to_cut(
                    cluster, transport, client_name, name
                ):
                    transport.partition(client_name, name)
            else:  # heal
                transport.heal()
        # Final-state checks run over a quiet network (they issue RPCs
        # through the same transport).
        transport.calm()
        return expected

    @given(actions=_net_actions)
    @_settings
    def test_no_committed_write_lost_under_network_faults(self, actions):
        transport = FaultyTransport(seed=11)
        cluster = CorfuCluster(
            num_sets=2, replication_factor=3, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        expected = self._drive(transport, cluster, rt, m, actions)
        # Every committed put is visible to the writer...
        assert {k: m.get(k) for k in expected} == expected
        # ...and to a brand-new client reconstructing from the log.
        fresh = TangoMap(TangoRuntime(cluster, client_id=2), oid=1)
        assert {k: fresh.get(k) for k in expected} == expected

    @given(actions=_net_actions)
    @_settings
    def test_log_stays_fsck_clean_under_network_faults(self, actions):
        transport = FaultyTransport(seed=23)
        cluster = CorfuCluster(
            num_sets=2, replication_factor=3, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        self._drive(transport, cluster, rt, m, actions)
        report = check_log(cluster)
        assert report.healthy
        assert not report.bad_backpointers


class TestBatchedReadChaos:
    """The batched read path under the same network chaos: read_many
    RPCs get dropped, duplicated, reordered and partitioned like any
    other call, and the retry discipline (partial results retained
    across retries) must still converge on exactly the per-offset
    answer with no lost writes and exactly-once hole fills."""

    _safe_to_cut = staticmethod(TestNetworkChaos._safe_to_cut)

    def _drive_no_calm(self, transport, cluster, rt, m, actions):
        """Like _drive, but leaves the final fault mix active so the
        batched sync below runs over a faulty network."""
        client_name = rt.streams.corfu.name
        expected = {}
        for action in actions:
            kind = action[0]
            if kind == "put":
                key, value = f"k{action[1]}", action[2]
                m.put(key, value)
                expected[key] = value
            elif kind == "rates":
                transport.set_rates(**_RATE_MIXES[action[1]])
            elif kind == "partition":
                name = _node_name(cluster, action[1])
                if name is not None and self._safe_to_cut(
                    cluster, transport, client_name, name
                ):
                    transport.partition(client_name, name)
            else:  # heal
                transport.heal()
        return expected

    @given(actions=_net_actions)
    @_settings
    def test_batched_cold_sync_converges_under_faults(self, actions):
        transport = FaultyTransport(seed=37)
        cluster = CorfuCluster(
            num_sets=2, replication_factor=3, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        expected = self._drive_no_calm(transport, cluster, rt, m, actions)
        # Cold batched sync UNDER the surviving fault mix (partitions
        # target the writer's endpoint, so the fresh reader only feels
        # the rate-based faults — drops, duplicates, reordering).
        batched = StreamClient(cluster.client(), prefetch_window=16)
        batched.open_stream(1)
        batched.sync(1)
        # Checks below compare against a per-offset reader over a quiet
        # network; the batched client's answer was produced under fire.
        transport.calm()
        plain = StreamClient(cluster.client())
        plain.open_stream(1)
        plain.sync(1)
        assert batched.known_offsets(1) == plain.known_offsets(1)
        for off in plain.known_offsets(1):
            assert batched.fetch(off).payload == plain.fetch(off).payload
        # Fetching everything again is served from cache: fills stay
        # exactly-once per hole (burned offsets surfacing in the list
        # are filled at first delivery, never again).
        fills_after_first_pass = batched.corfu.fills
        for off in plain.known_offsets(1):
            batched.fetch(off)
        assert batched.corfu.fills == fills_after_first_pass
        # No committed write was lost.
        fresh = TangoMap(TangoRuntime(cluster, client_id=2), oid=1)
        assert {k: fresh.get(k) for k in expected} == expected


# Batch-scope chaos: group-commit scopes (runtime.batch, adaptive and
# fixed sizes) driven under seeded drops/duplicates/reordering. No
# partitions: every scope must exit cleanly, so every update below is
# *acknowledged* — and acknowledged updates must be exactly-once.
_batch_actions = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 5), st.integers(0, 99)),
        st.tuples(st.just("rates"), st.integers(0, 3)),
    ),
    max_size=24,
)


class TestBatchChaos:
    """runtime.batch under network faults: every update acknowledged by
    a clean scope exit appears in its stream exactly once, in order —
    the batched append path's retries (pipelined chain writes re-driven
    with maybe_mine) never duplicate or drop an acknowledged record."""

    @given(actions=_batch_actions)
    @_settings
    def test_batched_updates_exactly_once_under_faults(self, actions):
        transport = FaultyTransport(seed=43)
        cluster = CorfuCluster(
            num_sets=2, replication_factor=3, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        lst = TangoList(rt, oid=1)
        expected = []
        token = 0
        # Drive the actions through a sequence of batch scopes,
        # alternating adaptive sizing with a pinned size so both paths
        # see the fault mix.
        for start in range(0, len(actions), 5):
            group = actions[start:start + 5]
            scope = rt.batch() if (start // 5) % 2 == 0 else rt.batch(size=3)
            with scope:
                for action in group:
                    if action[0] == "put":
                        value = f"v{token}-{action[2]}"
                        token += 1
                        lst.append(value)
                        expected.append(value)
                    else:
                        transport.set_rates(**_RATE_MIXES[action[1]])
        # Scope exits acknowledged every update; verification runs over
        # a quiet network.
        transport.calm()
        # Exactly once, in submission order, for the writer...
        assert lst.to_list() == tuple(expected)
        # ...and for a fresh client replaying the log from scratch.
        fresh = TangoList(TangoRuntime(cluster, client_id=2), oid=1)
        assert fresh.to_list() == tuple(expected)

    @given(actions=_batch_actions)
    @_settings
    def test_speculative_scopes_exactly_once_under_faults(self, actions):
        """Speculative scopes under the same faults: commit-or-rollback
        reconciliation must preserve exactly-once for acknowledged
        updates even when flush-path RPCs are dropped or duplicated."""
        transport = FaultyTransport(seed=53)
        cluster = CorfuCluster(
            num_sets=2, replication_factor=3, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        lst = TangoList(rt, oid=1)
        lst.append("seed")
        expected = ["seed"]
        token = 0
        for start in range(0, len(actions), 5):
            group = actions[start:start + 5]
            with rt.batch(size=100, speculative=True):
                for action in group:
                    if action[0] == "put":
                        value = f"s{token}-{action[2]}"
                        token += 1
                        lst.append(value)
                        expected.append(value)
                    else:
                        transport.set_rates(**_RATE_MIXES[action[1]])
        transport.calm()
        assert lst.to_list() == tuple(expected)
        fresh = TangoList(TangoRuntime(cluster, client_id=2), oid=1)
        assert fresh.to_list() == tuple(expected)


# Sharded-sequencer chaos: the same fault vocabulary pointed at a
# 4-shard sequencer group. Vector appends span two stream groups, so
# drops/duplicates land mid-grant; kill_shard crashes one shard's soft
# state and the next append to its group must drive per-shard failover.
_sharded_actions = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("vector"), st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.just("rates"), st.integers(0, 3)),
        st.tuples(st.just("kill_shard"), st.integers(0, 3)),
        st.tuples(st.just("heal"), st.just(0)),
    ),
    max_size=20,
)


class TestShardedChaos:
    """Exactly-once and per-shard failover for the sharded sequencer.

    Invariants: every committed append (single-group or cross-shard
    vector) appears exactly once in each stream it named, in commit
    order; killing one shard never disturbs the offsets or soft state
    of the others."""

    @given(actions=_sharded_actions)
    @_settings
    def test_cross_shard_appends_exactly_once_under_faults(self, actions):
        transport = FaultyTransport(seed=53)
        cluster = CorfuCluster(
            num_sets=2, replication_factor=3, transport=transport,
            seq_shards=4,
        )
        sclient = StreamClient(cluster.client())
        for sid in range(4):
            sclient.open_stream(sid)
        expected = {sid: [] for sid in range(4)}
        seq = 0
        for action in actions:
            kind = action[0]
            if kind == "append":
                sid = action[1]
                payload = f"s{sid}-{seq}".encode()
                seq += 1
                sclient.append(payload, (sid,))
                expected[sid].append(payload)
            elif kind == "vector":
                sids = tuple(sorted({action[1], action[2]}))
                payload = f"v{seq}".encode()
                seq += 1
                sclient.append(payload, sids)
                for sid in sids:
                    expected[sid].append(payload)
            elif kind == "rates":
                transport.set_rates(**_RATE_MIXES[action[1]])
            elif kind == "kill_shard":
                shards = cluster.projection.sequencer_shards
                cluster.crash_sequencer(shards[action[1]])
            else:  # heal
                transport.heal()
        # Final checks over a quiet network, through a fresh client
        # that reconstructs purely from the log.
        transport.calm()
        fresh = StreamClient(cluster.client())
        for sid in range(4):
            fresh.open_stream(sid)
            fresh.sync(sid)
            got = []
            while True:
                nxt = fresh.readnext(sid)
                if nxt is None:
                    break
                # Burned offsets (lost responses, duplicated grants)
                # surface as junk, exactly as in the dense-counter path;
                # consumers skip them.
                if nxt[1].is_junk:
                    continue
                got.append(nxt[1].payload)
            assert got == expected[sid]

    @given(
        rounds=st.integers(min_value=1, max_value=8),
        kill_at=st.integers(min_value=0, max_value=7),
        victim=st.integers(min_value=0, max_value=3),
    )
    @_settings
    def test_shard_kill_mid_grant_fails_over_only_that_shard(
        self, rounds, kill_at, victim
    ):
        cluster = CorfuCluster(num_sets=2, replication_factor=2, seq_shards=4)
        client = cluster.client()
        before = cluster.projection
        instances = {
            name: cluster.sequencer(name) for name in before.sequencer_shards
        }
        offsets = []
        for i in range(rounds):
            if i == kill_at:
                shards = cluster.projection.sequencer_shards
                cluster.crash_sequencer(shards[victim])
            for sid in range(4):
                offset = client.append(f"r{i}s{sid}".encode(), (sid,))
                # Routing survives the failover: still the owning stripe.
                assert offset % 4 == sid
                offsets.append(offset)
        # Exactly-once: no offset ever issued twice, before or after
        # the kill.
        assert len(offsets) == len(set(offsets))
        after = cluster.projection
        if kill_at < rounds:
            # Only the victim's slot changed; every healthy shard kept
            # its live instance (soft state intact, never halted).
            assert after.sequencer_shards[victim] != before.sequencer_shards[victim]
            for s in range(4):
                if s == victim:
                    continue
                name = after.sequencer_shards[s]
                assert name == before.sequencer_shards[s]
                assert cluster.sequencer(name) is instances[name]
        # A cross-shard vector grant still works over the mixed-epoch
        # group, and its entry lands above everything issued so far.
        top = client.append(b"vector-after", (1, 2))
        assert top > max(offsets)
