"""Smoke tests: every experiment function runs and returns sane rows.

The full-size runs with shape assertions live in ``benchmarks/``; these
are minimal-parameter executions so that a broken experiment fails fast
in the unit suite.
"""

import pytest

from repro.bench import experiments as E
from repro.bench import experiments_functional as F

_FAST = {"duration": 0.01, "warmup": 0.002}


class TestModelExperiments:
    def test_fig2(self):
        rows = E.fig2_sequencer(client_counts=(2,), **_FAST)
        assert rows[0]["clients"] == 2
        assert rows[0]["kreq_per_sec"] > 0

    def test_fig8_left(self):
        rows = E.fig8_single_view(write_ratios=(0.5,), windows=(16,), **_FAST)
        assert rows[0]["kops_per_sec"] > 0
        assert rows[0]["latency_ms"] > 0

    def test_fig8_middle(self):
        rows = E.fig8_two_views(target_write_rates=(0, 10e3), **_FAST)
        assert len(rows) == 2
        assert rows[0]["reads_kops"] > 0

    def test_fig8_right(self):
        rows = E.fig8_elasticity(reader_counts=(2,), **_FAST)
        assert len(rows) == 2  # one per log size
        assert all(r["reads_kops"] > 0 for r in rows)

    def test_fig9(self):
        rows = E.fig9_tx_goodput(
            node_counts=(2,), key_counts=(1000,), distributions=("uniform",),
            **_FAST,
        )
        row = rows[0]
        assert 0 < row["goodput_ktx"] <= row["ktx_per_sec"]
        assert 0 <= row["goodput_pct"] <= 100

    def test_fig10_left(self):
        rows = E.fig10_partitions(node_counts=(2,), **_FAST)
        assert {r["log"] for r in rows} == {"18-server", "6-server"}

    def test_fig10_middle(self):
        rows = E.fig10_cross_partition(cross_pcts=(0, 50), nodes=4, **_FAST)
        assert all(r["tango_ktx"] > 0 and r["twopl_ktx"] > 0 for r in rows)

    def test_fig10_right(self):
        rows = E.fig10_shared_object(shared_pcts=(0, 50), nodes=2, **_FAST)
        assert rows[0]["ktx_per_sec"] > rows[1]["ktx_per_sec"]


class TestFunctionalExperiments:
    def test_sec63_zookeeper(self):
        rows = F.sec63_zookeeper(clients=2, ops_per_client=5, moves=3)
        by = {r["metric"]: r["measured"] for r in rows}
        assert by["moves visible at destination owner"] == 3

    def test_sec63_bookkeeper(self):
        rows = F.sec63_bookkeeper(entries=10)
        by = {r["metric"]: r["measured"] for r in rows}
        assert by["log appends per ledger write"] == 1.0

    def test_sec5_failover(self):
        rows = F.sec5_sequencer_failover(entries=30, streams=3)
        by = {r["metric"]: r["measured"] for r in rows}
        assert by["recovered state exact (tail + last-K per stream)"] is True

    def test_sec5_failover_vs_checkpoint(self):
        rows = F.sec5_failover_vs_checkpoint(log_sizes=(30,))
        assert len(rows) == 2
        with_cp = next(r for r in rows if r["checkpointed"])
        without = next(r for r in rows if not r["checkpointed"])
        assert with_cp["scan_reads"] < without["scan_reads"]
