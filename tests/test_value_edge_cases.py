"""Edge-case values through the full stack: serialization fidelity.

Everything an application might realistically store — unicode, nesting,
big integers, empty values, binary-ish strings — must survive the trip
through update records, the shared log, replay, checkpoints, and GC.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.objects import TangoMap, TangoRegister
from repro.tango.runtime import TangoRuntime

# JSON-representable values, recursively.
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)


class TestUnicodeAndNesting:
    def test_unicode_keys_and_values(self, make_runtime):
        m = TangoMap(make_runtime(), oid=1)
        m.put("héllo→世界", {"emoji": "🎉", "rtl": "שלום"})
        assert m.get("héllo→世界") == {"emoji": "🎉", "rtl": "שלום"}

    def test_deeply_nested_value(self, make_runtime):
        value = {"a": [{"b": [{"c": [1, 2, {"d": None}]}]}]}
        reg = TangoRegister(make_runtime(), oid=1)
        reg.write(value)
        assert reg.read() == value

    def test_empty_string_key(self, make_runtime):
        m = TangoMap(make_runtime(), oid=1)
        m.put("", "empty-key-value")
        assert m.get("") == "empty-key-value"
        assert m.contains("")

    def test_large_integers(self, make_runtime):
        reg = TangoRegister(make_runtime(), oid=1)
        reg.write(2**62)
        assert reg.read() == 2**62

    def test_json_special_characters_in_keys(self, make_runtime):
        m = TangoMap(make_runtime(), oid=1)
        nasty = 'quote" backslash\\ newline\n tab\t'
        m.put(nasty, 1)
        assert m.get(nasty) == 1

    def test_keys_with_distinct_unicode_normalization(self, make_runtime):
        """No silent normalization: é (composed) != e+◌́ (decomposed)."""
        m = TangoMap(make_runtime(), oid=1)
        composed = "café"
        decomposed = "café"
        m.put(composed, "one")
        m.put(decomposed, "two")
        assert m.get(composed) == "one"
        assert m.get(decomposed) == "two"
        assert m.size() == 2


class TestRoundTripProperties:
    @given(value=_json_values)
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_json_value_round_trips(self, value):
        from repro.corfu import CorfuCluster

        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        rt1 = TangoRuntime(cluster, client_id=1)
        rt2 = TangoRuntime(cluster, client_id=2)
        reg1 = TangoRegister(rt1, oid=1)
        reg2 = TangoRegister(rt2, oid=1)
        reg1.write(value)
        assert reg2.read() == value

    @given(key=st.text(max_size=30), value=_json_values)
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_map_entries_survive_checkpoint_reload(self, key, value):
        from repro.corfu import CorfuCluster

        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        rt1 = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt1, oid=1)
        m.put(key, value)
        m.get(key)
        rt1.checkpoint(1)
        fresh = TangoMap(TangoRuntime(cluster, client_id=2), oid=1)
        assert fresh.get(key) == value


class TestDurableGC:
    def test_gc_persists_across_restart(self, tmp_path):
        """Trims are durable: a restarted deployment stays reclaimed and
        still reconstructs through checkpoints."""
        from repro.corfu.durable import open_durable_cluster
        from repro.errors import TrimmedError
        from repro.tango.directory import TangoDirectory
        from repro.tools import compact_all

        data_dir = str(tmp_path / "log")
        cluster = open_durable_cluster(data_dir, num_sets=3, replication_factor=2)
        rt = TangoRuntime(cluster, client_id=1)
        directory = TangoDirectory(rt)
        m = directory.open(TangoMap, "m")
        for i in range(10):
            m.put(f"k{i}", i)
        result = compact_all(rt, directory)
        assert result["trimmed_below"] > 0

        reopened = open_durable_cluster(data_dir, num_sets=3, replication_factor=2)
        with pytest.raises(TrimmedError):
            reopened.client().read(0)
        rt2 = TangoRuntime(reopened, client_id=2)
        fresh = TangoDirectory(rt2).open(TangoMap, "m")
        assert fresh.size() == 10
