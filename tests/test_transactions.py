"""Tests for Tango transactions: OCC, decision records, failure paths."""

import pytest

from repro.errors import (
    NestedTransactionError,
    NoActiveTransaction,
    RemoteReadError,
    TransactionAborted,
)
from repro.objects import TangoList, TangoMap, TangoRegister
from repro.tango.records import CommitRecord, DecisionRecord, decode_records
from repro.tango.runtime import TangoRuntime


@pytest.fixture
def two_clients(make_runtime):
    """Two runtimes each hosting views of the same two objects."""
    rt1, rt2 = make_runtime(), make_runtime()
    m1, l1 = TangoMap(rt1, oid=1), TangoList(rt1, oid=2)
    m2, l2 = TangoMap(rt2, oid=1), TangoList(rt2, oid=2)
    return rt1, rt2, m1, l1, m2, l2


class TestContextManagement:
    def test_nested_begin_rejected(self, make_runtime):
        rt = make_runtime()
        rt.begin_tx()
        with pytest.raises(NestedTransactionError):
            rt.begin_tx()
        rt.abort_tx()

    def test_end_without_begin_rejected(self, make_runtime):
        rt = make_runtime()
        with pytest.raises(NoActiveTransaction):
            rt.end_tx()

    def test_abort_without_begin_rejected(self, make_runtime):
        rt = make_runtime()
        with pytest.raises(NoActiveTransaction):
            rt.abort_tx()

    def test_abort_discards_buffered_updates(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        rt.begin_tx()
        m.put("a", 1)
        rt.abort_tx()
        assert m.get("a") is None

    def test_empty_transaction_commits(self, make_runtime):
        rt = make_runtime()
        rt.begin_tx()
        assert rt.end_tx() is True

    def test_context_manager_commits(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.get("a")
        with rt.transaction() as tx:
            m.put("a", 1)
        assert tx.committed
        assert m.get("a") == 1

    def test_context_manager_raises_on_abort(self, two_clients):
        rt1, rt2, m1, l1, m2, l2 = two_clients
        m1.get("k")
        with pytest.raises(TransactionAborted):
            with rt1.transaction():
                _ = m1.get("k")
                l1.append("x")
                m2.put("k", "conflict")  # intervening write
        assert not l2.to_list()

    def test_exception_in_body_aborts(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with pytest.raises(RuntimeError):
            with rt.transaction():
                m.put("a", 1)
                raise RuntimeError("boom")
        assert m.get("a") is None
        assert rt._current_tx() is None


class TestCommitAbortSemantics:
    def test_figure4_pattern_commits(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("owner", "me")
        assert m1.get("owner") == "me"
        rt1.begin_tx()
        if m1.get("owner") == "me":
            l1.append("item")
        assert rt1.end_tx() is True
        assert l2.to_list() == ("item",)

    def test_stale_read_aborts(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("owner", "me")
        m1.get("owner")
        rt1.begin_tx()
        _ = m1.get("owner")
        l1.append("item")
        m2.put("owner", "thief")  # lands before the commit record
        assert rt1.end_tx() is False
        assert l2.to_list() == ()

    def test_all_clients_decide_identically(self, two_clients):
        rt1, rt2, m1, l1, m2, l2 = two_clients
        m1.put("k", 0)
        m1.get("k")
        m2.get("k")

        def bump_at(rt, m):
            def body():
                m.put("k", m.get("k") + 1)

            return rt.run_transaction(body)

        bump_at(rt1, m1)
        bump_at(rt2, m2)
        assert m1.get("k") == m2.get("k") == 2

    def test_fine_grained_keys_do_not_conflict(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.get("a")
        rt1.begin_tx()
        _ = m1.get("a")
        m1.put("a", 1)
        m2.put("b", 2)  # disjoint key: no conflict
        assert rt1.end_tx() is True

    def test_same_key_conflicts(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.get("a")
        rt1.begin_tx()
        _ = m1.get("a")
        m1.put("a", 1)
        m2.put("a", 2)
        assert rt1.end_tx() is False

    def test_aborted_tx_leaves_no_trace_in_views(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("a", "original")
        m1.get("a")
        rt1.begin_tx()
        _ = m1.get("a")
        m1.put("a", "doomed")
        l1.append("doomed-item")
        m2.put("a", "conflict")
        assert rt1.end_tx() is False
        assert m1.get("a") == "conflict"
        assert m2.get("a") == "conflict"
        assert l1.to_list() == () == l2.to_list()

    def test_run_transaction_retries_until_commit(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("n", 0)
        m1.get("n")  # sync the view before transacting
        attempts = []

        def body():
            attempts.append(1)
            value = m1.get("n")
            if len(attempts) == 1:
                # Sabotage the first attempt only.
                m2.put("n", value + 100)
            m1.put("n", value + 1)

        rt1.run_transaction(body)
        assert len(attempts) == 2
        assert m1.get("n") == 101

    def test_run_transaction_exhausts_retries(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("n", 0)
        m1.get("n")  # sync the view before transacting

        def hostile():
            value = m1.get("n")
            m2.put("n", value + 100)  # always invalidate
            m1.put("n", value + 1)

        with pytest.raises(TransactionAborted):
            rt1.run_transaction(hostile, retries=2)


class TestFastPaths:
    def test_read_only_tx_appends_nothing(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("a", 1)
        m.get("a")
        appends_before = rt.streams.corfu.appends
        rt.begin_tx()
        _ = m.get("a")
        assert rt.end_tx() is True
        assert rt.streams.corfu.appends == appends_before

    def test_read_only_tx_aborts_on_conflict(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("a", 1)
        m1.get("a")
        rt1.begin_tx()
        _ = m1.get("a")
        m2.put("a", 2)
        assert rt1.end_tx() is False

    def test_stale_read_only_tx_skips_log(self, two_clients):
        """allow_stale: decide locally without playing the log forward."""
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("a", 1)
        m1.get("a")
        rt1.begin_tx()
        _ = m1.get("a")
        m2.put("a", 2)  # invisible to the stale snapshot
        assert rt1.end_tx(allow_stale=True) is True

    def test_write_only_tx_commits_immediately(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        rt.begin_tx()
        m.put("a", 1)
        assert rt.end_tx() is True
        assert m.get("a") == 1

    def test_write_only_tx_single_append(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        before = rt.streams.corfu.appends
        rt.begin_tx()
        m.put("a", 1)
        m.put("b", 2)
        rt.end_tx()
        assert rt.streams.corfu.appends == before + 1  # inlined commit


class TestCommitRecordLayout:
    def test_commit_multiappended_to_read_and_write_streams(self, two_clients):
        """Figure 6: the commit record lands in every involved stream."""
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.put("k", 1)
        m1.get("k")
        rt1.begin_tx()
        _ = m1.get("k")  # read object 1
        l1.append("x")  # write object 2
        rt1.end_tx()
        client = rt1.streams.corfu
        tail = client.check()
        entry = client.read(tail - 1)
        assert set(entry.stream_ids()) == {1, 2}
        records = decode_records(entry.payload)
        assert any(isinstance(r, CommitRecord) for r in records)

    def test_single_log_position_per_tx(self, two_clients):
        rt1, _rt2, m1, l1, m2, l2 = two_clients
        m1.get("k")
        before = rt1.streams.corfu.check()
        rt1.begin_tx()
        _ = m1.get("k")
        l1.append("x")
        rt1.end_tx()
        assert rt1.streams.corfu.check() == before + 1


class TestRemoteAccess:
    def test_remote_write(self, make_runtime):
        """Case A: write an object with no local view."""
        rt1, rt2 = make_runtime(), make_runtime()
        hosted = TangoList(rt1, oid=5)
        producer = TangoList(rt2, oid=5, host_view=False)
        producer.append("from-producer")
        assert hosted.to_list() == ("from-producer",)

    def test_remote_write_in_tx(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        hosted_q = TangoList(rt1, oid=5)
        local_m = TangoMap(rt2, oid=6)
        remote_q = TangoList(rt2, oid=5, host_view=False)
        local_m.put("sent", False)
        local_m.get("sent")

        def send():
            if not local_m.get("sent"):
                remote_q.append("payload")
                local_m.put("sent", True)

        rt2.run_transaction(send)
        assert hosted_q.to_list() == ("payload",)
        assert local_m.get("sent") is True

    def test_remote_read_rejected(self, make_runtime):
        """Case D: transactions cannot read objects with no local view."""
        rt = make_runtime()
        ghost = TangoMap(rt, oid=5, host_view=False)
        rt.begin_tx()
        with pytest.raises(RemoteReadError):
            rt.query_helper(5)
        rt.abort_tx()


class TestDecisionRecords:
    def _marked_map(self, rt, oid):
        class MarkedMap(TangoMap):
            needs_decision_record = True

        return MarkedMap(rt, oid=oid)

    def test_consumer_without_read_set_waits_for_decision(self, make_runtime):
        """Case C: the generating client appends a decision record and
        the consumer applies the writes only after seeing it."""
        rt1, rt2 = make_runtime(), make_runtime()
        private = self._marked_map(rt1, 1)  # only rt1 hosts this
        shared1 = TangoList(rt1, oid=2)
        shared2 = TangoList(rt2, oid=2)  # rt2 hosts the write target only
        private.put("gate", "open")
        private.get("gate")

        def guarded_append():
            if private.get("gate") == "open":
                shared1.append("allowed")

        rt1.run_transaction(guarded_append)
        assert rt1.stats["decisions_published"] == 1
        assert shared2.to_list() == ("allowed",)

    def test_aborted_tx_decision_discards_writes_at_consumer(self, make_runtime):
        rt1, rt2, rt3 = make_runtime(), make_runtime(), make_runtime()
        private1 = self._marked_map(rt1, 1)
        private3 = self._marked_map(rt3, 1)
        shared1 = TangoList(rt1, oid=2)
        shared2 = TangoList(rt2, oid=2)
        private1.put("gate", "open")
        private1.get("gate")
        rt1.begin_tx()
        if private1.get("gate") == "open":
            shared1.append("doomed")
        private3.put("gate", "slammed")  # conflict before commit
        assert rt1.end_tx() is False
        assert shared2.to_list() == ()
        assert shared1.to_list() == ()

    def test_consumer_blocks_stream_until_decision(self, cluster, make_runtime):
        """Entries behind an awaiting commit are deferred, not skipped."""
        rt1, rt2 = make_runtime(), make_runtime()
        private = self._marked_map(rt1, 1)
        shared1 = TangoList(rt1, oid=2)
        shared2 = TangoList(rt2, oid=2)
        private.put("g", 1)
        private.get("g")

        # Build the log manually so that the decision record arrives
        # after further appends to the shared stream:
        rt1.begin_tx()
        _ = private.get("g")
        shared1.append("tx-item")
        commit_offset, record = rt1._append_commit(rt1._current_tx())
        ctx = rt1._current_tx()
        rt1._tls.tx = None
        # Another client appends to the shared stream before the
        # decision exists.
        shared1.append("later-item")
        # Consumer plays: sees the commit (parks), sees later-item
        # (deferred), no decision yet.
        rt2.query_helper(2)
        assert shared2.to_list() == ()
        # Generator decides and publishes.
        rt1._streams.sync_many(rt1.hosted_oids())
        rt1._play_until(commit_offset)
        outcome = rt1._decided[ctx.tx_id]
        rt1._append_decision(ctx.tx_id, outcome, record)
        # Consumer now sees both, in order.
        rt2.query_helper(2)
        assert shared2.to_list() == ("tx-item", "later-item")

    def test_generator_waits_for_predecessor_decision(self, make_runtime):
        """A commit parked on one stream delays decisions of later
        transactions that share it — end_tx keeps playing forward."""
        rt1, rt2 = make_runtime(), make_runtime()
        private1 = self._marked_map(rt1, 1)
        shared1 = TangoList(rt1, oid=3)
        private2 = self._marked_map(rt2, 2)
        shared2 = TangoList(rt2, oid=3)
        private1.put("a", 1)
        private1.get("a")
        private2.put("b", 1)
        private2.get("b")

        def tx1():
            _ = private1.get("a")
            shared1.append("one")

        def tx2():
            _ = private2.get("b")
            shared2.append("two")

        rt1.run_transaction(tx1)
        rt2.run_transaction(tx2)  # must wait for tx1's decision, then decide
        assert shared1.to_list() == ("one", "two")
        assert shared2.to_list() == ("one", "two")


class TestFailureHandling:
    def test_force_abort_orphan(self, make_runtime):
        """A dummy commit record aborts an orphaned transaction."""
        rt1, rt2 = make_runtime(), make_runtime()
        m1 = TangoMap(rt1, oid=1)
        m2 = TangoMap(rt2, oid=1)
        # rt1 "crashes" mid-transaction: speculative update in the log,
        # no commit record. Simulate by appending a speculative record.
        from repro.tango.records import UpdateRecord, encode_records

        orphan_tx = 0xDEAD
        rt1.streams.append(
            encode_records(
                [UpdateRecord(1, b'{"op":"put","k":"x","v":1}', tx_id=orphan_tx)]
            ),
            (1,),
        )
        rt2.force_abort(orphan_tx, oids=(1,))
        assert m2.get("x") is None  # orphan's write never applied
        m2.put("y", 2)
        assert m2.get("y") == 2  # stream is healthy afterwards

    def test_publish_decision_for_crashed_generator(self, make_runtime):
        """A client hosting the read set can publish the decision on
        behalf of a generator that crashed before its decision record."""
        rt1, rt2, rt3 = make_runtime(), make_runtime(), make_runtime()

        class MarkedMap(TangoMap):
            needs_decision_record = True

        private1 = MarkedMap(rt1, 1)
        shared1 = TangoList(rt1, oid=2)
        private1.put("g", 1)
        private1.get("g")
        # rt1 appends commit record then "crashes" before the decision.
        rt1.begin_tx()
        _ = private1.get("g")
        shared1.append("item")
        ctx = rt1._current_tx()
        rt1._tls.tx = None
        commit_offset, record = rt1._append_commit(ctx)
        # rt3 hosts the read set too; it plays, decides, and publishes.
        private3 = MarkedMap(rt3, 1)
        shared3 = TangoList(rt3, oid=2)
        shared3.to_list()  # plays the commit; decides locally
        assert rt3.publish_decision(ctx.tx_id) is True
        # rt2 hosts only the write set; the published decision unblocks it.
        shared2 = TangoList(rt2, oid=2)
        assert shared2.to_list() == ("item",)

    def test_publish_decision_unknown_tx(self, make_runtime):
        rt = make_runtime()
        assert rt.publish_decision(12345) is False


class TestReconstructionFallback:
    def test_consumer_reconstructs_unhosted_read_set(self, make_runtime):
        """Section 4.1 last resort: rebuild read-set versions from the
        log when no decision record is coming."""
        rt1, rt2 = make_runtime(), make_runtime()
        owners1 = TangoMap(rt1, oid=1)  # not marked: no decision records
        items1 = TangoList(rt1, oid=2)
        owners1.put("k", "v")
        owners1.get("k")

        def tx():
            _ = owners1.get("k")
            items1.append("x")

        rt1.run_transaction(tx)
        # rt2 hosts only the list; it must reconstruct object 1's
        # versions to decide the commit record.
        items2 = TangoList(rt2, oid=2)
        assert items2.to_list() == ("x",)

    def test_reconstruction_of_aborted_tx(self, make_runtime):
        rt1, rt2, rt3 = make_runtime(), make_runtime(), make_runtime()
        owners1 = TangoMap(rt1, oid=1)
        items1 = TangoList(rt1, oid=2)
        owners3 = TangoMap(rt3, oid=1)
        owners1.put("k", "v")
        owners1.get("k")
        rt1.begin_tx()
        _ = owners1.get("k")
        items1.append("doomed")
        owners3.put("k", "conflict")
        assert rt1.end_tx() is False
        items2 = TangoList(rt2, oid=2)
        assert items2.to_list() == ()
