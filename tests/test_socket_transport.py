"""SocketTransport + NodeServer against in-process server threads.

Exercises the full TCP RPC path — framing, request-id correlation,
typed error propagation, deadlines, reconnects, node-down detection —
without spawning child processes, so it runs everywhere fast. The
multi-process behaviors (SIGKILL, supervision) live in
``test_wire_cluster.py``.
"""

import threading
import time

import pytest

from repro.corfu.sequencer import Sequencer
from repro.corfu.storage import FlashUnit
from repro.errors import (
    NodeDownError,
    RpcTimeout,
    SealedError,
    UnwrittenError,
)
from repro.net.server import NodeServer
from repro.net.socket import SocketTransport


@pytest.fixture()
def server():
    srv = NodeServer()
    srv.register("flash-0-0", FlashUnit("flash-0-0"))
    srv.register("seq-0", Sequencer("seq-0", k=4))
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def net(server):
    transport = SocketTransport(
        addresses={
            "flash-0-0": server.address,
            "seq-0": server.address,  # one server hosts both nodes
        },
        timeout=2.0,
    )
    yield transport
    transport.close()


def _storage(net, name="flash-0-0"):
    return net.proxy("client-1", name, lambda: None)


def _sequencer(net, name="seq-0"):
    return net.proxy("client-1", name, lambda: None)


class TestCallPath:
    def test_write_then_read_round_trips_bytes(self, net):
        proxy = _storage(net)
        payload = bytes(range(256))
        assert proxy.write(0, payload, 0) is None
        assert proxy.read(0, 0) == payload

    def test_read_many_preserves_int_keys_and_tuples(self, net):
        proxy = _storage(net)
        proxy.write(1, b"one", 0)
        got = proxy.read_many([0, 1], 0)
        assert got == {0: ("unwritten", None), 1: ("ok", b"one")}
        assert all(isinstance(k, int) for k in got)
        assert isinstance(got[1], tuple)

    def test_sequencer_grant_shapes_survive(self, net):
        proxy = _sequencer(net)
        first, backpointers = proxy.increment((1,), epoch=0, count=2)
        assert first == 0
        assert isinstance(backpointers, dict)
        assert isinstance(backpointers[1], tuple)
        tail, tails = proxy.query((1,), epoch=0)
        assert tail == 2
        assert tails[1][:2] == (1, 0)

    def test_typed_errors_propagate_with_attributes(self, net):
        proxy = _storage(net)
        with pytest.raises(UnwrittenError) as excinfo:
            proxy.read(42, 0)
        assert excinfo.value.offset == 42
        proxy.seal(3)
        with pytest.raises(SealedError) as excinfo:
            proxy.write(0, b"x", 0)
        assert excinfo.value.epoch == 3

    def test_delivery_is_counted_per_endpoint(self, net):
        proxy = _storage(net)
        proxy.write(0, b"x", 0)
        proxy.read(0, 0)
        stats = net.endpoint_stats()["flash-0-0"]
        assert stats["rpcs"] == 2
        assert stats["timeouts"] == 0

    def test_connections_are_pooled_and_reused(self, net, server):
        proxy = _storage(net)
        for offset in range(8):
            proxy.write(offset, b"x", 0)
        # Sequential calls reuse one pooled connection rather than
        # opening one socket per RPC.
        with server._conn_lock:
            assert len(server._conns) <= 2


class TestFailureModes:
    def test_unknown_target_is_node_down(self, net):
        with pytest.raises(NodeDownError):
            _storage(net, "flash-9-9").read(0, 0)

    def test_unregistered_node_on_live_server_is_node_down(self, net, server):
        net.set_address("ghost", *server.address)
        with pytest.raises(NodeDownError):
            net.proxy("client-1", "ghost", lambda: None).read(0, 0)

    def test_op_outside_allowlist_is_rejected(self, net):
        # A FlashUnit serves STORAGE_OPS only: its other public
        # methods (e.g. crash) are not reachable over the wire.
        with pytest.raises(ValueError, match="not served"):
            _storage(net).crash()

    def test_slow_op_times_out_and_connection_recovers(self, server):
        class Sluggish:
            def nap(self, seconds):
                time.sleep(seconds)
                return "rested"

        server.register("slow-0", Sluggish())
        net = SocketTransport(
            addresses={"slow-0": server.address}, timeout=0.3
        )
        try:
            proxy = net.proxy("client-1", "slow-0", lambda: None)
            with pytest.raises(RpcTimeout):
                proxy.nap(1.5)
            assert net.endpoint_stats()["slow-0"]["timeouts"] == 1
            # The timed-out socket was closed, a fresh call dials anew
            # and must not see the stale response.
            assert proxy.nap(0.01) == "rested"
        finally:
            net.close()

    def test_stopped_server_is_node_down(self, server):
        net = SocketTransport(
            addresses={"flash-0-0": server.address}, timeout=1.0
        )
        try:
            proxy = net.proxy("client-1", "flash-0-0", lambda: None)
            proxy.write(0, b"x", 0)
            server.stop()
            with pytest.raises(NodeDownError):
                proxy.read(0, 0)
        finally:
            net.close()

    def test_restart_on_same_port_reconnects(self, server):
        host, port = server.address
        net = SocketTransport(
            addresses={"flash-0-0": (host, port)}, timeout=2.0
        )
        try:
            proxy = net.proxy("client-1", "flash-0-0", lambda: None)
            proxy.write(0, b"before", 0)
            server.stop()
            replacement = NodeServer(host=host, port=port)
            replacement.register("flash-0-0", FlashUnit("flash-0-0"))
            replacement.start()
            try:
                # The pooled connection is dead. If the send itself
                # fails the transport redials transparently; if the
                # send was buffered before the reset, the call is
                # ambiguous and honestly reads as a timeout. Either
                # way the *next* call must reach the new process
                # (flash contents are fresh — restart, not recovery —
                # so the offset reads unwritten).
                try:
                    with pytest.raises(UnwrittenError):
                        proxy.read(0, 0)
                except RpcTimeout:
                    pass
                with pytest.raises(UnwrittenError):
                    proxy.read(0, 0)
                proxy.write(1, b"after", 0)
                assert proxy.read(1, 0) == b"after"
            finally:
                replacement.stop()
        finally:
            net.close()

    def test_deadline_uses_wall_clock(self, net):
        start = time.monotonic()
        with pytest.raises(NodeDownError):
            # Nothing listens on this port: refused connections resolve
            # quickly as node-down rather than burning the full deadline.
            net.set_address("dead-0", "127.0.0.1", 1)
            net.proxy("client-1", "dead-0", lambda: None).read(0, 0)
        assert time.monotonic() - start < 2.0


class TestServerLoop:
    def test_concurrent_clients_share_one_server(self, server):
        errors = []

        def hammer(worker):
            net = SocketTransport(
                addresses={"flash-0-0": server.address}, timeout=5.0
            )
            try:
                proxy = net.proxy(f"client-{worker}", "flash-0-0", lambda: None)
                base = worker * 100
                for i in range(25):
                    proxy.write(base + i, b"w%d" % worker, 0)
                for i in range(25):
                    assert proxy.read(base + i, 0) == b"w%d" % worker
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)
            finally:
                net.close()

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []

    def test_ping_reports_name_kind_pid(self, net):
        import os

        info = _storage(net).ping()
        assert info["name"] == "flash-0-0"
        assert info["kind"] == "FlashUnit"
        assert info["pid"] == os.getpid()  # in-process server thread

    def test_shutdown_rpc_stops_the_server(self, server, net):
        assert _storage(net).shutdown() is True
        assert server.wait(timeout=5.0)

    def test_garbage_frames_do_not_kill_the_server(self, server, net):
        import socket as socket_mod

        with socket_mod.create_connection(server.address, timeout=2.0) as raw:
            raw.sendall(b"\x05\x00\x00\x00nope!")
        # The poisoned connection is dropped; real clients are unharmed.
        assert _storage(net).is_written(0, 0) is False
