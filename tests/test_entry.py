"""Tests for log entries and stream headers (paper section 5 formats)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corfu.entry import (
    DEFAULT_K,
    MAX_STREAM_ID,
    NO_BACKPOINTER,
    LogEntry,
    StreamHeader,
    header_bytes,
    make_header,
    max_payload_bytes,
)
from repro.errors import TooManyStreamsError


class TestStreamHeader:
    def test_relative_round_trip(self):
        header = StreamHeader(7, (95, 90, 80, NO_BACKPOINTER))
        buf = bytearray()
        header.encode(buf, own_offset=100, k=4)
        decoded, off = StreamHeader.decode(bytes(buf), 0, own_offset=100, k=4)
        assert decoded == header
        assert off == len(buf) == header_bytes(4)

    def test_absolute_round_trip(self):
        header = StreamHeader(7, (1_000_000,), is_absolute=True)
        buf = bytearray()
        header.encode(buf, own_offset=2_000_000, k=4)
        decoded, _ = StreamHeader.decode(bytes(buf), 0, own_offset=2_000_000, k=4)
        assert decoded == header

    def test_header_size_is_12_bytes_with_k4(self):
        """Paper: "If K = 4 ... the header uses 12 bytes"."""
        assert header_bytes(4) == 12
        header = StreamHeader(1, (5, 4, 3, 2))
        buf = bytearray()
        header.encode(buf, own_offset=6, k=4)
        assert len(buf) == 12

    def test_absolute_header_same_size(self):
        header = StreamHeader(1, (5,), is_absolute=True)
        buf = bytearray()
        header.encode(buf, own_offset=6, k=4)
        assert len(buf) == 12  # 4 (id+flag) + 1 * 8 (absolute pointer)

    def test_stream_id_31_bits(self):
        StreamHeader(MAX_STREAM_ID, (NO_BACKPOINTER,) * 4)
        with pytest.raises(ValueError):
            StreamHeader(MAX_STREAM_ID + 1, ())
        with pytest.raises(ValueError):
            StreamHeader(-1, ())

    def test_relative_delta_overflow_rejected_at_encode(self):
        header = StreamHeader(1, (0,))  # delta of 100000 from offset 100000
        buf = bytearray()
        with pytest.raises(ValueError):
            header.encode(buf, own_offset=100_000, k=4)

    def test_previous_offset(self):
        assert StreamHeader(1, (42, 41)).previous_offset() == 42
        assert StreamHeader(1, ()).previous_offset() == NO_BACKPOINTER


class TestMakeHeader:
    def test_empty_stream(self):
        header = make_header(3, (), own_offset=10, k=4)
        assert not header.is_absolute
        assert header.backpointers == (NO_BACKPOINTER,) * 4

    def test_relative_when_deltas_fit(self):
        header = make_header(3, (99, 98, 97, 96), own_offset=100, k=4)
        assert not header.is_absolute
        assert header.backpointers == (99, 98, 97, 96)

    def test_individual_overflow_degrades_to_none(self):
        # Oldest pointer is 70000 back — beyond the 64K relative range.
        header = make_header(3, (99_999, 30_000), own_offset=100_000, k=4)
        assert not header.is_absolute
        assert header.backpointers == (99_999, NO_BACKPOINTER, NO_BACKPOINTER, NO_BACKPOINTER)

    def test_all_overflow_switches_to_absolute(self):
        """Paper: "To handle the case where all K deltas overflow, the
        header uses an alternative format"."""
        header = make_header(3, (10, 9, 8, 7), own_offset=1_000_000, k=4)
        assert header.is_absolute
        assert header.backpointers == (10,)  # K/4 pointers

    def test_round_trip_absolute_through_entry(self):
        header = make_header(3, (10,), own_offset=1_000_000, k=4)
        entry = LogEntry(headers=(header,), payload=b"x")
        raw = entry.encode(1_000_000)
        decoded = LogEntry.decode(raw, 1_000_000)
        assert decoded.headers[0].backpointers == (10,)
        assert decoded.headers[0].is_absolute


class TestLogEntry:
    def test_round_trip(self):
        headers = (
            make_header(1, (5, 4), 10, 4),
            make_header(2, (9,), 10, 4),
        )
        entry = LogEntry(headers=headers, payload=b"payload bytes")
        raw = entry.encode(10)
        decoded = LogEntry.decode(raw, 10)
        assert decoded.payload == b"payload bytes"
        assert decoded.stream_ids() == (1, 2)
        assert not decoded.is_junk

    def test_junk_entry(self):
        raw = LogEntry.junk().encode(5)
        decoded = LogEntry.decode(raw, 5)
        assert decoded.is_junk
        assert decoded.headers == ()
        assert decoded.payload == b""

    def test_header_for(self):
        entry = LogEntry(headers=(make_header(1, (), 0, 4),))
        assert entry.header_for(1) is not None
        assert entry.header_for(2) is None

    def test_too_many_streams(self):
        headers = tuple(make_header(i, (), 0, 4) for i in range(17))
        entry = LogEntry(headers=headers)
        with pytest.raises(TooManyStreamsError):
            entry.encode(0, max_streams=16)

    def test_max_payload_accounting(self):
        """An entry at the payload cap must encode within entry_size."""
        cap = max_payload_bytes(4096, max_streams=16, k=4)
        headers = tuple(make_header(i, (), 100, 4) for i in range(16))
        entry = LogEntry(headers=headers, payload=b"x" * cap)
        assert len(entry.encode(100)) <= 4096

    @given(
        payload=st.binary(max_size=512),
        offsets=st.lists(
            st.integers(min_value=0, max_value=999), max_size=4, unique=True
        ),
        own=st.integers(min_value=1000, max_value=2000),
    )
    def test_round_trip_property(self, payload, offsets, own):
        offsets = sorted(offsets, reverse=True)
        header = make_header(5, tuple(offsets), own, 4)
        entry = LogEntry(headers=(header,), payload=payload)
        decoded = LogEntry.decode(entry.encode(own), own)
        assert decoded.payload == payload
        back = [p for p in decoded.headers[0].backpointers if p != NO_BACKPOINTER]
        assert back == offsets[: len(back)]
