"""Tests for reconfiguration: seal-and-advance, failover, recovery."""

import pytest

from repro.corfu import CorfuCluster, reconfig
from repro.errors import SealedError


class TestSeal:
    def test_seal_cluster_fences_old_epoch(self, cluster):
        client = cluster.client()
        client.append(b"x")
        old = cluster.projection
        reconfig.seal_cluster(cluster, old, old.epoch + 1)
        unit = cluster.storage(old.replica_sets[0].head)
        with pytest.raises(SealedError):
            unit.write(99, b"stale", epoch=old.epoch)

    def test_seal_tolerates_dead_nodes(self, cluster):
        old = cluster.projection
        cluster.crash_storage(old.replica_sets[0].head)
        reconfig.seal_cluster(cluster, old, old.epoch + 1)  # must not raise


class TestEjectStorageNode:
    def test_eject_installs_new_projection(self, cluster):
        victim = cluster.projection.replica_sets[0].head
        new = reconfig.eject_storage_node(cluster, victim)
        assert new.epoch == 1
        assert victim not in new.all_nodes()
        assert cluster.projection.epoch == 1

    def test_eject_is_idempotent(self, cluster):
        victim = cluster.projection.replica_sets[0].head
        reconfig.eject_storage_node(cluster, victim)
        again = reconfig.eject_storage_node(cluster, victim)
        assert again.epoch == 1  # no extra epoch burned

    def test_concurrent_ejections_converge(self, cluster):
        """Two clients ejecting different nodes both make progress."""
        v1 = cluster.projection.replica_sets[0].head
        v2 = cluster.projection.replica_sets[1].head
        reconfig.eject_storage_node(cluster, v1)
        new = reconfig.eject_storage_node(cluster, v2)
        assert v1 not in new.all_nodes()
        assert v2 not in new.all_nodes()


class TestSlowCheck:
    def test_empty_log(self, cluster):
        assert reconfig.slow_check_tail(cluster, cluster.projection) == 0

    def test_matches_sequencer(self, cluster):
        client = cluster.client()
        for i in range(11):
            client.append(b"e%d" % i)
        assert reconfig.slow_check_tail(cluster, cluster.projection) == 11

    def test_with_one_dead_replica(self, cluster):
        client = cluster.client()
        for i in range(6):
            client.append(b"e%d" % i)
        cluster.storage(cluster.projection.replica_sets[0].head).crash()
        assert reconfig.slow_check_tail(cluster, cluster.projection) == 6


class TestSequencerFailover:
    def test_failover_recovers_tail(self, cluster):
        client = cluster.client()
        for i in range(8):
            client.append(b"e%d" % i)
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        assert new.sequencer != "seq-0"
        tail, _ = cluster.sequencer(new.sequencer).query(epoch=new.epoch)
        assert tail == 8

    def test_failover_recovers_backpointers(self, cluster):
        client = cluster.client()
        for i in range(12):
            client.append(b"e%d" % i, stream_ids=(i % 3,))
        expected = {}
        seq = cluster.sequencer()
        for sid in range(3):
            expected[sid] = seq.query(stream_ids=(sid,))[1][sid]
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        recovered = cluster.sequencer(new.sequencer)
        for sid in range(3):
            got = recovered.query(stream_ids=(sid,), epoch=new.epoch)[1][sid]
            assert tuple(got) == tuple(expected[sid])

    def test_failover_skips_holes(self, cluster):
        client = cluster.client()
        client.append(b"a", stream_ids=(1,))
        cluster.sequencer().increment(stream_ids=(1,))  # hole at 1
        client.append(b"b", stream_ids=(1,))  # offset 2
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        recovered = cluster.sequencer(new.sequencer)
        _, streams = recovered.query(stream_ids=(1,), epoch=new.epoch)
        # The hole at 1 contributes nothing; entries 2 and 0 survive.
        assert tuple(streams[1]) == (2, 0)

    def test_appends_work_after_failover(self, cluster):
        client = cluster.client()
        client.append(b"before", stream_ids=(1,))
        cluster.crash_sequencer()
        offset = client.append(b"after", stream_ids=(1,))
        assert offset == 1
        entry = client.read(1)
        assert entry.header_for(1).previous_offset() == 0

    def test_stale_clients_forced_to_new_sequencer(self, cluster):
        """Paper: "Any client attempting to write to a storage node
        after obtaining an offset from the old sequencer will receive an
        error message, forcing it to update its view"."""
        c1, c2 = cluster.client(), cluster.client()
        c1.append(b"x")
        cluster.crash_sequencer()
        c1.append(b"drives-failover")
        # c2 still holds epoch-0 projection; its append must succeed via
        # refresh rather than talking to the dead sequencer.
        offset = c2.append(b"from-stale-client")
        assert c2.read(offset).payload == b"from-stale-client"

    def test_failover_with_trimmed_prefix(self, cluster):
        client = cluster.client()
        for i in range(9):
            client.append(b"e%d" % i, stream_ids=(1,))
        client.trim_prefix(6)
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        tail, streams = cluster.sequencer(new.sequencer).query(
            stream_ids=(1,), epoch=new.epoch
        )
        assert tail == 9
        assert tuple(streams[1]) == (8, 7, 6)


class TestTrimDuringReconfig:
    def test_trim_with_stale_projection_refreshes_and_succeeds(self, cluster):
        """A trim racing a reconfiguration must not leak SealedError to
        the application (the GC driver has no projection to refresh)."""
        from repro.errors import TrimmedError

        client = cluster.client()
        offsets = [client.append(b"e%d" % i) for i in range(6)]
        # Reconfigure behind the client's back: its projection is stale.
        reconfig.replace_sequencer(cluster)
        client.trim(offsets[0])
        with pytest.raises(TrimmedError):
            client.read(offsets[0])
        # trim_prefix takes the same retry path.
        reconfig.eject_storage_node(
            cluster, sorted(cluster.projection.all_nodes())[0]
        )
        client.trim_prefix(4)
        with pytest.raises(TrimmedError):
            client.read(3)
        assert client.read(5).payload == b"e5"

    def test_trim_races_a_live_reconfiguration_thread(self, cluster):
        import threading

        client = cluster.client()
        for i in range(30):
            client.append(b"e%d" % i)
        errors = []
        started = threading.Barrier(2)

        def reconfigure():
            try:
                started.wait()
                for _ in range(5):
                    reconfig.replace_sequencer(cluster)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def trimmer():
            try:
                started.wait()
                for offset in range(25):
                    client.trim(offset)
                client.trim_prefix(25)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=reconfigure),
            threading.Thread(target=trimmer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cluster.client().read(29).payload == b"e29"
