"""Tests for group-commit update batching (section 6: batch size 4)."""

import threading

import pytest

from repro.corfu import CorfuCluster
from repro.errors import ReproError, RpcTimeout, TangoError
from repro.net import FaultyTransport
from repro.net.transport import LoopbackTransport
from repro.objects import TangoList, TangoMap
from repro.tango.object import TangoObject
from repro.tango.records import UpdateRecord, decode_records
from repro.tango.runtime import TangoRuntime


class TestBatchScope:
    def test_batch_coalesces_appends(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        before = rt.streams.corfu.appends
        with rt.batch(size=4):
            for i in range(8):
                m.put(f"k{i}", i)
        assert rt.streams.corfu.appends == before + 2  # 8 records / 4
        assert m.size() == 8

    def test_partial_batch_flushes_on_exit(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        before = rt.streams.corfu.appends
        with rt.batch(size=4):
            m.put("a", 1)
            m.put("b", 2)
        assert rt.streams.corfu.appends == before + 1
        assert m.get("a") == 1

    def test_records_preserve_order(self, make_runtime):
        rt = make_runtime()
        lst = TangoList(rt, oid=1)
        with rt.batch(size=8):
            for i in range(6):
                lst.append(i)
        assert lst.to_list() == (0, 1, 2, 3, 4, 5)

    def test_batched_entry_multiappended_to_all_streams(self, make_runtime):
        """A mixed batch lands in every involved object's stream."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        lst = TangoList(rt, oid=2)
        with rt.batch(size=4):
            m.put("k", 1)
            lst.append("x")
        entry = rt.streams.corfu.read(rt.streams.corfu.check() - 1)
        assert set(entry.stream_ids()) == {1, 2}
        records = decode_records(entry.payload)
        assert len(records) == 2

    def test_read_your_writes_inside_batch(self, make_runtime):
        """An accessor inside the scope flushes pending updates first."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with rt.batch(size=100):
            m.put("k", 42)
            assert m.get("k") == 42  # flushed by the read

    def test_other_clients_see_batched_updates(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        with rt1.batch(size=4):
            for i in range(4):
                m1.put(f"k{i}", i)
        assert m2.size() == 4

    def test_nested_batch_rejected(self, make_runtime):
        rt = make_runtime()
        with rt.batch():
            with pytest.raises(TangoError):
                with rt.batch():
                    pass

    def test_exception_discards_unflushed_records(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with pytest.raises(RuntimeError):
            with rt.batch(size=100):
                m.put("doomed", 1)
                raise RuntimeError("boom")
        assert m.get("doomed") is None

    def test_exception_keeps_already_flushed_records(self, make_runtime):
        """Flushed entries are in the log; only the buffer is dropped."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with pytest.raises(RuntimeError):
            with rt.batch(size=1):  # every update flushes immediately
                m.put("durable", 1)
                raise RuntimeError("boom")
        assert m.get("durable") == 1

    def test_oversized_batch_falls_back_per_record(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        big = "x" * 1500
        with rt.batch(size=8):
            for i in range(8):
                m.put(f"k{i}", big)  # 8 x ~1.5KB > one 4KB entry
        assert m.size() == 8

    def test_transactions_unaffected_by_batch_scope(self, make_runtime):
        """TX buffering takes precedence over batch buffering."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("k", 0)
        m.get("k")
        with rt.batch(size=4):
            committed = rt.run_transaction(lambda: m.put("k", m.get("k") + 1))
        assert m.get("k") == 1

    def test_discard_on_error_no_partial_entry_in_log(self, make_runtime):
        """API.md's _BatchScope error semantics: a body exception
        discards the buffer — NO entry, partial or otherwise, reaches
        the log for the unflushed records."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        corfu = rt.streams.corfu
        tail_before = corfu.check()
        with pytest.raises(RuntimeError):
            with rt.batch(size=100):
                m.put("doomed-1", 1)
                m.put("doomed-2", 2)
                raise RuntimeError("boom")
        assert corfu.check() == tail_before
        assert m.get("doomed-1") is None
        assert m.get("doomed-2") is None


class _TrippingTransport(LoopbackTransport):
    """Delivers normally until armed; then a budget of sequencer grants
    remains and every further ``increment`` times out (simulating the
    append path exhausting retries mid-flush)."""

    def __init__(self) -> None:
        super().__init__()
        self._allow = None  # None = disarmed

    def arm(self, allow: int) -> None:
        self._allow = allow

    def disarm(self) -> None:
        self._allow = None

    def call(self, source, target, op, resolve, args, kwargs):
        if op == "increment" and self._allow is not None:
            if self._allow <= 0:
                self.stats_for(target).note_timeout()
                raise RpcTimeout(target, op)
            self._allow -= 1
        return super().call(source, target, op, resolve, args, kwargs)


class TestFlushExceptionSafety:
    def test_mid_flush_failure_keeps_unsent_records(self):
        """Regression for the lossy flush: the old code emptied the
        buffer before appending, so an append failure mid-flush dropped
        every record that had not been sent yet. The fixed flush trims
        the buffer only after each append returns: the failed run stays
        buffered and the next flush delivers it."""
        transport = _TrippingTransport()
        cluster = CorfuCluster(
            num_sets=1, replication_factor=2, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        m1, m2 = TangoMap(rt, oid=1), TangoMap(rt, oid=2)
        big = "x" * 3000  # two ~3KB records cannot share one 4KB entry
        with rt.batch(size=100):
            m1.put("a", big)
            m2.put("b", big)
            # The oversized flush splits into one run per oid. Allow
            # run A's sequencer grant, then time out every later grant:
            # run B's append exhausts its retries mid-flush.
            transport.arm(allow=1)
            with pytest.raises(ReproError):
                m1.get("a")  # read-your-writes flush raises on run B
            transport.disarm()
            # Run A landed; run B is still buffered, not lost.
        # Clean scope exit retried the buffered run B.
        assert m1.get("a") == big
        assert m2.get("b") == big

    def test_mid_flush_failure_preserves_record_order(self):
        transport = _TrippingTransport()
        cluster = CorfuCluster(
            num_sets=1, replication_factor=2, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        l1, l2 = TangoList(rt, oid=1), TangoList(rt, oid=2)
        big = "x" * 3000
        with rt.batch(size=100):
            l1.append(big + "1")
            l2.append(big + "2")
            l2.append(big + "3")
            transport.arm(allow=1)
            with pytest.raises(ReproError):
                l1.to_list()
            transport.disarm()
        assert l1.to_list() == (big + "1",)
        assert l2.to_list() == (big + "2", big + "3")


class TestAdaptiveGroupCommit:
    def test_default_scope_starts_at_paper_size(self, make_runtime):
        rt = make_runtime()
        assert rt._batch_policy.size == 4

    def test_quiet_full_batch_grows(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with rt.batch():
            for i in range(4):
                m.put(f"k{i}", i)  # full batch, small payload, quiet net
        assert rt._batch_policy.size == 8
        with rt.batch():
            for i in range(8):
                m.put(f"g{i}", i)
        assert rt._batch_policy.size == 16

    def test_payload_pressure_shrinks(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        big = "x" * 1500
        with rt.batch():
            for i in range(4):
                m.put(f"k{i}", big)  # 4 x ~1.5KB > one 4KB entry: split
        assert rt._batch_policy.size == 2
        assert m.size() == 4

    def test_inflight_pressure_shrinks(self):
        """Retries/timeouts observed during the flush halve the batch."""
        transport = FaultyTransport(seed=0, drop_response=0.5)
        cluster = CorfuCluster(
            num_sets=1, replication_factor=2, transport=transport
        )
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        start = rt._batch_policy.size
        with rt.batch():
            for i in range(start):
                m.put(f"k{i}", i)
        assert rt._batch_policy.size < start
        transport.calm()
        assert m.size() == start

    def test_fixed_size_scope_does_not_adapt(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        before = rt._batch_policy.size
        big = "x" * 1500
        with rt.batch(size=4):
            for i in range(4):
                m.put(f"k{i}", big)  # split, but the scope is pinned
        assert rt._batch_policy.size == before

    def test_policy_shared_across_scopes(self, make_runtime):
        """Adaptation carries from one scope to the next (one policy
        per runtime), and stays within [FLOOR, CEIL]."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        big = "x" * 3500
        for round_ in range(5):
            with rt.batch():
                m.put("a", big)
                m.put("b", big)  # splits every time
        assert rt._batch_policy.size == 1  # halved to the floor, not 0


class _NoCheckpointObject(TangoObject):
    def __init__(self, runtime, oid):
        super().__init__(runtime, oid)
        self.values = []

    def apply(self, payload: bytes, offset: int) -> None:
        self.values.append(payload)

    def add(self, payload: bytes) -> None:
        self._update(payload)


class TestSpeculativeBatch:
    def test_accessor_reads_speculation_without_flush(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("k", 0)
        m.get("k")
        appends_before = rt.streams.corfu.appends
        with rt.batch(size=100, speculative=True):
            m.put("k", 1)
            assert m.get("k") == 1  # local speculative view, no log I/O
            assert rt.streams.corfu.appends == appends_before
        assert m.get("k") == 1  # committed at scope exit
        assert rt.stats["speculative_commits"] == 1
        assert rt.stats["speculative_rollbacks"] == 0

    def test_body_exception_rolls_back_speculation(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("k", 0)
        m.get("k")
        with pytest.raises(RuntimeError):
            with rt.batch(speculative=True):
                m.put("k", 99)
                assert m.get("k") == 99
                raise RuntimeError("boom")
        assert m.get("k") == 0  # view restored to the log's history

    def test_conflict_rolls_back_and_replays(self, make_runtime):
        """A foreign entry landing in a speculated stream before our
        flush invalidates the speculation: the view is rolled back and
        replayed from the log, so both clients' updates apply in log
        order."""
        rt1, rt2 = make_runtime(), make_runtime()
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        m1.put("base", 1)
        m1.get("base")
        with rt1.batch(size=100, speculative=True):
            m1.put("mine", 2)
            m2.put("theirs", 3)  # foreign write, ahead of our flush
            assert m1.get("mine") == 2
        assert rt1.stats["speculative_rollbacks"] == 1
        assert m1.get("mine") == 2
        assert m1.get("theirs") == 3

    def test_clean_speculation_commits_without_rollback(self, make_runtime):
        rt = make_runtime()
        lst = TangoList(rt, oid=1)
        lst.append("pre")
        lst.to_list()
        with rt.batch(size=100, speculative=True):
            for i in range(5):
                lst.append(f"s{i}")
            assert lst.to_list() == ("pre", "s0", "s1", "s2", "s3", "s4")
        assert lst.to_list() == ("pre", "s0", "s1", "s2", "s3", "s4")
        assert rt.stats["speculative_rollbacks"] == 0
        assert rt.stats["speculative_commits"] == 1

    def test_other_clients_see_committed_speculation(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        with rt1.batch(size=100, speculative=True):
            m1.put("k", 7)
        assert m2.get("k") == 7

    def test_tx_inside_speculative_scope_rejected(self, make_runtime):
        rt = make_runtime()
        with rt.batch(speculative=True):
            with pytest.raises(TangoError):
                rt.begin_tx()

    def test_concurrent_speculative_scopes_rejected(self, make_runtime):
        rt = make_runtime()
        errors = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with rt.batch(speculative=True):
                entered.set()
                release.wait(5)

        t = threading.Thread(target=holder)
        t.start()
        try:
            assert entered.wait(5)
            with pytest.raises(TangoError):
                with rt.batch(speculative=True):
                    pass  # pragma: no cover - never entered
        finally:
            release.set()
            t.join()
        assert not errors

    def test_object_without_checkpoints_rejected(self, make_runtime):
        rt = make_runtime()
        obj = _NoCheckpointObject(rt, oid=9)
        with pytest.raises(RuntimeError):
            with rt.batch(speculative=True):
                with pytest.raises(TangoError):
                    obj.add(b"x")
                raise RuntimeError("unwind")  # scope discards cleanly
