"""Tests for group-commit update batching (section 6: batch size 4)."""

import pytest

from repro.errors import TangoError
from repro.objects import TangoList, TangoMap
from repro.tango.records import UpdateRecord, decode_records


class TestBatchScope:
    def test_batch_coalesces_appends(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        before = rt.streams.corfu.appends
        with rt.batch(size=4):
            for i in range(8):
                m.put(f"k{i}", i)
        assert rt.streams.corfu.appends == before + 2  # 8 records / 4
        assert m.size() == 8

    def test_partial_batch_flushes_on_exit(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        before = rt.streams.corfu.appends
        with rt.batch(size=4):
            m.put("a", 1)
            m.put("b", 2)
        assert rt.streams.corfu.appends == before + 1
        assert m.get("a") == 1

    def test_records_preserve_order(self, make_runtime):
        rt = make_runtime()
        lst = TangoList(rt, oid=1)
        with rt.batch(size=8):
            for i in range(6):
                lst.append(i)
        assert lst.to_list() == (0, 1, 2, 3, 4, 5)

    def test_batched_entry_multiappended_to_all_streams(self, make_runtime):
        """A mixed batch lands in every involved object's stream."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        lst = TangoList(rt, oid=2)
        with rt.batch(size=4):
            m.put("k", 1)
            lst.append("x")
        entry = rt.streams.corfu.read(rt.streams.corfu.check() - 1)
        assert set(entry.stream_ids()) == {1, 2}
        records = decode_records(entry.payload)
        assert len(records) == 2

    def test_read_your_writes_inside_batch(self, make_runtime):
        """An accessor inside the scope flushes pending updates first."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with rt.batch(size=100):
            m.put("k", 42)
            assert m.get("k") == 42  # flushed by the read

    def test_other_clients_see_batched_updates(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        with rt1.batch(size=4):
            for i in range(4):
                m1.put(f"k{i}", i)
        assert m2.size() == 4

    def test_nested_batch_rejected(self, make_runtime):
        rt = make_runtime()
        with rt.batch():
            with pytest.raises(TangoError):
                with rt.batch():
                    pass

    def test_exception_discards_unflushed_records(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with pytest.raises(RuntimeError):
            with rt.batch(size=100):
                m.put("doomed", 1)
                raise RuntimeError("boom")
        assert m.get("doomed") is None

    def test_exception_keeps_already_flushed_records(self, make_runtime):
        """Flushed entries are in the log; only the buffer is dropped."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        with pytest.raises(RuntimeError):
            with rt.batch(size=1):  # every update flushes immediately
                m.put("durable", 1)
                raise RuntimeError("boom")
        assert m.get("durable") == 1

    def test_oversized_batch_falls_back_per_record(self, make_runtime):
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        big = "x" * 1500
        with rt.batch(size=8):
            for i in range(8):
                m.put(f"k{i}", big)  # 8 x ~1.5KB > one 4KB entry
        assert m.size() == 8

    def test_transactions_unaffected_by_batch_scope(self, make_runtime):
        """TX buffering takes precedence over batch buffering."""
        rt = make_runtime()
        m = TangoMap(rt, oid=1)
        m.put("k", 0)
        m.get("k")
        with rt.batch(size=4):
            committed = rt.run_transaction(lambda: m.put("k", m.get("k") + 1))
        assert m.get("k") == 1
