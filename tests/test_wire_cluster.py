"""End-to-end multi-process suite: real processes, real TCP, real kills.

The acceptance test for the wire deployment: a 3-node + sequencer
cluster runs as separate OS processes under the supervisor, the whole
client stack (append/read, batch paths, stream sync) works unchanged
over :class:`SocketTransport`, a SIGKILLed storage node fails over via
the standard reconfiguration protocol with appends staying exactly
once, and teardown leaves no processes behind.

Skip-marked on platforms without POSIX signals (the supervisor drives
children with SIGTERM/SIGKILL).
"""

import os
import signal
import threading

import pytest

from repro.errors import NodeDownError, TrimmedError, UnwrittenError
from repro.proc import RemoteCluster, Supervisor, cluster_specs
from repro.streams import StreamClient

pytestmark = pytest.mark.skipif(
    os.name != "posix" or not hasattr(signal, "SIGKILL"),
    reason="requires POSIX process control (SIGKILL)",
)


# -- shared happy-path deployment (module-scoped: spawn once) ---------------


@pytest.fixture(scope="module")
def fleet():
    supervisor = Supervisor(cluster_specs(1, 3)).start()
    yield supervisor
    supervisor.stop()


@pytest.fixture()
def cluster(fleet):
    cluster = RemoteCluster(
        fleet.addresses(), num_sets=1, replication_factor=3, timeout=5.0
    )
    yield cluster
    cluster.close()


def _read_payloads(client, offsets):
    return [client.read(offset).payload for offset in offsets]


class TestHappyPath:
    def test_nodes_are_separate_processes(self, fleet):
        pids = {name: fleet.ping(name)["pid"] for name in fleet.addresses()}
        assert len(pids) == 4  # 3 storage + sequencer
        assert len(set(pids.values())) == 4  # four distinct processes
        assert os.getpid() not in pids.values()  # none of them is us

    def test_append_read_over_the_wire(self, cluster):
        client = cluster.client()
        offsets = [client.append(b"wire-%d" % i, (1,)) for i in range(10)]
        assert _read_payloads(client, offsets) == [
            b"wire-%d" % i for i in range(10)
        ]

    def test_append_batch_and_read_many(self, cluster):
        client = cluster.client()
        payloads = [b"batch-%d" % i for i in range(16)]
        offsets = client.append_batch(payloads, (2,))
        assert offsets == sorted(offsets)
        outcomes = client.read_many(offsets)
        assert [outcomes[o].payload for o in offsets] == payloads
        # Batching is visible on the wire too: the chain tail served
        # the batch in read_many RPCs, not one RPC per offset.
        stats = client.net_stats()
        assert any(s["batch_rpcs"] > 0 for s in stats.values())

    def test_read_many_returns_error_instances_for_holes(self, cluster):
        client = cluster.client()
        offset = client.append(b"present", (3,))
        tail = client.check(fast=True)
        outcomes = client.read_many([offset, tail + 5])
        assert outcomes[offset].payload == b"present"
        # The hole crossed the wire as a typed error instance, exactly
        # like loopback.
        assert isinstance(outcomes[tail + 5], UnwrittenError)
        assert outcomes[tail + 5].offset == tail + 5

    def test_stream_append_and_sync(self, cluster):
        sclient = StreamClient(cluster.client())
        sclient.open_stream(7)
        appended = [sclient.append(b"s%d" % i, (7,)) for i in range(12)]
        assert sclient.sync(7) == appended[-1]
        got = []
        while True:
            item = sclient.readnext(7)
            if item is None:
                break
            offset, entry = item
            got.append(entry.payload)
        assert got == [b"s%d" % i for i in range(12)]

    def test_fill_and_typed_errors(self, cluster):
        client = cluster.client()
        tail = client.check(fast=True)
        with pytest.raises(UnwrittenError):
            client.read(tail + 50)
        # Burn an offset via the sequencer, then fill the hole.
        burned = client.append(b"tmp", ())
        client.trim(burned)
        with pytest.raises(TrimmedError):
            client.read(burned)

    def test_net_stats_cover_all_nodes(self, cluster):
        client = cluster.client()
        client.append(b"stats", (1,))
        client.check(fast=True)
        stats = client.net_stats()
        for node in ("flash-0-0", "flash-0-1", "flash-0-2", "seq-0"):
            assert stats[node]["rpcs"] > 0


# -- failure drills (function-scoped deployments: they kill things) ---------


class TestStorageFailover:
    def test_sigkill_storage_node_fails_over_exactly_once(self):
        with Supervisor(cluster_specs(1, 3)) as supervisor:
            with RemoteCluster(
                supervisor.addresses(),
                num_sets=1,
                replication_factor=3,
                timeout=0.5,
            ) as cluster:
                client = cluster.client()
                payloads = [b"pre-%d" % i for i in range(10)]
                offsets = [client.append(p, (1,)) for p in payloads]

                victim = "flash-0-1"
                supervisor.kill(victim, signal.SIGKILL)
                assert not supervisor.alive(victim)
                assert victim in supervisor.down_nodes()

                # Appends keep working: the client hits the dead chain
                # node, drives eject_storage_node, and retries.
                more = [b"post-%d" % i for i in range(10)]
                offsets += [client.append(p, (1,)) for p in more]
                payloads += more

                proj = client.projection
                assert proj.epoch > 0
                assert victim not in proj.all_nodes()

                # Exactly-once: every appended payload is at exactly its
                # offset, every offset is readable, nothing duplicated.
                seen = {}
                tail = client.check(fast=True)
                for offset in range(tail):
                    try:
                        entry = client.read(offset)
                    except UnwrittenError:
                        client.fill(offset)
                        continue
                    if not entry.is_junk:
                        seen[offset] = entry.payload
                assert seen == dict(zip(offsets, payloads))

    def test_supervisor_surfaces_crash_as_node_down(self):
        with Supervisor(cluster_specs(1, 2)) as supervisor:
            observed = []
            event = threading.Event()

            def on_down(exc):
                observed.append(exc)
                event.set()

            supervisor.monitor(on_down, interval=0.05)
            supervisor.ensure_up()  # everyone healthy at first
            supervisor.kill("flash-0-0", signal.SIGKILL)
            assert event.wait(10.0)
            assert isinstance(observed[0], NodeDownError)
            assert observed[0].node == "flash-0-0"
            with pytest.raises(NodeDownError):
                supervisor.ensure_up()
            with pytest.raises(NodeDownError):
                supervisor.ping("flash-0-0")


class TestSequencerFailover:
    def test_sigkill_sequencer_fails_over_to_standby(self):
        with Supervisor(
            cluster_specs(1, 2, standby_sequencers=1)
        ) as supervisor:
            with RemoteCluster(
                supervisor.addresses(),
                num_sets=1,
                replication_factor=2,
                timeout=0.5,
            ) as cluster:
                client = cluster.client()
                before = [client.append(b"pre-%d" % i, (1,)) for i in range(5)]

                supervisor.kill("seq-0", signal.SIGKILL)

                # The next appends hit the dead sequencer, drive
                # replace_sequencer (seal, slow check, backward scan,
                # bootstrap seq-1 over the wire), and continue.
                after = [client.append(b"post-%d" % i, (1,)) for i in range(5)]

                proj = client.projection
                assert proj.sequencer == "seq-1"
                assert proj.epoch > 0
                for i, offset in enumerate(before):
                    assert client.read(offset).payload == b"pre-%d" % i
                for i, offset in enumerate(after):
                    assert client.read(offset).payload == b"post-%d" % i
                # The recovered sequencer's tail covers everything.
                assert client.check(fast=True) > max(after)


class TestTeardown:
    def test_clean_shutdown_reaps_everything(self):
        supervisor = Supervisor(cluster_specs(1, 2)).start()
        addresses = supervisor.addresses()
        assert len(addresses) == 3
        exit_codes = supervisor.stop()
        # Graceful shutdown: every child exits 0 (no SIGTERM/SIGKILL
        # escalation needed).
        assert exit_codes == {name: 0 for name in addresses}
        for name in addresses:
            assert not supervisor.alive(name)
            with pytest.raises(NodeDownError):
                supervisor.ping(name)

    def test_kill_then_stop_reports_signal_exit(self):
        supervisor = Supervisor(cluster_specs(1, 1)).start()
        supervisor.kill("flash-0-0", signal.SIGKILL)
        exit_codes = supervisor.stop()
        assert exit_codes["flash-0-0"] == -signal.SIGKILL
        assert exit_codes["seq-0"] == 0
