"""Unit and property tests for the binary encoding helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.encoding import (
    decode_bytes,
    decode_str,
    encode_bytes,
    encode_str,
    pack_u16,
    pack_u32,
    pack_u64,
    unpack_u16,
    unpack_u32,
    unpack_u64,
)


class TestFixedWidth:
    def test_u16_round_trip(self):
        buf = bytearray()
        pack_u16(buf, 0xBEEF)
        value, off = unpack_u16(bytes(buf), 0)
        assert value == 0xBEEF
        assert off == 2

    def test_u32_round_trip(self):
        buf = bytearray()
        pack_u32(buf, 0xDEADBEEF)
        value, off = unpack_u32(bytes(buf), 0)
        assert value == 0xDEADBEEF
        assert off == 4

    def test_u64_round_trip(self):
        buf = bytearray()
        pack_u64(buf, 2**63 + 17)
        value, off = unpack_u64(bytes(buf), 0)
        assert value == 2**63 + 17
        assert off == 8

    def test_sequential_fields_advance_offset(self):
        buf = bytearray()
        pack_u16(buf, 1)
        pack_u32(buf, 2)
        pack_u64(buf, 3)
        a, off = unpack_u16(bytes(buf), 0)
        b, off = unpack_u32(bytes(buf), off)
        c, off = unpack_u64(bytes(buf), off)
        assert (a, b, c) == (1, 2, 3)
        assert off == len(buf)

    def test_u16_overflow_rejected(self):
        buf = bytearray()
        with pytest.raises(Exception):
            pack_u16(buf, 0x10000)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_u16_property(self, value):
        buf = bytearray()
        pack_u16(buf, value)
        assert unpack_u16(bytes(buf), 0)[0] == value

    @given(st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF))
    def test_u64_property(self, value):
        buf = bytearray()
        pack_u64(buf, value)
        assert unpack_u64(bytes(buf), 0)[0] == value


class TestVariableLength:
    def test_bytes_round_trip(self):
        buf = bytearray()
        encode_bytes(buf, b"hello world")
        data, off = decode_bytes(bytes(buf), 0)
        assert data == b"hello world"
        assert off == len(buf)

    def test_empty_bytes(self):
        buf = bytearray()
        encode_bytes(buf, b"")
        data, off = decode_bytes(bytes(buf), 0)
        assert data == b""
        assert off == 4

    def test_str_round_trip_unicode(self):
        buf = bytearray()
        encode_str(buf, "héllo wörld — ←")
        text, _ = decode_str(bytes(buf), 0)
        assert text == "héllo wörld — ←"

    @given(st.binary(max_size=4096))
    def test_bytes_property(self, data):
        buf = bytearray()
        encode_bytes(buf, data)
        decoded, off = decode_bytes(bytes(buf), 0)
        assert decoded == data
        assert off == len(buf)

    @given(st.lists(st.binary(max_size=64), max_size=10))
    def test_concatenated_fields(self, chunks):
        buf = bytearray()
        for chunk in chunks:
            encode_bytes(buf, chunk)
        off = 0
        out = []
        for _ in chunks:
            chunk, off = decode_bytes(bytes(buf), off)
            out.append(chunk)
        assert out == chunks
