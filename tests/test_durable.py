"""Tests for file-backed flash units and durable clusters."""

import os

import pytest

from repro.corfu.durable import DurableFlashUnit, open_durable_cluster
from repro.errors import SealedError, TrimmedError, UnwrittenError, WrittenError
from repro.objects import TangoMap
from repro.tango.runtime import TangoRuntime


class TestDurableFlashUnit:
    def test_write_survives_reopen(self, tmp_path):
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        unit.write(5, b"persisted", epoch=0)
        unit.close()
        reopened = DurableFlashUnit("u", path)
        assert reopened.read(5, epoch=0) == b"persisted"

    def test_write_once_enforced_across_reopen(self, tmp_path):
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        unit.write(5, b"first", epoch=0)
        unit.close()
        reopened = DurableFlashUnit("u", path)
        with pytest.raises(WrittenError):
            reopened.write(5, b"second", epoch=0)

    def test_trim_survives_reopen(self, tmp_path):
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        unit.write(5, b"x", epoch=0)
        unit.trim(5, epoch=0)
        unit.close()
        reopened = DurableFlashUnit("u", path)
        with pytest.raises(TrimmedError):
            reopened.read(5, epoch=0)

    def test_trim_prefix_survives_reopen(self, tmp_path):
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        for addr in range(6):
            unit.write(addr, b"%d" % addr, epoch=0)
        unit.trim_prefix(4, epoch=0)
        unit.close()
        reopened = DurableFlashUnit("u", path)
        with pytest.raises(TrimmedError):
            reopened.read(3, epoch=0)
        assert reopened.read(4, epoch=0) == b"4"
        assert reopened.local_tail() == 6

    def test_seal_survives_reopen(self, tmp_path):
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        unit.seal(3)
        unit.close()
        reopened = DurableFlashUnit("u", path)
        with pytest.raises(SealedError):
            reopened.write(0, b"x", epoch=2)

    def test_torn_tail_discarded(self, tmp_path):
        """A crash mid-write leaves a torn record; replay drops it."""
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        unit.write(0, b"complete", epoch=0)
        unit.close()
        with open(path, "ab") as f:
            f.write(b"\x57\x00\x00")  # half a frame header
        reopened = DurableFlashUnit("u", path)
        assert reopened.read(0, epoch=0) == b"complete"
        with pytest.raises(UnwrittenError):
            reopened.read(1, epoch=0)
        # And the unit keeps working after truncating the tear.
        reopened.write(1, b"after", epoch=0)
        reopened.close()
        final = DurableFlashUnit("u", path)
        assert final.read(1, epoch=0) == b"after"

    def test_torn_tail_is_reported(self, tmp_path, caplog):
        """Crash injection: a torn tail replays with a loud warning."""
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        unit.write(0, b"complete", epoch=0)
        unit.close()
        # Crash mid-append: a full frame header promising more body
        # bytes than were ever written.
        import struct

        with open(path, "ab") as f:
            f.write(struct.pack("<BQQI", ord("W"), 0, 1, 4096))
            f.write(b"only-part-of-the-body")
        with caplog.at_level("WARNING", logger="repro.corfu.durable"):
            reopened = DurableFlashUnit("u", path)
        torn = [
            r for r in caplog.records if "crash mid-append" in r.getMessage()
        ]
        assert len(torn) == 1
        assert "discarding" in torn[0].getMessage()
        assert "torn frame" in torn[0].getMessage()
        # The tear was discarded, not applied.
        assert reopened.read(0, epoch=0) == b"complete"
        with pytest.raises(UnwrittenError):
            reopened.read(1, epoch=0)
        reopened.close()
        # A second reopen is quiet: the tail was truncated for good.
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.corfu.durable"):
            DurableFlashUnit("u", path).close()
        assert not caplog.records

    def test_local_tail_after_reopen(self, tmp_path):
        path = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", path)
        unit.write(9, b"x", epoch=0)
        unit.close()
        assert DurableFlashUnit("u", path).local_tail() == 10


class TestDurableCluster:
    def test_tango_state_survives_process_restart(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        cluster = open_durable_cluster(
            data_dir, num_sets=3, replication_factor=2
        )
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        for i in range(10):
            m.put(f"k{i}", i)
        assert m.get("k9") == 9
        # "Restart": a brand-new cluster object over the same files.
        reopened = open_durable_cluster(
            data_dir, num_sets=3, replication_factor=2
        )
        rt2 = TangoRuntime(reopened, client_id=2)
        recovered = TangoMap(rt2, oid=1)
        assert recovered.size() == 10
        assert recovered.get("k5") == 5

    def test_appends_continue_after_restart(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        cluster = open_durable_cluster(
            data_dir, num_sets=3, replication_factor=2
        )
        client = cluster.client()
        for i in range(7):
            client.append(b"pre-%d" % i, stream_ids=(1,))
        reopened = open_durable_cluster(
            data_dir, num_sets=3, replication_factor=2
        )
        client2 = reopened.client()
        offset = client2.append(b"post", stream_ids=(1,))
        assert offset == 7  # the recovered sequencer knows the tail
        entry = client2.read(offset)
        assert entry.header_for(1).previous_offset() == 6

    def test_restart_without_sequencer_recovery(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        cluster = open_durable_cluster(
            data_dir, num_sets=3, replication_factor=2
        )
        cluster.client().append(b"x")
        reopened = open_durable_cluster(
            data_dir,
            num_sets=3,
            replication_factor=2,
            recover_sequencer=False,
        )
        # The slow check still sees the durable entries.
        assert reopened.client().check(fast=False) == 1
