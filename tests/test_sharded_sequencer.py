"""End-to-end tests for the sharded per-stream-group sequencer.

A :class:`CorfuCluster` built with ``seq_shards=N`` partitions streams
into N groups (``sid % N``); each group's sequencer shard issues offsets
on its own stripe (``offset % N == shard_index``). Single-group appends
touch one shard; multiappends spanning groups take a two-phase vector
grant (reserve in canonical ascending shard order, then commit), leaving
vector-marker entries at the burned reservations so a shard recovering
from a stripe-local scan still learns about cross-shard entries.
"""

import pytest

from repro.corfu import CorfuCluster
from repro.corfu import reconfig
from repro.corfu.entry import decode_vector_marker
from repro.corfu.sequencer import shard_name
from repro.streams import StreamClient


@pytest.fixture
def cluster():
    return CorfuCluster(num_sets=2, replication_factor=2, seq_shards=4)


def _drain(sclient, sid):
    payloads = []
    while True:
        nxt = sclient.readnext(sid)
        if nxt is None:
            return payloads
        payloads.append(nxt[1].payload)


class TestRouting:
    def test_single_stream_appends_land_on_the_owning_stripe(self, cluster):
        client = cluster.client()
        for sid in (1, 2, 5, 7):
            offset = client.append(b"p", (sid,))
            assert offset % 4 == sid % 4

    def test_projection_names_the_shard_group(self, cluster):
        proj = cluster.projection
        assert proj.num_seq_shards == 4
        assert proj.sequencer_shards == tuple(
            shard_name(proj.sequencer, i) for i in range(4)
        )
        assert proj.shard_index_for_stream(6) == 2

    def test_unsharded_cluster_is_bit_for_bit_dense(self):
        client = CorfuCluster(
            num_sets=2, replication_factor=2, seq_shards=1
        ).client()
        offsets = [client.append(b"p", (1,)) for _ in range(5)]
        assert offsets == [0, 1, 2, 3, 4]

    def test_check_tail_covers_all_shards(self, cluster):
        client = cluster.client()
        client.append(b"p", (3,))  # offset 3 on shard 3
        assert client.check(fast=True) >= 4


class TestVectorGrantE2E:
    def test_cross_shard_entry_is_visible_in_both_streams(self, cluster):
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        sclient.open_stream(2)
        sclient.append(b"a1", (1,))
        sclient.append(b"b2", (2,))
        sclient.append(b"both", (1, 2))
        sclient.sync(1)
        sclient.sync(2)
        assert _drain(sclient, 1) == [b"a1", b"both"]
        assert _drain(sclient, 2) == [b"b2", b"both"]

    def test_markers_sit_on_the_non_final_stripes(self, cluster):
        from repro.errors import UnwrittenError

        client = cluster.client()
        offset = client.append(b"x", (1, 2, 3))
        # The entry lands on the highest reservation; every other
        # touched shard burned one slot under a decodable marker naming
        # the final offset and that shard's slice of the stream vector
        # (its stripe-local recovery scan needs nothing more).
        markers = {}
        for o in range(offset):
            try:
                entry = client.read(o)
            except UnwrittenError:
                continue
            if entry.is_junk:
                continue
            decoded = decode_vector_marker(entry.payload)
            if decoded is not None:
                markers[o] = decoded
        assert len(markers) == 2
        for o, (final, streams) in markers.items():
            assert final == offset
            assert streams
            for sid in streams:
                assert sid % 4 == o % 4

    def test_interleaving_with_single_stream_appends(self, cluster):
        sclient = StreamClient(cluster.client())
        for sid in (1, 2):
            sclient.open_stream(sid)
        sclient.append(b"a", (1,))
        sclient.append(b"ab", (1, 2))
        sclient.append(b"b", (2,))
        sclient.append(b"ab2", (1, 2))
        sclient.sync(1)
        sclient.sync(2)
        assert _drain(sclient, 1) == [b"a", b"ab", b"ab2"]
        assert _drain(sclient, 2) == [b"ab", b"b", b"ab2"]


class TestPerShardFailover:
    def test_crashed_shard_recovers_without_touching_the_others(self, cluster):
        client = cluster.client()
        client.append(b"one", (1,))
        client.append(b"two", (2,))
        old = cluster.projection
        victim = old.sequencer_shards[1]
        survivor = cluster.sequencer(old.sequencer_shards[2])
        cluster.crash_sequencer(victim)
        # The next stream-1 append runs per-shard failover under the
        # hood and then succeeds.
        offset = client.append(b"one-again", (1,))
        assert offset % 4 == 1
        new = cluster.projection
        assert new.epoch == old.epoch + 1
        assert new.sequencer_shards[1] != victim
        assert new.sequencer_shards[2] == old.sequencer_shards[2]
        # The healthy shard is the same live instance: soft state kept.
        assert cluster.sequencer(new.sequencer_shards[2]) is survivor
        offset2 = client.append(b"two-again", (2,))
        assert offset2 % 4 == 2

    def test_recovery_scans_only_the_stripe_but_finds_vector_entries(
        self, cluster
    ):
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        sclient.append(b"solo", (1,))
        sclient.append(b"vector", (1, 2))
        cluster.crash_sequencer(cluster.projection.sequencer_shards[1])
        sclient.append(b"after", (1,))
        sclient.sync(1)
        # The rebuilt shard knew about both prior stream-1 entries: the
        # solo one from its header, the cross-shard one from the marker
        # burned on stripe 1 — so playback misses nothing.
        assert _drain(sclient, 1) == [b"solo", b"vector", b"after"]

    def test_explicit_replace_sequencer_shard(self, cluster):
        client = cluster.client()
        client.append(b"x", (3,))
        old = cluster.projection
        new = reconfig.replace_sequencer_shard(cluster, 3, source="test")
        assert new.epoch == old.epoch + 1
        assert new.sequencer_shards[3] != old.sequencer_shards[3]
        # Exactly-once across the failover: the new shard's first issue
        # is above everything the old one granted.
        offset = client.append(b"y", (3,))
        assert offset % 4 == 3
        assert offset > 3

    def test_replace_shard_rejects_bad_index(self, cluster):
        with pytest.raises(ValueError):
            reconfig.replace_sequencer_shard(cluster, 9, source="test")


class TestRuntimeOverShards:
    def test_cross_shard_transaction_commits(self, cluster):
        from repro.objects import TangoMap
        from repro.tango.runtime import TangoRuntime

        runtime = TangoRuntime(cluster, client_id=1)
        m1 = TangoMap(runtime, oid=1)
        m2 = TangoMap(runtime, oid=2)
        runtime.begin_tx()
        m1.put("k", "v1")
        m2.put("k", "v2")
        assert runtime.end_tx()
        assert m1.get("k") == "v1"
        assert m2.get("k") == "v2"
