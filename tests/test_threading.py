"""Multithreaded clients: many application threads, one runtime.

The paper's client model is explicitly multithreaded — BeginTX lives in
thread-local storage and the apply upcall must not race "application
threads executing arbitrary methods of the object" (section 3.1/3.2).
These tests drive one runtime (and the shared in-process cluster) from
several Python threads at once.
"""

import threading

import pytest

from repro.corfu import CorfuCluster
from repro.objects import TangoCounter, TangoList, TangoMap, TangoQueue
from repro.tango.runtime import TangoRuntime


def _run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestSingleRuntimeManyThreads:
    def test_concurrent_transactional_increments(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        m.put("n", 0)
        m.get("n")
        errors = []

        def worker():
            try:
                for _ in range(10):
                    rt.run_transaction(lambda: m.put("n", m.get("n") + 1))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        _run_threads([worker] * 4)
        assert not errors
        assert m.get("n") == 40

    def test_concurrent_commutative_updates(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        ctr = TangoCounter(rt, oid=1)
        errors = []

        def worker():
            try:
                for _ in range(25):
                    ctr.increment()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_threads([worker] * 4)
        assert not errors
        assert ctr.value() == 100

    def test_concurrent_readers_and_writers(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for i in range(50):
                    m.put(f"k{i % 10}", i)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    m.get("k3")
                    m.size()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_threads([writer, reader, reader])
        assert not errors
        assert m.size() == 10


class TestManyRuntimesManyThreads:
    def test_cross_client_queue_exactly_once(self, cluster):
        producer_rt = TangoRuntime(cluster, client_id=1)
        producer = TangoQueue(producer_rt, oid=1, host_view=False)
        consumers = [
            TangoQueue(TangoRuntime(cluster, client_id=2 + i), oid=1)
            for i in range(3)
        ]
        for i in range(30):
            producer.enqueue(i)
        taken, errors = [], []
        lock = threading.Lock()

        def consume(q):
            try:
                while True:
                    item = q.dequeue()
                    if item is None:
                        return
                    with lock:
                        taken.append(item)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_threads([lambda q=q: consume(q) for q in consumers])
        assert not errors
        assert sorted(taken) == list(range(30))

    def test_two_runtimes_transacting_concurrently(self, cluster):
        rt1 = TangoRuntime(cluster, client_id=1)
        rt2 = TangoRuntime(cluster, client_id=2)
        m1, m2 = TangoMap(rt1, oid=1), TangoMap(rt2, oid=1)
        m1.put("n", 0)
        m1.get("n")
        m2.get("n")
        errors = []

        def worker(rt, m):
            try:
                for _ in range(15):
                    rt.run_transaction(lambda: m.put("n", m.get("n") + 1))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_threads(
            [lambda: worker(rt1, m1), lambda: worker(rt2, m2)]
        )
        assert not errors
        assert m1.get("n") == m2.get("n") == 30

    def test_concurrent_appends_dense_log(self, cluster):
        """Raw shared-log appends from many threads: unique offsets,
        no holes, all payloads durable."""
        clients = [cluster.client() for _ in range(4)]
        offsets, errors = [], []
        lock = threading.Lock()

        def worker(client, tag):
            try:
                mine = [client.append(b"%d-%d" % (tag, i)) for i in range(25)]
                with lock:
                    offsets.extend(mine)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_threads(
            [lambda c=c, t=t: worker(c, t) for t, c in enumerate(clients)]
        )
        assert not errors
        assert sorted(offsets) == list(range(100))
        reader = cluster.client()
        assert all(not reader.read(o).is_junk for o in range(100))

    def test_thread_local_transactions_do_not_interfere(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        m.put("a", 0)
        m.get("a")
        barrier = threading.Barrier(2)
        outcomes = {}

        def worker(name, key):
            barrier.wait()
            rt.begin_tx()
            _ = m.get(key)
            m.put(key + "-out", name)
            outcomes[name] = rt.end_tx()

        _run_threads(
            [
                lambda: worker("t1", "a"),
                lambda: worker("t2", "a"),
            ]
        )
        # Disjoint write keys, same read key, no interleaved writes to
        # "a": both commit, each from its own thread-local context.
        assert outcomes == {"t1": True, "t2": True}


class TestStreamIteratorThreadSafety:
    """The StreamClient's iterator accessors vs a concurrent reader.

    Before the lock covered seek/peek_offset/reset/position/pending/
    known_offsets/lookahead, a reader thread advancing read_ptr could
    race an accessor mid-update: peek_offset could index past the end
    of the offsets list, and position could read a pointer that another
    thread had just moved. Every observation must be internally
    consistent — values drawn from one coherent iterator state.
    """

    def test_accessors_race_playback(self, cluster):
        from repro.streams import StreamClient

        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        for i in range(60):
            sclient.append(b"e%d" % i, (1,))
        sclient.sync(1)
        all_offsets = sclient.known_offsets(1)
        errors = []
        delivered = []
        stop = threading.Event()

        def reader():
            try:
                while True:
                    item = sclient.readnext(1)
                    if item is None:
                        return
                    delivered.append(item[0])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def observer():
            try:
                while not stop.is_set():
                    peek = sclient.peek_offset(1)
                    assert peek is None or peek in all_offsets
                    pos = sclient.position(1)
                    assert pos == -1 or pos in all_offsets
                    pending = sclient.pending(1)
                    assert 0 <= pending <= len(all_offsets)
                    assert sclient.known_offsets(1) == all_offsets
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def seeker():
            try:
                while not stop.is_set():
                    for _offset, entry in sclient.lookahead(1, 30):
                        assert not entry.is_junk
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        _run_threads([reader, observer, observer, seeker])
        assert not errors
        assert delivered == list(all_offsets)

    def test_seek_and_reset_race_readers(self, cluster):
        from repro.streams import StreamClient

        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        for i in range(40):
            sclient.append(b"e%d" % i, (1,))
        sclient.sync(1)
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    item = sclient.readnext(1)
                    if item is not None:
                        offset, entry = item
                        assert entry.payload == b"e%d" % offset
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def rewinder():
            try:
                for _ in range(200):
                    sclient.reset(1)
                    sclient.seek(1, 20)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        _run_threads([reader, reader, rewinder])
        assert not errors
        # After the last seek(1, 20), playback resumes past 20; the
        # readers may have advanced further before noticing the stop
        # flag, but a torn pointer behind the seek is impossible.
        peek = sclient.peek_offset(1)
        assert peek is None or peek > 20
