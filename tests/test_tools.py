"""Tests for the log inspection tooling."""

import pytest

from repro.objects import TangoList, TangoMap
from repro.tango.runtime import TangoRuntime
from repro.tools import check_log, dump_log, format_dump, stream_summary


class TestDumpLog:
    def test_empty_log(self, cluster):
        assert dump_log(cluster) == []

    def test_dump_describes_updates(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        m.put("k", 1)
        rows = dump_log(cluster)
        assert len(rows) == 1
        assert rows[0]["streams"] == [1]
        assert any("update oid=1" in r for r in rows[0]["records"])

    def test_dump_describes_commits_and_decisions(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)

        class Marked(TangoMap):
            needs_decision_record = True

        m = Marked(rt, oid=1)
        lst = TangoList(rt, oid=2)
        m.put("k", 1)
        m.get("k")

        def tx():
            _ = m.get("k")
            lst.append("x")

        rt.run_transaction(tx)
        descriptions = [
            record for row in dump_log(cluster) for record in row.get("records", [])
        ]
        assert any(record.startswith("commit tx=") for record in descriptions)
        assert any(record.startswith("decision tx=") for record in descriptions)

    def test_dump_marks_holes_and_junk(self, cluster):
        client = cluster.client()
        client.append(b"x", stream_ids=(1,))
        cluster.sequencer().increment()  # hole
        client.append(b"y", stream_ids=(1,))
        client.fill(1)
        rows = dump_log(cluster)
        assert rows[1]["state"] == "junk"

    def test_format_dump_renders(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        m.put("k", 1)
        text = format_dump(dump_log(cluster))
        assert "streams=[1]" in text
        assert "update oid=1" in text


class TestStreamSummary:
    def test_summary_counts(self, cluster):
        client = cluster.client()
        for i in range(6):
            client.append(b"e%d" % i, stream_ids=(i % 2,))
        summary = stream_summary(cluster)
        assert summary[0]["entries"] == 3
        assert summary[1]["entries"] == 3
        assert summary[0]["first_offset"] == 0
        assert summary[1]["last_offset"] == 5

    def test_multiappend_counted_in_both(self, cluster):
        client = cluster.client()
        client.append(b"both", stream_ids=(1, 2))
        summary = stream_summary(cluster)
        assert summary[1]["entries"] == summary[2]["entries"] == 1


class TestCheckLog:
    def test_healthy_log(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        for i in range(10):
            m.put(f"k{i}", i)
        rt.run_transaction(lambda: m.put("tx", m.get("k0")))
        report = check_log(cluster)
        assert report.healthy
        assert report.entries == report.tail
        assert not report.holes

    def test_holes_reported_but_not_unhealthy(self, cluster):
        client = cluster.client()
        client.append(b"x", stream_ids=(1,))
        cluster.sequencer().increment(stream_ids=(1,))
        client.append(b"y", stream_ids=(1,))
        report = check_log(cluster)
        assert report.holes == [1]
        assert report.healthy

    def test_orphaned_transaction_detected(self, cluster):
        from repro.tango.records import UpdateRecord, encode_records

        client = cluster.client()
        client.append(
            encode_records([UpdateRecord(1, b"{}", tx_id=0xBEEF)]), (1,)
        )
        report = check_log(cluster)
        assert report.orphaned_txes == [0xBEEF]
        assert not report.healthy

    def test_orphan_resolved_by_forced_abort(self, cluster):
        from repro.tango.records import UpdateRecord, encode_records

        client = cluster.client()
        client.append(
            encode_records([UpdateRecord(1, b"{}", tx_id=0xBEEF)]), (1,)
        )
        rt = TangoRuntime(cluster, client_id=1)
        rt.force_abort(0xBEEF, oids=(1,))
        report = check_log(cluster)
        assert report.orphaned_txes == []
        assert report.healthy

    def test_missing_decision_detected(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)

        class Marked(TangoMap):
            needs_decision_record = True

        m = Marked(rt, oid=1)
        lst = TangoList(rt, oid=2)
        m.put("k", 1)
        m.get("k")
        # Append a commit record with decision_expected but "crash"
        # before the decision record.
        rt.begin_tx()
        _ = m.get("k")
        lst.append("x")
        ctx = rt._current_tx()
        rt._tls.tx = None
        rt._append_commit(ctx)
        report = check_log(cluster)
        assert report.undecided_txes == [ctx.tx_id]
        assert not report.healthy

    def test_backpointers_all_valid_in_normal_operation(self, cluster):
        client = cluster.client()
        for i in range(30):
            client.append(b"e%d" % i, stream_ids=(i % 3,))
        report = check_log(cluster)
        assert report.bad_backpointers == []

    def test_backpointers_valid_through_holes(self, cluster):
        client = cluster.client()
        client.append(b"a", stream_ids=(1,))
        cluster.sequencer().increment(stream_ids=(1,))  # hole, in-stream
        client.append(b"b", stream_ids=(1,))
        client.fill(1)
        report = check_log(cluster)
        assert report.bad_backpointers == []
