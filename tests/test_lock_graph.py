"""Tests for TangoLock (fencing locks) and TangoGraph (topologies)."""

import pytest

from repro.objects import TangoGraph, TangoLock


class TestLockAcquire:
    def test_acquire_returns_token(self, make_runtime):
        lock = TangoLock(make_runtime(), oid=1)
        token = lock.try_acquire("resource", "me")
        assert isinstance(token, int)
        assert lock.holder_of("resource") == ("me", token)

    def test_second_acquirer_fails(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        l1, l2 = TangoLock(rt1, oid=1), TangoLock(rt2, oid=1)
        assert l1.try_acquire("r", "a") is not None
        assert l2.try_acquire("r", "b") is None
        assert l2.holder_of("r")[0] == "a"

    def test_reacquire_is_idempotent(self, make_runtime):
        lock = TangoLock(make_runtime(), oid=1)
        t1 = lock.try_acquire("r", "me")
        t2 = lock.try_acquire("r", "me")
        assert t1 == t2

    def test_independent_locks_do_not_conflict(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        l1, l2 = TangoLock(rt1, oid=1), TangoLock(rt2, oid=1)
        assert l1.try_acquire("r1", "a") is not None
        assert l2.try_acquire("r2", "b") is not None
        assert sorted(l1.held_locks()) == ["r1", "r2"]

    def test_release_then_reacquire(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        l1, l2 = TangoLock(rt1, oid=1), TangoLock(rt2, oid=1)
        l1.try_acquire("r", "a")
        l1.release("r", "a")
        assert l2.try_acquire("r", "b") is not None

    def test_release_by_non_holder_is_noop(self, make_runtime):
        lock = TangoLock(make_runtime(), oid=1)
        lock.try_acquire("r", "a")
        lock.release("r", "intruder")
        assert lock.holder_of("r")[0] == "a"


class TestFencingTokens:
    def test_tokens_increase_monotonically(self, make_runtime):
        """The property fenced resources rely on."""
        rt1, rt2 = make_runtime(), make_runtime()
        l1, l2 = TangoLock(rt1, oid=1), TangoLock(rt2, oid=1)
        t1 = l1.try_acquire("r", "a")
        l1.release("r", "a")
        t2 = l2.try_acquire("r", "b")
        l2.release("r", "b")
        t3 = l1.try_acquire("r", "a")
        assert t1 < t2 < t3

    def test_break_lock_then_new_token_fences_old(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        l1, l2 = TangoLock(rt1, oid=1), TangoLock(rt2, oid=1)
        dead_token = l1.try_acquire("r", "crashed-holder")
        l2.break_lock("r")
        new_token = l2.try_acquire("r", "recovery")
        assert new_token > dead_token  # resource-side fencing works

    def test_contended_acquire_exactly_one_winner(self, make_runtime):
        runtimes = [make_runtime() for _ in range(3)]
        locks = [TangoLock(rt, oid=1) for rt in runtimes]
        tokens = [lock.try_acquire("r", f"c{i}") for i, lock in enumerate(locks)]
        winners = [t for t in tokens if t is not None]
        assert len(winners) == 1


class TestGraphBasics:
    def test_nodes_and_edges(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_node("a", attrs={"rack": 1})
        g.add_edge("a", "b", label={"bw": 10})
        assert g.has_node("a") and g.has_node("b")
        assert g.node_attrs("a") == {"rack": 1}
        assert g.neighbors("a") == ("b",)
        assert g.edge_label("a", "b") == {"bw": 10}
        assert g.degree("a") == 1
        assert g.node_count() == 2

    def test_remove_edge(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_edge("a", "b")
        g.remove_edge("a", "b")
        assert g.neighbors("a") == ()
        assert g.has_node("b")  # nodes survive edge removal

    def test_remove_node_clears_incident_edges(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_edge("a", "b")
        g.add_edge("c", "b")
        g.remove_node("b")
        assert not g.has_node("b")
        assert g.neighbors("a") == ()
        assert g.neighbors("c") == ()

    def test_replication(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        g1, g2 = TangoGraph(rt1, oid=1), TangoGraph(rt2, oid=1)
        g1.add_edge("x", "y")
        assert g2.neighbors("x") == ("y",)


class TestReachability:
    def _chain(self, graph, names):
        for src, dst in zip(names, names[1:]):
            graph.add_edge(src, dst)

    def test_path_found(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        self._chain(g, ["a", "b", "c", "d"])
        assert g.reachable("a", "d")
        assert not g.reachable("d", "a")  # directed

    def test_self_reachable(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_node("a")
        assert g.reachable("a", "a")

    def test_max_hops(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        self._chain(g, ["a", "b", "c", "d"])
        assert g.reachable("a", "d", max_hops=3)
        assert not g.reachable("a", "d", max_hops=2)

    def test_missing_nodes(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_node("a")
        assert not g.reachable("a", "ghost")
        assert not g.reachable("ghost", "a")

    def test_cycle_terminates(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert not g.reachable("a", "z")


class TestGraphTransactions:
    def test_move_edge_atomic(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_edge("switch", "rack-1", label={"bw": 40})
        g.move_edge("switch", "rack-1", "rack-2")
        assert g.neighbors("switch") == ("rack-2",)
        assert g.edge_label("switch", "rack-2") == {"bw": 40}

    def test_move_missing_edge_raises(self, make_runtime):
        g = TangoGraph(make_runtime(), oid=1)
        g.add_node("switch")
        with pytest.raises(KeyError):
            g.move_edge("switch", "nowhere", "rack-1")

    def test_disjoint_subgraph_edits_commute(self, make_runtime):
        """Fine-grained keys: edits on different source nodes never
        conflict."""
        rt1, rt2 = make_runtime(), make_runtime()
        g1, g2 = TangoGraph(rt1, oid=1), TangoGraph(rt2, oid=1)
        g1.add_node("a")
        g1.add_node("b")
        g1.neighbors("a")
        rt1.begin_tx()
        _ = g1.neighbors("a")
        g1.add_edge("a", "x")
        g2.add_edge("b", "y")  # other region, within the window
        assert rt1.end_tx() is True

    def test_provenance_pattern(self, make_runtime):
        """Derivation chains: ancestry via reachable()."""
        g = TangoGraph(make_runtime(), oid=1)
        g.add_edge("raw-data", "cleaned", label="normalize")
        g.add_edge("cleaned", "features", label="extract")
        g.add_edge("features", "model-v1", label="train")
        assert g.reachable("raw-data", "model-v1")
        assert g.edge_label("features", "model-v1") == "train"
