"""Tests for the distributed 2PL baseline (Figure 10 middle)."""

import pytest

from repro.baselines.two_phase_locking import TwoPLSystem


@pytest.fixture
def system():
    return TwoPLSystem(partitions=("p0", "p1", "p2"))


class TestTimestamps:
    def test_monotone(self, system):
        ts = [system.oracle.next_timestamp() for _ in range(5)]
        assert ts == sorted(ts)
        assert len(set(ts)) == 5


class TestLocalTransactions:
    def test_simple_commit(self, system):
        client = system.client("c1")
        outcome = client.execute(reads=[], writes=[("p0", "k", "v")])
        assert outcome.committed
        assert system.node("p0").read("k") == ("v", outcome.timestamp)

    def test_read_validation(self, system):
        client = system.client("c1")
        client.execute(reads=[], writes=[("p0", "k", "v1")])
        outcome = client.execute(
            reads=[("p0", "k")], writes=[("p0", "k2", "v2")]
        )
        assert outcome.committed

    def test_stale_read_aborts(self, system):
        """A write between read and lock invalidates the transaction."""
        c1, c2 = system.client("c1"), system.client("c2")
        c1.execute(reads=[], writes=[("p0", "k", "v0")])

        # Interleave manually: c1 reads, c2 writes, c1 tries to commit.
        _value, version = system.node("p0").read("k")
        c2.execute(reads=[], writes=[("p0", "k", "hijacked")])
        ts = system.oracle.next_timestamp()
        ok, _msgs = c1._attempt(
            ts, [("p0", "k")], [("p0", "k2", "x")], {("p0", "k"): version}
        )
        assert not ok
        assert system.node("p0").read("k2") == (None, 0)

    def test_read_own_partition_versions(self, system):
        client = system.client("c1")
        o1 = client.execute(reads=[], writes=[("p0", "k", "a")])
        o2 = client.execute(reads=[], writes=[("p0", "k", "b")])
        assert o2.timestamp > o1.timestamp
        assert system.node("p0").read("k") == ("b", o2.timestamp)


class TestLocking:
    def test_lock_conflict_detected(self, system):
        node = system.node("p0")
        ok1, _ = node.lock("k", tx_ts=1)
        ok2, _ = node.lock("k", tx_ts=2)
        assert ok1 and not ok2

    def test_lock_reentrant_for_same_tx(self, system):
        node = system.node("p0")
        assert node.lock("k", tx_ts=1)[0]
        assert node.lock("k", tx_ts=1)[0]

    def test_unlock_only_by_holder(self, system):
        node = system.node("p0")
        node.lock("k", tx_ts=1)
        node.unlock("k", tx_ts=2)  # not the holder: no-op
        assert not node.lock("k", tx_ts=3)[0]
        node.unlock("k", tx_ts=1)
        assert node.lock("k", tx_ts=3)[0]

    def test_commit_write_releases_lock(self, system):
        node = system.node("p0")
        node.lock("k", tx_ts=5)
        node.commit_write("k", "v", tx_ts=5)
        assert node.lock("k", tx_ts=6)[0]

    def test_failed_attempt_releases_all_locks(self, system):
        """No lock leaks: a failed transaction unlocks everything."""
        c1 = system.client("c1")
        system.node("p0").lock("blocked", tx_ts=999)  # artificial blocker
        outcome = c1.execute(
            reads=[], writes=[("p0", "free", 1), ("p0", "blocked", 2)],
            max_attempts=1,
        )
        assert not outcome.committed
        assert system.node("p0").lock("free", tx_ts=1000)[0]

    def test_retry_succeeds_after_blocker_clears(self, system):
        c1 = system.client("c1")
        node = system.node("p0")
        node.lock("k", tx_ts=999)
        first = c1.execute(reads=[], writes=[("p0", "k", 1)], max_attempts=1)
        assert not first.committed
        node.unlock("k", tx_ts=999)
        second = c1.execute(reads=[], writes=[("p0", "k", 1)])
        assert second.committed


class TestCrossPartition:
    def test_cross_partition_commit(self, system):
        client = system.client("c1")
        outcome = client.execute(
            reads=[], writes=[("p0", "a", 1), ("p1", "b", 2)]
        )
        assert outcome.committed
        assert system.node("p0").read("a")[0] == 1
        assert system.node("p1").read("b")[0] == 2

    def test_write_write_conflict_on_remote(self, system):
        """A remote item versioned above our timestamp aborts us."""
        c1 = system.client("c1")
        # Give the remote item a high version.
        for _ in range(5):
            c1.execute(reads=[], writes=[("p1", "hot", "x")])
        old_ts = system.oracle.next_timestamp()
        ok, _ = c1._attempt(1, [], [("p1", "hot", "y")], {})
        assert not ok  # version > our ancient timestamp

    def test_message_accounting(self, system):
        client = system.client("c1")
        outcome = client.execute(
            reads=[("p0", "r")], writes=[("p1", "w", 1)]
        )
        assert outcome.committed
        assert outcome.messages >= 4  # read + ts + 2 locks + commit
        assert system.total_messages() > 0

    def test_commit_abort_counters(self, system):
        client = system.client("c1")
        client.execute(reads=[], writes=[("p0", "k", 1)])
        system.node("p0").lock("stuck", tx_ts=999)
        client.execute(reads=[], writes=[("p0", "stuck", 1)], max_attempts=1)
        assert client.commits == 1
        assert client.aborts == 1


class TestSerializability:
    def test_concurrent_increments_serialize(self, system):
        """Lost updates are impossible: read-validate-write round trips."""
        clients = [system.client(f"c{i}") for i in range(3)]
        system.node("p0").commit_write("n", 0, tx_ts=0)
        for round_robin in range(9):
            client = clients[round_robin % 3]
            value, _version = system.node("p0").read("n")
            outcome = client.execute(
                reads=[("p0", "n")], writes=[("p0", "n", value + 1)]
            )
            assert outcome.committed
        assert system.node("p0").read("n")[0] == 9
