"""Runtime lock-order sanitizer tests.

The ABBA scenario is checked at BOTH layers here: tangolint's TL011
flags the fixture statically, and a live run of the same shape through
:class:`InstrumentedLock` is caught by the monitor — without the test
ever actually deadlocking (single-threaded interleaving produces the
same order edges two racing threads would).
"""

import os
import threading

import pytest

from repro.tools import lockcheck
from repro.tools.lint import lint_paths
from repro.tools.lockcheck import InstrumentedLock, LockMonitor

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")


def make_pair(monitor):
    a = InstrumentedLock(label="Pair._alpha", monitor=monitor)
    b = InstrumentedLock(label="Pair._beta", monitor=monitor)
    return a, b


# ---------------------------------------------------------------------------
# the ABBA scenario, static and dynamic
# ---------------------------------------------------------------------------


def test_abba_fixture_fires_tl011_statically():
    path = os.path.join(FIXTURES, "tl011_bad.py")
    findings = lint_paths([path], select=["TL011"])
    assert [d.rule_id for d in findings] == ["TL011"]
    assert "AbbaPair._alpha" in findings[0].message


def test_abba_order_is_caught_at_runtime():
    monitor = LockMonitor()
    alpha, beta = make_pair(monitor)
    with alpha:
        with beta:
            pass
    with beta:
        with alpha:  # closes the alpha -> beta -> alpha cycle
            pass
    violations = monitor.violations()
    assert len(violations) == 1
    assert violations[0]["kind"] == "lock-order-cycle"
    cycle = violations[0]["cycle"]
    assert set(cycle) == {"Pair._alpha", "Pair._beta"}
    with pytest.raises(AssertionError, match="lock-order"):
        monitor.assert_acyclic()


def test_abba_across_two_threads_is_caught():
    monitor = LockMonitor()
    alpha, beta = make_pair(monitor)
    first_done = threading.Event()

    def forward():
        with alpha:
            with beta:
                pass
        first_done.set()

    def backward():
        first_done.wait()
        with beta:
            with alpha:
                pass

    threads = [
        threading.Thread(target=forward),
        threading.Thread(target=backward),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(monitor.violations()) == 1


# ---------------------------------------------------------------------------
# non-violations
# ---------------------------------------------------------------------------


def test_consistent_order_is_clean():
    monitor = LockMonitor()
    alpha, beta = make_pair(monitor)
    for _ in range(3):
        with alpha:
            with beta:
                pass
    assert monitor.violations() == []
    assert monitor.edges() == [("Pair._alpha", "Pair._beta")]
    monitor.assert_acyclic()


def test_rlock_reentry_adds_no_edge():
    monitor = LockMonitor()
    lock = InstrumentedLock(label="R", reentrant=True, monitor=monitor)
    with lock:
        with lock:
            pass
    assert monitor.edges() == []
    assert monitor.violations() == []


def test_unnested_acquisitions_add_no_edges():
    monitor = LockMonitor()
    alpha, beta = make_pair(monitor)
    with alpha:
        pass
    with beta:
        pass
    assert monitor.edges() == []


def test_failed_tryacquire_records_nothing():
    monitor = LockMonitor()
    lock = InstrumentedLock(label="L", monitor=monitor)
    assert lock.acquire()
    # A second non-blocking acquire from another thread must fail
    # without perturbing the monitor state.
    result = {}
    t = threading.Thread(
        target=lambda: result.setdefault("got", lock.acquire(blocking=False))
    )
    t.start()
    t.join()
    assert result["got"] is False
    lock.release()
    stats = monitor.hold_stats()
    assert stats["L"]["acquisitions"] == 1


# ---------------------------------------------------------------------------
# hold-time stats
# ---------------------------------------------------------------------------


def test_hold_stats_accumulate():
    monitor = LockMonitor()
    lock = InstrumentedLock(label="Stats._lock", monitor=monitor)
    for _ in range(5):
        with lock:
            pass
    stats = monitor.hold_stats()["Stats._lock"]
    assert stats["acquisitions"] == 5
    assert stats["total_held_s"] >= 0.0
    assert stats["max_held_s"] <= stats["total_held_s"]
    report = monitor.report()
    assert "Stats._lock" in report["hold_stats"]


# ---------------------------------------------------------------------------
# install(): wrapping the real repro lock sites
# ---------------------------------------------------------------------------


def test_install_instruments_repro_locks_and_workload_is_acyclic():
    if lockcheck.monitor() is not None:
        pytest.skip("sanitizer already installed for this session")
    monitor = lockcheck.install()
    try:
        assert lockcheck.install() is monitor  # idempotent
        from repro.corfu import CorfuCluster
        from repro.objects import TangoRegister
        from repro.tango.runtime import TangoRuntime

        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        runtime = TangoRuntime(cluster, client_id=1)
        register = TangoRegister(runtime, oid=1)
        register.write(7)
        assert register.read() == 7
        # The workload exercised real nested locking (runtime -> stream
        # -> client counters); the witnessed order must be acyclic.
        assert monitor.edges() != []
        monitor.assert_acyclic()
        assert monitor.hold_stats()  # something was measured
    finally:
        assert lockcheck.uninstall() is monitor
    assert threading.Lock is lockcheck._real_lock
    assert threading.RLock is lockcheck._real_rlock
