"""Tests for sequencer state checkpoints (the section 5 future-work
optimization: "having the sequencer store periodic checkpoints in the
log" to bound the backward scan at failover)."""

import pytest

from repro.corfu import CorfuCluster, reconfig


class TestCheckpointing:
    def test_checkpoint_append_advances_tail(self, cluster):
        client = cluster.client()
        client.append(b"x", stream_ids=(1,))
        offset = reconfig.checkpoint_sequencer_state(cluster)
        assert offset == 1
        assert client.check() == 2

    def test_failover_recovers_exact_state_via_checkpoint(self, cluster):
        client = cluster.client()
        for i in range(20):
            client.append(b"e%d" % i, stream_ids=(i % 3,))
        reconfig.checkpoint_sequencer_state(cluster)
        for i in range(5):
            client.append(b"late-%d" % i, stream_ids=(i % 3,))
        expected = {}
        seq = cluster.sequencer()
        for sid in range(3):
            expected[sid] = tuple(seq.query(stream_ids=(sid,))[1][sid])
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        recovered = cluster.sequencer(new.sequencer)
        for sid in range(3):
            got = recovered.query(stream_ids=(sid,), epoch=new.epoch)[1][sid]
            assert tuple(got) == expected[sid]

    def test_checkpoint_bounds_the_backward_scan(self, cluster):
        """Recovery reads only the suffix above the newest checkpoint."""
        client = cluster.client()
        for i in range(40):
            client.append(b"e%d" % i, stream_ids=(1,))
        reconfig.checkpoint_sequencer_state(cluster)  # offset 40
        client.append(b"after", stream_ids=(1,))  # offset 41
        cluster.crash_sequencer()
        before = cluster.total_storage_reads()
        reconfig.replace_sequencer(cluster)
        scan_reads = cluster.total_storage_reads() - before
        # Tail=42; the scan must touch ~2 entries, not ~42.
        assert scan_reads <= 6

    def test_recovery_without_checkpoint_still_works(self, cluster):
        client = cluster.client()
        for i in range(10):
            client.append(b"e%d" % i, stream_ids=(1,))
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        _, streams = cluster.sequencer(new.sequencer).query(
            stream_ids=(1,), epoch=new.epoch
        )
        assert tuple(streams[1]) == (9, 8, 7, 6)

    def test_stream_state_straddling_checkpoint(self, cluster):
        """Last-K offsets split across the checkpoint merge correctly."""
        client = cluster.client()
        client.append(b"old-1", stream_ids=(7,))  # offset 0
        client.append(b"old-2", stream_ids=(7,))  # offset 1
        reconfig.checkpoint_sequencer_state(cluster)  # offset 2
        client.append(b"new-1", stream_ids=(7,))  # offset 3
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        _, streams = cluster.sequencer(new.sequencer).query(
            stream_ids=(7,), epoch=new.epoch
        )
        assert tuple(streams[7]) == (3, 1, 0)

    def test_multiple_checkpoints_newest_wins(self, cluster):
        client = cluster.client()
        client.append(b"a", stream_ids=(1,))
        reconfig.checkpoint_sequencer_state(cluster)
        client.append(b"b", stream_ids=(2,))
        reconfig.checkpoint_sequencer_state(cluster)
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        _, streams = cluster.sequencer(new.sequencer).query(
            stream_ids=(1, 2), epoch=new.epoch
        )
        assert tuple(streams[1]) == (0,)
        assert tuple(streams[2]) == (2,)

    def test_checkpoint_stream_invisible_to_tango(self, cluster):
        """The reserved stream never collides with application streams."""
        from repro.corfu.reconfig import SEQUENCER_CHECKPOINT_STREAM
        from repro.streams import StreamClient

        client = cluster.client()
        client.append(b"app", stream_ids=(1,))
        reconfig.checkpoint_sequencer_state(cluster)
        sclient = StreamClient(cluster.client())
        sclient.open_stream(1)
        sclient.sync(1)
        offsets = []
        while True:
            item = sclient.readnext(1)
            if item is None:
                break
            offsets.append(item[0])
        assert offsets == [0]
        assert SEQUENCER_CHECKPOINT_STREAM != 1
