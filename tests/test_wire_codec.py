"""Wire serialization: every RPC payload round-trips frames exactly.

Satellite of the socket-transport work: loopback and socket transports
must be observationally identical, which reduces to one property — for
every op the lint rule (TL009) recognizes as an RPC, the op's argument
and result shapes survive ``encode_value``/``decode_value`` with types
intact (tuples stay tuples, bytes stay bytes, int dict keys stay ints),
and every typed protocol error survives the error envelope with its
constructor attributes intact (a client retry loop dispatches on
``SealedError.epoch`` and ``UnwrittenError.offset``, not on strings).
"""

import json
import socket
import threading

import pytest

from repro.corfu.entry import NO_BACKPOINTER
from repro.errors import (
    NodeDownError,
    RemoteCallError,
    RemoteReadError,
    RetriesExhaustedError,
    RpcTimeout,
    SealedError,
    StaleGrantError,
    TooManyStreamsError,
    TransactionAborted,
    TrimmedError,
    UnknownStreamError,
    UnwrittenError,
    WrittenError,
    WrongEpochError,
)
from repro.net.wire import (
    MAX_FRAME_BYTES,
    RPC_OPS,
    SEQUENCER_OPS,
    decode_error,
    decode_value,
    encode_error,
    encode_frame,
    encode_value,
    recv_frame,
    send_frame,
)
from repro.tools.lint.rules.net import _RPC_OPS as LINT_RPC_OPS

#: Representative (args, kwargs, result) shapes per RPC op, using the
#: exact types the real servers consume and produce.
SAMPLES = {
    "write": ((7, b"\x00\xffpage", 3), {}, None),
    "read": ((7, 3), {}, b"\x00\xffpage"),
    "read_many": (
        ([1, 2, 3], 3),
        {},
        {1: ("ok", b"data"), 2: ("unwritten", None), 3: ("trimmed", None)},
    ),
    "is_written": ((7, 3), {}, True),
    "trim": ((7, 3), {}, None),
    "trim_prefix": ((7, 3), {}, None),
    "seal": ((4,), {}, 12),
    "local_tail": ((), {}, 12),
    "written_addresses": ((), {}, [0, 1, 5]),
    "store_status": (
        (),
        {},
        {
            "kind": "segmented",
            "name": "flash-0-0",
            "epoch": 3,
            "trimmed_prefix": 40,
            "pages": 12,
            "resident_bytes": 8192,
            "segments": 3,
            "sealed_segments": 2,
            "disk_bytes": 16384,
            "data_bytes": 15000,
            "dead_bytes": 600,
            "live_bytes": 14400,
            "garbage_ratio": 0.04,
            "compaction": {"runs": 2, "bytes_reclaimed": 4096},
        },
    ),
    "compact": (
        (),
        {},
        {
            "segments_compacted": 2,
            "segments_written": 1,
            "frames_dropped": 64,
            "bytes_reclaimed": 4096,
        },
    ),
    "increment": (
        ((1, 2),),
        {"epoch": 3, "count": 2},
        (9, {1: (8, 5, 2), 2: (NO_BACKPOINTER,) * 4}),
    ),
    "query": (((1,),), {"epoch": 3}, (11, {1: (10, 8, 5)})),
    "bootstrap": ((11, {1: [10, 8], 2: [9]}, 4), {}, None),
    # Vector-grant phases (sharded sequencer): a reservation returns
    # one striped offset; a commit returns per-stream backpointers.
    "reserve_group": ((10,), {"epoch": 3}, 13),
    "commit_group": (
        ((1, 5), 13),
        {"epoch": 3},
        {1: (9, 5, 1), 5: (NO_BACKPOINTER,) * 4},
    ),
    "ping": ((), {}, {"name": "flash-0-0", "kind": "FlashUnit", "pid": 4242}),
    "shutdown": ((), {}, True),
    # Client-side chain wrapper: delivered to storage as a junk write.
    "fill": ((7, b"junk", 3), {}, None),
}

#: Typed errors and the attributes that must survive the envelope.
ERROR_SAMPLES = [
    (WrittenError(3), {"offset": 3}),
    (UnwrittenError(4), {"offset": 4}),
    (TrimmedError(5), {"offset": 5}),
    (SealedError(2), {"epoch": 2}),
    (WrongEpochError(2, 1), {"expected": 2, "got": 1}),
    (StaleGrantError(13), {"offset": 13}),
    (NodeDownError("flash-0-1"), {"node": "flash-0-1"}),
    (RpcTimeout("seq-0", "increment"), {"node": "seq-0", "op": "increment"}),
    (
        RetriesExhaustedError("append", 32, "rpc read to flash-0-0 timed out"),
        {"op": "append", "attempts": 32},
    ),
    (TooManyStreamsError(17, 16), {"requested": 17, "limit": 16}),
    (UnknownStreamError(9), {"stream_id": 9}),
    (TransactionAborted("stale read of oid 1", 12), {"commit_offset": 12}),
    (RemoteReadError(7), {"oid": 7}),
]


def wire_round_trip(value):
    """encode → JSON text (what actually crosses TCP) → decode."""
    return decode_value(json.loads(json.dumps(encode_value(value))))


def assert_identical(a, b):
    """Deep equality *including* container and leaf types."""
    assert type(a) is type(b), f"{type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        assert sorted(map(repr, a)) == sorted(map(repr, b))
        for key in a:
            assert_identical(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_identical(x, y)
    else:
        assert a == b


class TestValueCodec:
    def test_lint_rpc_surface_is_covered(self):
        # The regression contract: every op tangolint treats as an RPC
        # has a round-trip sample here, and the wire registry is a
        # subset of the lint surface (lint additionally knows 'fill').
        assert LINT_RPC_OPS == RPC_OPS | {"fill"}
        assert set(SAMPLES) >= LINT_RPC_OPS

    @pytest.mark.parametrize("op", sorted(SAMPLES))
    def test_op_payloads_round_trip(self, op):
        args, kwargs, result = SAMPLES[op]
        assert_identical(wire_round_trip(list(args)), list(args))
        assert_identical(wire_round_trip(dict(kwargs)), dict(kwargs))
        assert_identical(wire_round_trip(result), result)

    def test_scalars_and_none(self):
        for value in (None, True, False, 0, -7, 3.5, "text", ""):
            got = wire_round_trip(value)
            assert got == value and type(got) is type(value)

    def test_bytes_stay_bytes(self):
        blob = bytes(range(256))
        assert wire_round_trip(blob) == blob
        assert isinstance(wire_round_trip(blob), bytes)

    def test_nested_structures(self):
        value = {"outer": [(1, b"\x00"), {2: ("ok", None)}], "n": 3}
        assert_identical(wire_round_trip(value), value)

    def test_string_dicts_colliding_with_tags_round_trip(self):
        # A payload that *looks* like a codec tag must not be decoded
        # as one.
        value = {"__bytes__": "not-base64!", "other": 1}
        assert_identical(wire_round_trip(value), value)
        tricky = {"__tuple__": [1, 2]}
        assert_identical(wire_round_trip(tricky), tricky)

    def test_unencodable_types_are_rejected(self):
        with pytest.raises(TypeError, match="not wire-encodable"):
            encode_value(object())

    def test_embedded_error_instances(self):
        # CorfuClient.read_many returns error *instances* as values;
        # they must survive as typed instances, not strings.
        outcome = {1: UnwrittenError(1), 2: TrimmedError(2)}
        got = wire_round_trip(outcome)
        assert isinstance(got[1], UnwrittenError) and got[1].offset == 1
        assert isinstance(got[2], TrimmedError) and got[2].offset == 2


class TestShardedSequencerOps:
    """Live shapes: every sequencer op, served by a striped shard,
    round-trips the value codec exactly (args and results)."""

    def test_vector_grant_ops_are_registered(self):
        assert {"reserve_group", "commit_group"} <= SEQUENCER_OPS
        assert SEQUENCER_OPS <= RPC_OPS
        # tangolint's derived surface picked the new ops up too.
        assert {"reserve_group", "commit_group"} <= LINT_RPC_OPS

    def _call(self, obj, op, *args, **kwargs):
        """Invoke *op* through the codec, exactly as a NodeServer does."""
        wire_args = decode_value(json.loads(json.dumps(encode_value(list(args)))))
        wire_kwargs = decode_value(
            json.loads(json.dumps(encode_value(dict(kwargs))))
        )
        result = getattr(obj, op)(*wire_args, **wire_kwargs)
        round_tripped = wire_round_trip(result)
        assert_identical(round_tripped, result)
        return round_tripped

    def test_per_shard_ops_round_trip_live(self):
        from repro.corfu.sequencer import Sequencer

        shard = Sequencer("seq-0.1", shard_index=1, num_shards=4)
        # bootstrap / increment / query on the striped shard.
        self._call(shard, "bootstrap", 6, {1: [5, 1], 5: [1]}, 2)
        first, bps = self._call(
            shard, "increment", (1, 5), epoch=2, count=2
        )
        assert first % 4 == 1
        assert isinstance(bps[1], tuple)
        tail, tails = self._call(shard, "query", (1, 5), epoch=2)
        assert tail > first
        # Vector grant: reserve above a floor, then commit the maximum.
        reserved = self._call(shard, "reserve_group", 20, epoch=2)
        assert reserved >= 20 and reserved % 4 == 1
        committed = self._call(shard, "commit_group", (1, 5), reserved, epoch=2)
        assert set(committed) == {1, 5}
        # Per-shard seal fences the old epoch, over the wire shape too.
        assert self._call(shard, "seal", 5) is None
        with pytest.raises(SealedError):
            shard.increment((1,), epoch=2)

    def test_stale_grant_error_crosses_the_wire(self):
        from repro.corfu.sequencer import Sequencer

        shard = Sequencer("seq-0.0", shard_index=0, num_shards=2)
        shard.increment((2,))  # stream 2's newest is now offset 0
        shard.increment((2,))  # ... then offset 2
        with pytest.raises(StaleGrantError) as exc_info:
            shard.commit_group((2,), 0)
        got = decode_error(json.loads(json.dumps(encode_error(exc_info.value))))
        assert isinstance(got, StaleGrantError)
        assert got.offset == 0


class TestErrorEnvelope:
    @pytest.mark.parametrize(
        "exc,attrs", ERROR_SAMPLES, ids=lambda v: type(v).__name__
        if isinstance(v, BaseException) else None,
    )
    def test_typed_errors_round_trip(self, exc, attrs):
        envelope = json.loads(json.dumps(encode_error(exc)))
        got = decode_error(envelope)
        assert type(got) is type(exc)
        for attr, expected in attrs.items():
            assert getattr(got, attr) == expected
        assert str(got) == str(exc)

    def test_builtin_errors_round_trip(self):
        got = decode_error(encode_error(ValueError("count must be >= 1")))
        assert isinstance(got, ValueError)
        assert "count must be >= 1" in str(got)

    def test_unknown_code_becomes_remote_call_error(self):
        got = decode_error({"code": "SomeServerBug", "message": "boom"})
        assert isinstance(got, RemoteCallError)
        assert got.code == "SomeServerBug"
        assert "boom" in str(got)

    def test_malformed_params_degrade_gracefully(self):
        got = decode_error({"code": "SealedError", "message": "x", "params": {}})
        assert isinstance(got, RemoteCallError)


class TestFrames:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_send_recv_round_trip(self):
        a, b = self._pair()
        try:
            payload = {"id": "c#1", "op": "read", "args": encode_value([7, b"x"])}
            send_frame(a, payload)
            assert recv_frame(b) == json.loads(json.dumps(payload))
        finally:
            a.close()
            b.close()

    def test_partial_delivery_reassembles(self):
        # TCP is a byte stream: frames arriving one byte at a time must
        # still parse.
        a, b = self._pair()
        try:
            raw = encode_frame({"id": "c#2", "ok": encode_value((1, b"\xff"))})
            done = threading.Event()

            def dribble():
                for i in range(len(raw)):
                    a.sendall(raw[i : i + 1])
                done.set()

            t = threading.Thread(target=dribble, daemon=True)
            t.start()
            frame = recv_frame(b)
            assert decode_value(frame["ok"]) == (1, b"\xff")
            assert done.wait(5.0)
            t.join(5.0)
        finally:
            a.close()
            b.close()

    def test_two_frames_on_one_stream(self):
        a, b = self._pair()
        try:
            send_frame(a, {"id": "c#1"})
            send_frame(a, {"id": "c#2"})
            assert recv_frame(b)["id"] == "c#1"
            assert recv_frame(b)["id"] == "c#2"
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = self._pair()
        try:
            raw = encode_frame({"id": "c#1", "ok": encode_value(b"payload")})
            a.sendall(raw[: len(raw) // 2])
            a.close()
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = self._pair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "little"))
            with pytest.raises(ValueError, match="MAX_FRAME_BYTES"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_payload_rejected_at_send(self):
        with pytest.raises(ValueError, match="MAX_FRAME_BYTES"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})
