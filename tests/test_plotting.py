"""Tests for the ASCII chart helpers."""

import pytest

from repro.bench.plotting import ascii_chart, series_from_rows


class TestSeriesFromRows:
    def test_single_series(self):
        rows = [{"x": 2, "y": 20}, {"x": 1, "y": 10}]
        series = series_from_rows(rows, "x", "y")
        assert series == {"y": [(1.0, 10.0), (2.0, 20.0)]}  # sorted by x

    def test_grouped_series(self):
        rows = [
            {"x": 1, "y": 10, "log": "big"},
            {"x": 1, "y": 5, "log": "small"},
            {"x": 2, "y": 20, "log": "big"},
        ]
        series = series_from_rows(rows, "x", "y", group_key="log")
        assert set(series) == {"big", "small"}
        assert series["big"] == [(1.0, 10.0), (2.0, 20.0)]


class TestAsciiChart:
    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_renders_all_points(self):
        chart = ascii_chart(
            {"a": [(0, 0), (1, 5), (2, 10)]}, width=30, height=8
        )
        assert chart.count("o") >= 3 + 1  # points + legend glyph

    def test_distinct_glyphs_per_series(self):
        chart = ascii_chart(
            {"first": [(0, 1)], "second": [(1, 2)]}, width=20, height=6
        )
        assert "o first" in chart
        assert "x second" in chart

    def test_axis_annotations(self):
        chart = ascii_chart(
            {"s": [(10, 100), (50, 500)]},
            width=30, height=6, title="T", x_label="clients",
        )
        assert "T" in chart
        assert "500" in chart  # y max
        assert "10" in chart and "50" in chart  # x range
        assert "clients" in chart

    def test_y_axis_anchored_at_zero(self):
        chart = ascii_chart({"s": [(0, 90), (1, 100)]}, width=20, height=10)
        # With a zero-anchored axis, 90 and 100 land near the top, not
        # at opposite extremes.
        lines = [l for l in chart.splitlines() if "|" in l]
        plotted = [i for i, l in enumerate(lines) if "o" in l.split("|", 1)[-1]]
        assert plotted
        assert max(plotted) - min(plotted) <= 2

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"s": [(1, 7), (2, 7), (3, 7)]}, width=20, height=5)
        assert "o" in chart

    def test_single_point(self):
        chart = ascii_chart({"s": [(5, 5)]}, width=10, height=4)
        assert "o" in chart
