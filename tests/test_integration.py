"""End-to-end integration scenarios across the whole stack.

Each test is a miniature of a use case from the paper: the job
scheduler (section 4), elastic read scaling, layered partitioning with
cross-partition transactions, failure injection during live traffic,
and the full checkpoint/GC lifecycle.
"""

import pytest

from repro.corfu import CorfuCluster
from repro.errors import TransactionAborted
from repro.objects import (
    TangoCounter,
    TangoList,
    TangoMap,
    TangoRegister,
    TangoZK,
)
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime


class TestJobScheduler:
    """The section 4 running example, replicated on two servers."""

    def _scheduler(self, rt, directory):
        return (
            directory.open(TangoMap, "assignments"),
            directory.open(TangoList, "free-nodes"),
            directory.open(TangoCounter, "job-ids"),
        )

    def test_no_double_allocation(self, make_client):
        rt1, d1 = make_client()
        rt2, d2 = make_client()
        a1, f1, c1 = self._scheduler(rt1, d1)
        a2, f2, c2 = self._scheduler(rt2, d2)
        for node in ("n1", "n2", "n3"):
            f1.append(node)

        def schedule(rt, assignments, free, counter):
            def body():
                nodes = free.to_list()
                if not nodes:
                    return None
                node = nodes[0]
                job = counter.value()
                counter.set(job + 1)
                free.remove_value(node)
                assignments.put(str(job), node)
                return job, node

            return rt.run_transaction(body)

        results = [
            schedule(rt1, a1, f1, c1),
            schedule(rt2, a2, f2, c2),
            schedule(rt1, a1, f1, c1),
        ]
        jobs = [r[0] for r in results]
        nodes = [r[1] for r in results]
        assert jobs == [0, 1, 2]
        assert sorted(nodes) == ["n1", "n2", "n3"]
        assert schedule(rt2, a2, f2, c2) is None  # free list exhausted
        assert dict(a1.items()) == dict(a2.items())


class TestElasticReads:
    def test_many_views_serve_identical_state(self, big_cluster):
        writer_rt = TangoRuntime(big_cluster, client_id=1)
        writer = TangoMap(writer_rt, oid=1)
        for i in range(50):
            writer.put(f"k{i}", i)
        readers = [
            TangoMap(TangoRuntime(big_cluster, client_id=10 + i), oid=1)
            for i in range(6)
        ]
        for reader in readers:
            assert reader.get("k25") == 25
            assert reader.size() == 50


class TestLayeredPartitioning:
    def test_partitioned_maps_with_cross_partition_moves(self, make_client):
        """Figure 5(d): disjoint partitions + consistent cross moves."""
        rt1, d1 = make_client()
        rt2, d2 = make_client()
        west1 = d1.open(TangoMap, "west")
        east2 = d2.open(TangoMap, "east")
        # Client 1 can write the east partition without hosting it.
        east_remote = TangoMap(rt1, oid=east2.oid, host_view=False)
        west1.put("user-1", {"dc": "west"})
        west1.get("user-1")

        def migrate():
            record = west1.get("user-1")
            west1.remove("user-1")
            record["dc"] = "east"
            east_remote.put("user-1", record)

        rt1.run_transaction(migrate)
        assert west1.get("user-1") is None
        assert east2.get("user-1") == {"dc": "east"}

    def test_partition_traffic_isolation(self, make_client):
        """A partition owner plays only its own stream's records."""
        rt1, d1 = make_client()
        rt2, d2 = make_client()
        mine = d1.open(TangoMap, "mine")
        other = d2.open(TangoMap, "other")
        for i in range(20):
            other.put(f"k{i}", i)
        d1.names()  # settle the (shared) directory stream first
        mine.get("x")
        before = rt1.stats["applied_updates"]
        mine.put("x", 1)
        mine.get("x")
        # rt1 applied only its own update, not the 20 foreign ones.
        assert rt1.stats["applied_updates"] == before + 1


class TestFailureInjectionUnderLoad:
    def test_storage_failure_mid_workload(self, cluster):
        rt = TangoRuntime(cluster, client_id=1)
        m = TangoMap(rt, oid=1)
        for i in range(10):
            m.put(f"k{i}", i)
        cluster.crash_storage(cluster.projection.replica_sets[1].head)
        for i in range(10, 20):
            m.put(f"k{i}", i)
        assert m.size() == 20
        fresh = TangoMap(TangoRuntime(cluster, client_id=2), oid=1)
        assert fresh.size() == 20

    def test_sequencer_failure_between_transactions(self, cluster):
        rt1 = TangoRuntime(cluster, client_id=1)
        rt2 = TangoRuntime(cluster, client_id=2)
        m1 = TangoMap(rt1, oid=1)
        m2 = TangoMap(rt2, oid=1)
        m1.put("n", 0)
        m1.get("n")
        m2.get("n")  # sync both views before transacting

        def bump(m):
            def body():
                m.put("n", m.get("n") + 1)

            return body

        rt1.run_transaction(bump(m1))
        cluster.crash_sequencer()
        rt2.run_transaction(bump(m2))
        assert m1.get("n") == m2.get("n") == 2

    def test_client_crash_leaves_recoverable_log(self, cluster):
        """A client that vanishes mid-append (hole) does not wedge
        anyone: the hole is filled and playback continues."""
        rt1 = TangoRuntime(cluster, client_id=1)
        m1 = TangoMap(rt1, oid=1)
        m1.put("a", 1)
        # Simulate a crashed client that reserved an offset for stream 1
        # and died before writing.
        cluster.sequencer().increment(stream_ids=(1,))
        m1.put("b", 2)
        assert m1.get("b") == 2
        fresh = TangoMap(TangoRuntime(cluster, client_id=3), oid=1)
        assert fresh.get("a") == 1 and fresh.get("b") == 2


class TestSharedObjectAcrossServices:
    def test_two_services_share_one_object(self, make_client):
        """Figure 5(c): different services, one common free list."""
        rt_sched, d_sched = make_client()
        rt_backup, d_backup = make_client()
        free_s = d_sched.open(TangoList, "free")
        log_s = d_sched.open(TangoList, "sched-log")
        free_b = d_backup.open(TangoList, "free")
        done_b = d_backup.open(TangoList, "backups")
        free_s.append("node-1")
        # The backup service takes the node, works, and returns it.
        node = free_b.take_head()
        assert node == "node-1"

        def put_back():
            free_b.append(node)
            done_b.append(node)

        rt_backup.run_transaction(put_back)
        # The scheduler sees it back, and never saw the backup log.
        assert free_s.to_list() == ("node-1",)
        assert not rt_sched.is_hosted(done_b.oid)


class TestConsistentSnapshots:
    def test_cross_object_snapshot_at_offset(self, make_client):
        rt, directory = make_client()
        a = directory.open(TangoRegister, "a")
        b = directory.open(TangoRegister, "b")
        offsets = []
        for i in range(5):
            def both(i=i):
                a.write(i)
                b.write(i)

            rt.run_transaction(both)
            offsets.append(rt.version_of(a.oid))
        # Any snapshot offset shows a == b (they changed atomically).
        _rt2, d2 = make_client()
        for offset in offsets:
            a2 = d2.open(TangoRegister, "a")
            b2 = d2.open(TangoRegister, "b")
            a2.sync_to(offset)
            b2.sync_to(offset)
            assert a2._state == b2._state
            break  # one fresh client per offset would need new runtimes


class TestFullLifecycle:
    def test_write_checkpoint_gc_recover_transact(self, make_client):
        """The whole arc: build state, checkpoint, trim, recover, keep
        transacting."""
        rt, directory = make_client()
        m = directory.open(TangoMap, "state")
        for i in range(30):
            m.put(f"k{i}", i)
        rt.checkpoint_and_forget(m.oid, directory)
        rt.checkpoint_and_forget(directory.oid, directory)
        assert directory.gc() > 0

        _rt2, d2 = make_client()
        recovered = d2.open(TangoMap, "state")
        assert recovered.size() == 30

        recovered.put("k30", 30)
        assert m.get("k30") == 30  # old view keeps in sync too
