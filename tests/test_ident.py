"""Seedable identity generation (repro.util.ident).

Client ids and BookKeeper writer tokens must be pinnable so
deterministic-replay tests produce identical logs run-to-run (the
violation tangolint TL003 flagged in the seed code).
"""

import threading

from repro.corfu.cluster import CorfuCluster
from repro.tango.runtime import TangoRuntime
from repro.util.ident import IdentitySource, default_source, seed_identities


def test_seeded_sources_are_reproducible():
    a, b = IdentitySource(seed=7), IdentitySource(seed=7)
    assert [a.client_id() for _ in range(5)] == [b.client_id() for _ in range(5)]
    assert a.writer_token() == b.writer_token()


def test_different_seeds_diverge():
    a, b = IdentitySource(seed=1), IdentitySource(seed=2)
    assert [a.client_id() for _ in range(3)] != [b.client_id() for _ in range(3)]


def test_client_id_shape():
    source = IdentitySource(seed=3)
    for _ in range(100):
        cid = source.client_id()
        assert 1 <= cid < 2**31
        assert cid & 1 or cid != 0  # never zero (tx ids embed it)


def test_seed_identities_pins_runtime_client_ids():
    seed_identities(1234)
    first = TangoRuntime(CorfuCluster())._client_id
    seed_identities(1234)
    second = TangoRuntime(CorfuCluster())._client_id
    assert first == second


def test_default_source_is_process_wide():
    assert default_source() is default_source()


def test_thread_safety_no_duplicates_under_contention():
    source = IdentitySource(seed=99)
    out = []
    lock = threading.Lock()

    def draw():
        got = [source.client_id() for _ in range(200)]
        with lock:
            out.extend(got)

    threads = [threading.Thread(target=draw) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(out) == 800
