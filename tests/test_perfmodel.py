"""Sanity tests for the testbed performance model.

These are fast, coarse checks that the model's calibrated anchors
actually hold (the full curves live in ``benchmarks/``): the sequencer
plateau, the single-client read/write rates, the log-saturation shape.
"""

import pytest

from repro.bench.perfmodel import DEFAULT_PARAMS, ModeledCluster
from repro.bench import experiments as E
from repro.sim.engine import Counter, Simulator


class TestCostPaths:
    def test_sequencer_rpc_sub_millisecond(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=1)
        assert cluster.sequencer_rpc(0) < 1e-3

    def test_append_offsets_stripe(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=1)
        _d1, o1 = cluster.append_entry(0)
        _d2, o2 = cluster.append_entry(0)
        assert o2 == o1 + 1

    def test_append_costs_more_than_read(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=1)
        read = cluster.linearizable_read(0)
        append, _ = cluster.append_entry(0)
        assert append > read

    def test_playback_scales_with_records(self):
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=1)
        one = cluster.playback_records(0, 1)
        sim2 = Simulator()
        cluster2 = ModeledCluster(sim2, num_clients=1)
        many = cluster2.playback_records(0, 100)
        # Fixed per-hop latency amortizes; the variable part scales.
        assert many > one * 20


class TestCalibrationAnchors:
    def test_fig2_plateau_near_570k(self):
        rows = E.fig2_sequencer(client_counts=(32,), duration=0.02, warmup=0.005)
        assert rows[0]["kreq_per_sec"] == pytest.approx(570, rel=0.05)

    def test_fig2_small_client_counts_linear(self):
        rows = E.fig2_sequencer(client_counts=(1, 2, 4), duration=0.02, warmup=0.005)
        r1, r2, r4 = (r["kreq_per_sec"] for r in rows)
        assert r2 == pytest.approx(2 * r1, rel=0.1)
        assert r4 == pytest.approx(4 * r1, rel=0.1)

    def test_write_only_anchor_38k(self):
        rows = E.fig8_single_view(
            write_ratios=(1.0,), windows=(256,), duration=0.03, warmup=0.01
        )
        # The anchor is 38K at steady state; the shortened test run
        # tolerates some warmup inflation.
        assert rows[0]["kops_per_sec"] == pytest.approx(38, rel=0.25)

    def test_read_only_anchor(self):
        """135K+ sub-millisecond reads/sec on a single view."""
        rows = E.fig8_single_view(
            write_ratios=(0.0,), windows=(32,), duration=0.03, warmup=0.01
        )
        assert rows[0]["kops_per_sec"] > 100
        assert rows[0]["latency_ms"] < 1.0

    def test_elasticity_small_log_saturates(self):
        rows = E.fig8_elasticity(
            reader_counts=(4, 16), duration=0.03, warmup=0.01
        )
        by = {(r["log"], r["readers"]): r["reads_kops"] for r in rows}
        # The big log scales ~linearly; the small log stops short.
        assert by[("18-server", 16)] > 3.5 * by[("18-server", 4)]
        assert by[("2-server", 16)] < 3.0 * by[("2-server", 4)]

    def test_partitions_saturate_small_log(self):
        rows = E.fig10_partitions(
            node_counts=(18,), duration=0.03, warmup=0.01
        )
        by = {r["log"]: r["ktx_per_sec"] for r in rows}
        assert by["6-server"] == pytest.approx(150, rel=0.1)
        assert by["18-server"] > by["6-server"]

    def test_fig9_playback_bottleneck(self):
        """Full replication stops scaling; goodput ordering holds."""
        rows = E.fig9_tx_goodput(
            node_counts=(2, 8),
            key_counts=(100, 1_000_000),
            distributions=("uniform",),
            duration=0.03,
            warmup=0.01,
        )
        by = {(r["keys"], r["nodes"]): r for r in rows}
        # 4x the nodes buys much less than 4x the throughput.
        assert (
            by[(100, 8)]["ktx_per_sec"] < 2.5 * by[(100, 2)]["ktx_per_sec"]
        )
        # More keys -> higher goodput.
        assert (
            by[(1_000_000, 2)]["goodput_pct"] > by[(100, 2)]["goodput_pct"]
        )

    def test_fig9_zipf_worse_than_uniform(self):
        rows = E.fig9_tx_goodput(
            node_counts=(3,),
            key_counts=(10_000,),
            distributions=("zipf", "uniform"),
            duration=0.03,
            warmup=0.01,
        )
        by = {r["distribution"]: r["goodput_pct"] for r in rows}
        assert by["zipf"] < by["uniform"]
        assert by["uniform"] > 90

    def test_fig10_cross_partition_degrades_gracefully(self):
        rows = E.fig10_cross_partition(
            cross_pcts=(0, 100), duration=0.03, warmup=0.01
        )
        by = {r["cross_pct"]: r for r in rows}
        # Both protocols lose throughput, neither collapses.
        for proto in ("tango_ktx", "twopl_ktx"):
            assert by[100][proto] < by[0][proto]
            assert by[100][proto] > 0.25 * by[0][proto]

    def test_fig10_shared_object_knee(self):
        rows = E.fig10_shared_object(
            shared_pcts=(0, 2, 100), duration=0.03, warmup=0.01
        )
        by = {r["shared_pct"]: r["ktx_per_sec"] for r in rows}
        assert by[2] < by[0]  # immediate drop
        assert by[100] < by[2]  # then keeps degrading
