"""Tests for client-driven chain replication."""

import pytest

from repro.corfu.layout import ReplicaSet
from repro.corfu.replication import ChainReplicator
from repro.corfu.storage import FlashUnit
from repro.errors import (
    NodeDownError,
    TrimmedError,
    UnwrittenError,
    WrittenError,
)


@pytest.fixture
def units():
    return {name: FlashUnit(name) for name in ("a", "b", "c")}


@pytest.fixture
def chain(units):
    return ChainReplicator(lambda name: units[name])


@pytest.fixture
def rset():
    return ReplicaSet(("a", "b", "c"))


class TestWrite:
    def test_write_reaches_every_replica(self, chain, rset, units):
        chain.write(rset, 0, b"data", epoch=0)
        for unit in units.values():
            assert unit.read(0, epoch=0) == b"data"

    def test_head_arbitrates_races(self, chain, rset):
        chain.write(rset, 0, b"winner", epoch=0)
        with pytest.raises(WrittenError):
            chain.write(rset, 0, b"loser", epoch=0)
        assert chain.read(rset, 0, epoch=0) == b"winner"

    def test_winner_tolerates_repaired_suffix(self, chain, rset, units):
        """A reader may repair the suffix while the winner is mid-chain;
        the winner must treat downstream WrittenError as success."""
        units["a"].write(0, b"v", epoch=0)
        units["b"].write(0, b"v", epoch=0)  # repaired by a reader
        # Simulate the winner continuing: a second write call finds the
        # head already written by itself... instead test the repair path
        # directly: read completes the chain.
        assert chain.read(rset, 0, epoch=0) == b"v"
        units["c"].read(0, epoch=0)  # now written by repair

    def test_divergent_mid_chain_data_detected(self, chain, rset, units):
        """If a mid-chain replica somehow holds different bytes than the
        head winner wrote, the write surfaces the divergence loudly."""
        units["b"].write(0, b"DIFFERENT", epoch=0)
        with pytest.raises(AssertionError):
            chain.write(rset, 0, b"head-value", epoch=0)


class TestWritePipelined:
    def test_pipelined_reaches_every_replica(self, chain, rset, units):
        writes = [(i, f"v{i}".encode()) for i in range(10)]
        results = chain.write_pipelined(rset, writes, epoch=0)
        assert results == {i: None for i in range(10)}
        for address, data in writes:
            for unit in units.values():
                assert unit.read(address, epoch=0) == data

    def test_lost_head_race_reported_per_address(self, chain, rset):
        chain.write(rset, 3, b"winner", epoch=0)
        writes = [(i, b"mine") for i in range(6)]
        results = chain.write_pipelined(rset, writes, epoch=0)
        assert isinstance(results[3], WrittenError)
        assert all(results[i] is None for i in range(6) if i != 3)
        # The loser never overwrote the winner anywhere on the chain.
        assert chain.read(rset, 3, epoch=0) == b"winner"

    def test_maybe_mine_absorbs_own_earlier_delivery(self, chain, rset, units):
        # An earlier attempt landed the head write for address 2 but the
        # ack was lost; the retry must treat it as its own.
        units["a"].write(2, b"mine", epoch=0)
        writes = [(i, b"mine") for i in range(5)]
        results = chain.write_pipelined(
            rset, writes, epoch=0, maybe_mine=frozenset({2})
        )
        assert all(outcome is None for outcome in results.values())
        assert chain.read(rset, 2, epoch=0) == b"mine"

    def test_without_maybe_mine_identical_bytes_still_lose(self, chain, rset, units):
        """Identical bytes at the head are only 'ours' when the caller
        asserts a retry is in progress — first attempts must not adopt
        a stranger's entry that happens to match."""
        units["a"].write(2, b"mine", epoch=0)
        results = chain.write_pipelined(
            rset, [(i, b"mine") for i in range(4)], epoch=0
        )
        assert isinstance(results[2], WrittenError)

    def test_dead_suffix_reports_every_address(self, chain, rset, units):
        units["b"].crash()
        results = chain.write_pipelined(
            rset, [(i, b"v") for i in range(4)], epoch=0
        )
        assert all(
            isinstance(outcome, NodeDownError) for outcome in results.values()
        )

    def test_divergent_suffix_detected(self, chain, rset, units):
        units["b"].write(1, b"DIFFERENT", epoch=0)
        results = chain.write_pipelined(
            rset, [(i, b"head-value") for i in range(3)], epoch=0
        )
        assert isinstance(results[1], AssertionError)
        assert results[0] is None and results[2] is None

    def test_single_node_chain_falls_back(self, chain, units):
        solo = ReplicaSet(("a",))
        results = chain.write_pipelined(solo, [(0, b"x"), (1, b"y")], epoch=0)
        assert results == {0: None, 1: None}
        assert units["a"].read(0, epoch=0) == b"x"

    def test_window_one_still_exactly_once(self, chain, rset, units):
        writes = [(i, f"w{i}".encode()) for i in range(12)]
        results = chain.write_pipelined(rset, writes, epoch=0, window=1)
        assert all(outcome is None for outcome in results.values())
        for address, data in writes:
            assert chain.read(rset, address, epoch=0) == data


class TestRead:
    def test_read_hole_raises_unwritten(self, chain, rset):
        with pytest.raises(UnwrittenError):
            chain.read(rset, 0, epoch=0)

    def test_read_repairs_inflight_write(self, chain, rset, units):
        """Tail unwritten + head written = in-flight; reader completes it."""
        units["a"].write(0, b"v", epoch=0)
        assert chain.read(rset, 0, epoch=0) == b"v"
        # The repair wrote the rest of the chain.
        assert units["b"].read(0, epoch=0) == b"v"
        assert units["c"].read(0, epoch=0) == b"v"

    def test_read_from_tail_when_complete(self, chain, rset, units):
        chain.write(rset, 0, b"v", epoch=0)
        before = units["c"].reads
        chain.read(rset, 0, epoch=0)
        assert units["c"].reads == before + 1

    def test_single_node_chain(self, chain, units):
        solo = ReplicaSet(("a",))
        chain.write(solo, 0, b"v", epoch=0)
        assert chain.read(solo, 0, epoch=0) == b"v"
        with pytest.raises(UnwrittenError):
            chain.read(solo, 1, epoch=0)


class TestTrimRacesInflightWrite:
    """GC reclaiming an offset while its write is still mid-chain must
    surface as the normal trimmed outcome, not a raw mid-chain error."""

    def test_read_maps_trimmed_head_to_trimmed(self, chain, rset, units):
        # Head landed, suffix didn't, then a trim reclaimed the head.
        units["a"].write(0, b"v", epoch=0)
        units["a"].trim(0, epoch=0)
        with pytest.raises(TrimmedError):
            chain.read(rset, 0, epoch=0)

    def test_read_maps_trim_during_repair_to_trimmed(self, chain, rset, units):
        # The repair target was trimmed between the head read and the
        # suffix copy.
        units["a"].write(0, b"v", epoch=0)
        units["b"].trim(0, epoch=0)
        with pytest.raises(TrimmedError):
            chain.read(rset, 0, epoch=0)

    def test_read_many_maps_trimmed_head_to_trimmed(self, chain, rset, units):
        chain.write(rset, 0, b"keep", epoch=0)
        units["a"].write(1, b"v", epoch=0)
        units["a"].trim(1, epoch=0)
        results = chain.read_many(rset, [0, 1], epoch=0)
        assert results[0] == ("ok", b"keep")
        assert results[1] == ("trimmed", None)

    def test_read_many_maps_trim_during_repair_to_trimmed(
        self, chain, rset, units
    ):
        units["a"].write(1, b"v", epoch=0)
        units["b"].trim(1, epoch=0)
        results = chain.read_many(rset, [1], epoch=0)
        assert results[1] == ("trimmed", None)


class TestIsWritten:
    def test_owned_at_head(self, chain, rset, units):
        assert not chain.is_written(rset, 0, epoch=0)
        units["a"].write(0, b"v", epoch=0)
        # In-flight writes count as owned.
        assert chain.is_written(rset, 0, epoch=0)


class TestTrim:
    def test_trim_everywhere(self, chain, rset, units):
        chain.write(rset, 0, b"v", epoch=0)
        chain.trim(rset, 0, epoch=0)
        for unit in units.values():
            assert unit.trims >= 1

    def test_trim_prefix_everywhere(self, chain, rset, units):
        for addr in range(4):
            chain.write(rset, addr, b"v", epoch=0)
        chain.trim_prefix(rset, 3, epoch=0)
        for unit in units.values():
            assert unit.local_tail() == 4


class TestFailures:
    def test_dead_node_propagates(self, chain, rset, units):
        units["b"].crash()
        with pytest.raises(NodeDownError):
            chain.write(rset, 0, b"v", epoch=0)

    def test_dead_tail_fails_read(self, chain, rset, units):
        chain.write(rset, 0, b"v", epoch=0)
        units["c"].crash()
        with pytest.raises(NodeDownError):
            chain.read(rset, 0, epoch=0)
