"""Tests for client-driven chain replication."""

import pytest

from repro.corfu.layout import ReplicaSet
from repro.corfu.replication import ChainReplicator
from repro.corfu.storage import FlashUnit
from repro.errors import NodeDownError, UnwrittenError, WrittenError


@pytest.fixture
def units():
    return {name: FlashUnit(name) for name in ("a", "b", "c")}


@pytest.fixture
def chain(units):
    return ChainReplicator(lambda name: units[name])


@pytest.fixture
def rset():
    return ReplicaSet(("a", "b", "c"))


class TestWrite:
    def test_write_reaches_every_replica(self, chain, rset, units):
        chain.write(rset, 0, b"data", epoch=0)
        for unit in units.values():
            assert unit.read(0, epoch=0) == b"data"

    def test_head_arbitrates_races(self, chain, rset):
        chain.write(rset, 0, b"winner", epoch=0)
        with pytest.raises(WrittenError):
            chain.write(rset, 0, b"loser", epoch=0)
        assert chain.read(rset, 0, epoch=0) == b"winner"

    def test_winner_tolerates_repaired_suffix(self, chain, rset, units):
        """A reader may repair the suffix while the winner is mid-chain;
        the winner must treat downstream WrittenError as success."""
        units["a"].write(0, b"v", epoch=0)
        units["b"].write(0, b"v", epoch=0)  # repaired by a reader
        # Simulate the winner continuing: a second write call finds the
        # head already written by itself... instead test the repair path
        # directly: read completes the chain.
        assert chain.read(rset, 0, epoch=0) == b"v"
        units["c"].read(0, epoch=0)  # now written by repair

    def test_divergent_mid_chain_data_detected(self, chain, rset, units):
        """If a mid-chain replica somehow holds different bytes than the
        head winner wrote, the write surfaces the divergence loudly."""
        units["b"].write(0, b"DIFFERENT", epoch=0)
        with pytest.raises(AssertionError):
            chain.write(rset, 0, b"head-value", epoch=0)


class TestRead:
    def test_read_hole_raises_unwritten(self, chain, rset):
        with pytest.raises(UnwrittenError):
            chain.read(rset, 0, epoch=0)

    def test_read_repairs_inflight_write(self, chain, rset, units):
        """Tail unwritten + head written = in-flight; reader completes it."""
        units["a"].write(0, b"v", epoch=0)
        assert chain.read(rset, 0, epoch=0) == b"v"
        # The repair wrote the rest of the chain.
        assert units["b"].read(0, epoch=0) == b"v"
        assert units["c"].read(0, epoch=0) == b"v"

    def test_read_from_tail_when_complete(self, chain, rset, units):
        chain.write(rset, 0, b"v", epoch=0)
        before = units["c"].reads
        chain.read(rset, 0, epoch=0)
        assert units["c"].reads == before + 1

    def test_single_node_chain(self, chain, units):
        solo = ReplicaSet(("a",))
        chain.write(solo, 0, b"v", epoch=0)
        assert chain.read(solo, 0, epoch=0) == b"v"
        with pytest.raises(UnwrittenError):
            chain.read(solo, 1, epoch=0)


class TestIsWritten:
    def test_owned_at_head(self, chain, rset, units):
        assert not chain.is_written(rset, 0, epoch=0)
        units["a"].write(0, b"v", epoch=0)
        # In-flight writes count as owned.
        assert chain.is_written(rset, 0, epoch=0)


class TestTrim:
    def test_trim_everywhere(self, chain, rset, units):
        chain.write(rset, 0, b"v", epoch=0)
        chain.trim(rset, 0, epoch=0)
        for unit in units.values():
            assert unit.trims >= 1

    def test_trim_prefix_everywhere(self, chain, rset, units):
        for addr in range(4):
            chain.write(rset, addr, b"v", epoch=0)
        chain.trim_prefix(rset, 3, epoch=0)
        for unit in units.values():
            assert unit.local_tail() == 4


class TestFailures:
    def test_dead_node_propagates(self, chain, rset, units):
        units["b"].crash()
        with pytest.raises(NodeDownError):
            chain.write(rset, 0, b"v", epoch=0)

    def test_dead_tail_fails_read(self, chain, rset, units):
        chain.write(rset, 0, b"v", epoch=0)
        units["c"].crash()
        with pytest.raises(NodeDownError):
            chain.read(rset, 0, epoch=0)
