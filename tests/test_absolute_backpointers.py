"""Functional coverage for the absolute backpointer format.

The relative format overflows when a stream's previous entry is more
than 64K entries back (section 5). Appending 64K+ entries per test is
wasteful, so these tests shrink the overflow threshold via monkeypatch
and drive the *real* append/sync machinery through the absolute-format
paths: sparse streams whose every header uses 8-byte absolute pointers.
"""

import pytest

import repro.corfu.entry as entry_module
from repro.corfu import CorfuCluster
from repro.streams import StreamClient


@pytest.fixture
def tiny_delta(monkeypatch):
    """Pretend relative deltas overflow beyond 8 entries."""
    monkeypatch.setattr(entry_module, "_MAX_RELATIVE_DELTA", 8)


class TestAbsoluteFormatEndToEnd:
    def test_sparse_stream_uses_absolute_headers(self, tiny_delta):
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        client = cluster.client()
        client.append(b"sparse-0", stream_ids=(1,))  # offset 0
        for i in range(20):  # 20 entries of other traffic
            client.append(b"noise-%d" % i, stream_ids=(2,))
        offset = client.append(b"sparse-1", stream_ids=(1,))  # offset 21
        header = client.read(offset).header_for(1)
        assert header.is_absolute
        assert header.backpointers == (0,)

    def test_sync_walks_absolute_pointers(self, tiny_delta):
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        writer = StreamClient(cluster.client())
        expected = []
        for i in range(4):
            expected.append(writer.append(b"sparse-%d" % i, (1,)))
            for j in range(12):  # force every delta to overflow
                writer.append(b"noise", (2,))
        reader = StreamClient(cluster.client())
        reader.open_stream(1)
        reader.sync(1)
        got = []
        while True:
            item = reader.readnext(1)
            if item is None:
                break
            got.append(item[0])
        assert got == expected

    def test_mixed_dense_and_sparse_regions(self, tiny_delta):
        """A stream that alternates between bursts (relative headers)
        and long silences (absolute headers) syncs correctly."""
        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        writer = StreamClient(cluster.client())
        expected = []
        for burst in range(3):
            for i in range(5):  # dense burst: relative deltas fit
                expected.append(writer.append(b"burst", (1,)))
            for j in range(15):  # silence: next header goes absolute
                writer.append(b"noise", (2,))
        reader = StreamClient(cluster.client())
        reader.open_stream(1)
        reader.sync(1)
        got = []
        while True:
            item = reader.readnext(1)
            if item is None:
                break
            got.append(item[0])
        assert got == expected

    def test_absolute_pointer_count_is_k_over_4(self, tiny_delta):
        cluster = CorfuCluster(num_sets=3, replication_factor=2, k=8)
        client = cluster.client()
        for i in range(3):
            client.append(b"s-%d" % i, stream_ids=(1,))
            for j in range(12):
                client.append(b"noise", stream_ids=(2,))
        offset = client.append(b"s-last", stream_ids=(1,))
        header = client.read(offset).header_for(1)
        assert header.is_absolute
        assert len(header.backpointers) == 2  # K/4 = 8/4

    def test_failover_rebuild_with_absolute_headers(self, tiny_delta):
        from repro.corfu import reconfig

        cluster = CorfuCluster(num_sets=3, replication_factor=2)
        client = cluster.client()
        client.append(b"sparse", stream_ids=(1,))
        for i in range(20):
            client.append(b"noise", stream_ids=(2,))
        client.append(b"sparse-2", stream_ids=(1,))
        cluster.crash_sequencer()
        new = reconfig.replace_sequencer(cluster)
        _, streams = cluster.sequencer(new.sequencer).query(
            stream_ids=(1,), epoch=new.epoch
        )
        assert tuple(streams[1]) == (21, 0)
