"""Tests for the dynamic hosting registry (section 4.1's dynamic scheme)."""

import pytest

from repro.objects import TangoList, TangoMap
from repro.tango.hosting import HostingRegistry


REGISTRY_OID = 90


class TestRegistryObject:
    def test_announce_and_query(self, make_runtime):
        rt = make_runtime()
        reg = HostingRegistry(rt, oid=REGISTRY_OID)
        reg.announce("client-a", [1, 2, 3])
        assert reg.hosted_by("client-a") == (1, 2, 3)
        assert reg.clients() == ("client-a",)

    def test_announce_accumulates(self, make_runtime):
        rt = make_runtime()
        reg = HostingRegistry(rt, oid=REGISTRY_OID)
        reg.announce("c", [1])
        reg.announce("c", [2])
        assert reg.hosted_by("c") == (1, 2)

    def test_retract(self, make_runtime):
        rt = make_runtime()
        reg = HostingRegistry(rt, oid=REGISTRY_OID)
        reg.announce("c", [1, 2])
        reg.retract("c", [1])
        assert reg.hosted_by("c") == (2,)

    def test_retract_last_oid_drops_client(self, make_runtime):
        rt = make_runtime()
        reg = HostingRegistry(rt, oid=REGISTRY_OID)
        reg.announce("c", [1])
        reg.retract("c", [1])
        assert reg.clients() == ()

    def test_leave(self, make_runtime):
        rt = make_runtime()
        reg = HostingRegistry(rt, oid=REGISTRY_OID)
        reg.announce("c", [1, 2, 3])
        reg.leave("c")
        assert reg.hosted_by("c") == ()

    def test_replicated_across_clients(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        r1 = HostingRegistry(rt1, oid=REGISTRY_OID)
        r2 = HostingRegistry(rt2, oid=REGISTRY_OID)
        r1.announce("client-a", [1])
        assert r2.hosted_by("client-a") == (1,)

    def test_checkpoint_round_trip(self, make_runtime):
        rt1, rt2 = make_runtime(), make_runtime()
        r1 = HostingRegistry(rt1, oid=REGISTRY_OID)
        r1.announce("c", [1, 2])
        rt1.query_helper(REGISTRY_OID)
        clone = HostingRegistry(rt2, oid=REGISTRY_OID + 1)
        clone.load_checkpoint(r1.get_checkpoint())
        assert clone._hosts == {"c": {1, 2}}


class TestNeedsDecision:
    def _registry(self, make_runtime):
        rt = make_runtime()
        reg = HostingRegistry(rt, oid=REGISTRY_OID)
        return rt, reg

    def test_no_other_clients(self, make_runtime):
        _rt, reg = self._registry(make_runtime)
        reg.announce("me", [1, 2])
        reg.clients()  # sync the view
        assert not reg.needs_decision([1], [2], "me")

    def test_consumer_with_full_read_set(self, make_runtime):
        _rt, reg = self._registry(make_runtime)
        reg.announce("other", [1, 2])
        reg.clients()
        assert not reg.needs_decision([1], [2], "me")

    def test_consumer_missing_read_set(self, make_runtime):
        """The Figure 6 situation: App2 hosts C (write) but not A (read)."""
        _rt, reg = self._registry(make_runtime)
        reg.announce("app2", [2, 3])  # hosts B and C
        reg.clients()
        assert reg.needs_decision([1], [3], "app1")  # reads A, writes C

    def test_consumer_not_hosting_writes_is_irrelevant(self, make_runtime):
        _rt, reg = self._registry(make_runtime)
        reg.announce("bystander", [7, 8])
        reg.clients()
        assert not reg.needs_decision([1], [2], "me")


class TestRuntimeIntegration:
    def test_dynamic_scheme_adds_decision_records(self, make_runtime):
        """No static marks anywhere; the registry alone triggers the
        decision record, and the consumer applies via it."""
        rt1, rt2 = make_runtime(), make_runtime()
        reg1 = HostingRegistry(rt1, oid=REGISTRY_OID)
        private = TangoMap(rt1, oid=1)  # NOT statically marked
        shared1 = TangoList(rt1, oid=2)
        shared2 = TangoList(rt2, oid=2)
        reg1.announce(rt1.name, [1, 2])
        reg1.announce(rt2.name, [2])  # rt2 hosts the write set only
        reg1.clients()
        rt1.use_hosting_registry(reg1)
        private.put("gate", "open")
        private.get("gate")

        def guarded():
            if private.get("gate") == "open":
                shared1.append("item")

        rt1.run_transaction(guarded)
        assert rt1.stats["decisions_published"] == 1
        assert shared2.to_list() == ("item",)

    def test_dynamic_scheme_skips_unneeded_decisions(self, make_runtime):
        """When every consumer hosts the read set, no decision record."""
        rt1, rt2 = make_runtime(), make_runtime()
        reg1 = HostingRegistry(rt1, oid=REGISTRY_OID)
        m1 = TangoMap(rt1, oid=1)
        l1 = TangoList(rt1, oid=2)
        TangoMap(rt2, oid=1)
        TangoList(rt2, oid=2)
        reg1.announce(rt1.name, [1, 2])
        reg1.announce(rt2.name, [1, 2])
        reg1.clients()
        rt1.use_hosting_registry(reg1)
        m1.put("k", 1)
        m1.get("k")

        def tx():
            _ = m1.get("k")
            l1.append("x")

        rt1.run_transaction(tx)
        assert rt1.stats["decisions_published"] == 0

    def test_static_marks_still_respected(self, make_runtime):
        """The union semantics: a static mark forces the decision even
        if the registry thinks nobody needs it."""

        class Marked(TangoMap):
            needs_decision_record = True

        rt1 = make_runtime()
        reg1 = HostingRegistry(rt1, oid=REGISTRY_OID)
        reg1.clients()
        rt1.use_hosting_registry(reg1)
        marked = Marked(rt1, oid=1)
        lst = TangoList(rt1, oid=2)
        marked.put("k", 1)
        marked.get("k")

        def tx():
            _ = marked.get("k")
            lst.append("x")

        rt1.run_transaction(tx)
        assert rt1.stats["decisions_published"] == 1
