"""Tests for repro.store: segments, compaction, migration, admin plane."""

import os
import struct

import pytest

from repro.corfu.durable import DurableFlashUnit, open_durable_cluster
from repro.errors import TrimmedError, WrittenError
from repro.store import (
    CompactionPolicy,
    Compactor,
    SegmentedFlashUnit,
    SegmentStore,
)
from repro.store.segment import (
    FRAME,
    OP_SEAL,
    OP_TRIM,
    OP_TRIM_PREFIX,
    OP_WRITE,
    pack_frame,
    read_flat_log,
)


def small_store(tmp_path, segment_bytes=256, name="store"):
    return SegmentStore(str(tmp_path / name), segment_bytes=segment_bytes)


class TestSegmentStore:
    def test_frames_survive_reopen(self, tmp_path):
        store = small_store(tmp_path)
        store.append_frame(OP_WRITE, 0, 1, b"one")
        store.append_frame(OP_WRITE, 0, 2, b"two")
        store.close()
        reopened = small_store(tmp_path)
        frames = list(reopened.replay())
        assert frames == [(OP_WRITE, 0, 1, b"one"), (OP_WRITE, 0, 2, b"two")]
        reopened.close()

    def test_rolls_and_seals_at_segment_size(self, tmp_path):
        store = small_store(tmp_path, segment_bytes=128)
        for addr in range(20):
            store.append_frame(OP_WRITE, 0, addr, b"x" * 16)
        usage = store.usage(lambda addr: False)
        assert usage["segments"] > 1
        # At most one segment (the active one) may be unsealed.
        assert usage["sealed_segments"] >= usage["segments"] - 1
        store.close()

    def test_replay_order_preserved_across_rolls(self, tmp_path):
        store = small_store(tmp_path, segment_bytes=128)
        for addr in range(30):
            store.append_frame(OP_WRITE, 0, addr, b"p" * 8)
        store.close()
        reopened = small_store(tmp_path, segment_bytes=128)
        addrs = [address for _op, _e, address, _d in reopened.replay()]
        assert addrs == list(range(30))
        reopened.close()

    def test_torn_active_tail_truncated(self, tmp_path, caplog):
        store = small_store(tmp_path)
        store.append_frame(OP_WRITE, 0, 7, b"whole")
        store.close()
        seg = [
            p
            for p in os.listdir(store.directory)
            if p.startswith("seg-") and p.endswith(".seg")
        ]
        assert len(seg) == 1
        with open(os.path.join(store.directory, seg[0]), "ab") as f:
            f.write(b"\x57\x01\x02")  # half a frame header
        with caplog.at_level("WARNING", logger="repro.store.segment"):
            reopened = small_store(tmp_path)
        assert any("torn" in r.message for r in caplog.records)
        assert list(reopened.replay()) == [(OP_WRITE, 0, 7, b"whole")]
        # The tear was truncated: appends keep the file parseable.
        reopened.append_frame(OP_WRITE, 0, 8, b"after")
        reopened.close()
        final = small_store(tmp_path)
        assert [a for _o, _e, a, _d in final.replay()] == [7, 8]
        final.close()

    def test_sealed_footer_crc_detects_corruption(self, tmp_path, caplog):
        store = small_store(tmp_path, segment_bytes=64)
        for addr in range(6):
            store.append_frame(OP_WRITE, 0, addr, b"d" * 12)
        store.close()
        sealed = store.sealed_segments()[0]
        # Flip one payload byte inside the sealed segment body.
        with open(sealed.path, "r+b") as f:
            f.seek(40)
            byte = f.read(1)
            f.seek(40)
            f.write(bytes([byte[0] ^ 0xFF]))
        with caplog.at_level("WARNING", logger="repro.store.segment"):
            reopened = small_store(tmp_path, segment_bytes=64)
        assert any("footer mismatch" in r.message for r in caplog.records)
        reopened.close()

    def test_crashed_tmp_file_removed(self, tmp_path):
        store = small_store(tmp_path)
        store.append_frame(OP_WRITE, 0, 1, b"x")
        store.close()
        tmp = os.path.join(store.directory, "seg-0000000000000099-00000001.seg.tmp")
        with open(tmp, "wb") as f:
            f.write(b"partial compaction output")
        reopened = small_store(tmp_path)
        assert not os.path.exists(tmp)
        reopened.close()

    def test_winner_selection_drops_stale_inputs(self, tmp_path):
        """A crash after rename but before input deletion self-repairs."""
        store = small_store(tmp_path, segment_bytes=64)
        for addr in range(8):
            store.append_frame(OP_WRITE, 0, addr, b"v" * 12)
        store.seal_active()
        targets = store.sealed_segments()[:2]
        stale_paths = [t.path for t in targets]
        # Simulate the crash: copy inputs aside, rewrite, restore inputs.
        saved = {p: open(p, "rb").read() for p in stale_paths}
        store.rewrite_segments(
            targets, keep=lambda addr: addr % 2 == 0, preamble=[]
        )
        store.close()
        for path, raw in saved.items():
            with open(path, "wb") as f:
                f.write(raw)
        reopened = small_store(tmp_path, segment_bytes=64)
        # The resurrected originals are recognized as superseded and gone.
        assert not any(os.path.exists(p) for p in stale_paths)
        replayed = {a for op, _e, a, _d in reopened.replay() if op == OP_WRITE}
        assert {0, 2, 4, 6}.issubset(replayed)
        assert 1 not in replayed and 3 not in replayed
        reopened.close()

    def test_rewrite_preserves_preamble_state(self, tmp_path):
        store = small_store(tmp_path, segment_bytes=64)
        for addr in range(6):
            store.append_frame(OP_WRITE, 3, addr, b"q" * 12)
        store.seal_active()
        targets = store.sealed_segments()
        preamble = [(OP_SEAL, 3, 0, b""), (OP_TRIM_PREFIX, 3, 4, b"")]
        store.rewrite_segments(targets, keep=lambda a: a >= 4, preamble=preamble)
        store.close()
        reopened = small_store(tmp_path, segment_bytes=64)
        frames = list(reopened.replay())
        assert frames[0] == (OP_SEAL, 3, 0, b"")
        assert frames[1] == (OP_TRIM_PREFIX, 3, 4, b"")
        assert {a for op, _e, a, _d in frames if op == OP_WRITE} <= {4, 5}
        reopened.close()


class TestCompactionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(min_garbage_ratio=0.0)
        with pytest.raises(ValueError):
            CompactionPolicy(min_dead_bytes=0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_batch_segments=0)

    def test_fully_dead_neighbors_are_absorbed(self, tmp_path):
        """Tiny fully-dead segments merge into an adjacent eligible run.

        A rewrite output decays to preamble-plus-dead-frames as the trim
        horizon advances; alone it never clears ``min_dead_bytes``, so
        it must ride along with a neighbor or files accrete forever.
        """
        unit = SegmentedFlashUnit(
            "u",
            str(tmp_path / "u.store"),
            segment_bytes=512,
            policy=CompactionPolicy(min_garbage_ratio=0.3, min_dead_bytes=200),
        )
        # Segment 1: two small writes (~74 dead bytes once trimmed —
        # below the byte floor, so never eligible by itself).
        unit.write(0, b"a" * 16, epoch=0)
        unit.write(1, b"b" * 16, epoch=0)
        unit.store.seal_active()
        # Segment 2: bulk writes, mostly trimmed (clearly eligible).
        for addr in range(2, 8):
            unit.write(addr, b"c" * 48, epoch=0)
        unit.store.seal_active()
        unit.trim_prefix(7, epoch=0)  # kills 0..6; address 7 stays live
        stats = unit.compact()
        assert stats["segments_compacted"] == 2  # both, merged as one run
        assert stats["segments_written"] == 1
        # One compacted output + the active segment holding the trim.
        assert unit.store.file_count() == 2
        assert unit.read(7, epoch=0) == b"c" * 48
        # A preamble-only survivor alone never re-triggers (no churn).
        assert unit.compact()["segments_compacted"] == 0
        unit.close()

    def test_fully_dead_segment_alone_does_not_trigger(self, tmp_path):
        unit = SegmentedFlashUnit(
            "u",
            str(tmp_path / "u.store"),
            segment_bytes=128,
            policy=CompactionPolicy(min_garbage_ratio=0.3, min_dead_bytes=200),
        )
        unit.write(0, b"a" * 16, epoch=0)
        unit.write(1, b"b" * 16, epoch=0)
        unit.store.seal_active()
        unit.trim_prefix(2, epoch=0)  # fully dead, but only ~74 bytes
        assert unit.compact()["segments_compacted"] == 0
        unit.close()


class TestSegmentedFlashUnit:
    def unit(self, tmp_path, **kwargs):
        kwargs.setdefault("segment_bytes", 256)
        return SegmentedFlashUnit("u", str(tmp_path / "u.store"), **kwargs)

    def test_mutations_survive_reopen(self, tmp_path):
        unit = self.unit(tmp_path)
        unit.write(5, b"persisted", epoch=0)
        unit.write(6, b"doomed", epoch=0)
        unit.trim(6, epoch=0)
        unit.close()
        reopened = self.unit(tmp_path)
        assert reopened.read(5, epoch=0) == b"persisted"
        with pytest.raises(TrimmedError):
            reopened.read(6, epoch=0)
        with pytest.raises(WrittenError):
            reopened.write(5, b"again", epoch=0)
        reopened.close()

    def test_compaction_reclaims_trimmed_prefix(self, tmp_path):
        unit = self.unit(
            tmp_path,
            policy=CompactionPolicy(min_garbage_ratio=0.3, min_dead_bytes=64),
        )
        for addr in range(40):
            unit.write(addr, b"b" * 32, epoch=0)
        unit.trim_prefix(36, epoch=0)
        unit.store.seal_active()
        before = unit.store_status()
        stats = unit.compact()
        after = unit.store_status()
        assert stats["segments_compacted"] > 0
        assert stats["bytes_reclaimed"] > 0
        assert after["disk_bytes"] < before["disk_bytes"]
        assert after["garbage_ratio"] < before["garbage_ratio"]
        # Live data still readable, trimmed data still trimmed.
        assert unit.read(38, epoch=0) == b"b" * 32
        with pytest.raises(TrimmedError):
            unit.read(3, epoch=0)
        unit.close()
        # And the compacted state round-trips through recovery.
        reopened = self.unit(tmp_path)
        assert reopened.read(38, epoch=0) == b"b" * 32
        with pytest.raises(TrimmedError):
            reopened.read(3, epoch=0)
        reopened.close()

    def test_compaction_preserves_seal_epoch(self, tmp_path):
        unit = self.unit(
            tmp_path,
            policy=CompactionPolicy(min_garbage_ratio=0.3, min_dead_bytes=64),
        )
        for addr in range(20):
            unit.write(addr, b"s" * 32, epoch=0)
        unit.seal(7)
        unit.trim_prefix(18, epoch=7)
        unit.store.seal_active()
        unit.compact()
        unit.close()
        reopened = self.unit(tmp_path)
        assert reopened.epoch == 7
        reopened.close()

    def test_compaction_noop_below_thresholds(self, tmp_path):
        unit = self.unit(tmp_path)
        for addr in range(10):
            unit.write(addr, b"n" * 16, epoch=0)
        unit.store.seal_active()
        stats = unit.compact()  # nothing trimmed: nothing eligible
        assert stats["segments_compacted"] == 0
        assert unit.compactor.counters()["noop_runs"] == 1
        unit.close()

    def test_background_compaction_thread(self, tmp_path):
        unit = self.unit(
            tmp_path,
            policy=CompactionPolicy(min_garbage_ratio=0.3, min_dead_bytes=64),
        )
        for addr in range(40):
            unit.write(addr, b"t" * 32, epoch=0)
        unit.trim_prefix(36, epoch=0)
        unit.store.seal_active()
        unit.start_compaction(interval=0.01)
        deadline = 200
        while unit.compactor.counters()["runs"] == 0 and deadline:
            import time

            time.sleep(0.01)
            deadline -= 1
        unit.stop_compaction()
        assert unit.compactor.counters()["runs"] > 0
        unit.close()

    def test_migrates_flat_file(self, tmp_path):
        flat = str(tmp_path / "legacy.flash")
        legacy = DurableFlashUnit("u", flat)
        for addr in range(12):
            legacy.write(addr, b"m%d" % addr, epoch=0)
        legacy.trim(2, epoch=0)
        legacy.seal(1)
        legacy.close()
        unit = SegmentedFlashUnit(
            "u", str(tmp_path / "u.store"), migrate_flat=flat
        )
        # Identical replayed contents...
        for addr in range(12):
            if addr == 2:
                with pytest.raises(TrimmedError):
                    unit.read(addr, epoch=1)
            else:
                assert unit.read(addr, epoch=1) == b"m%d" % addr
        assert unit.epoch == 1
        # ...and the migration retired the flat file, never to repeat.
        assert not os.path.exists(flat)
        assert os.path.exists(flat + ".migrated")
        unit.close()

    def test_store_status_shape(self, tmp_path):
        unit = self.unit(tmp_path)
        unit.write(0, b"s", epoch=0)
        status = unit.store_status()
        assert status["kind"] == "segmented"
        assert status["segments"] >= 1
        assert status["pages"] == 1
        assert "garbage_ratio" in status and "compaction" in status
        unit.close()


class TestFlatFormatCompatibility:
    def test_flat_log_reader_matches_durable_unit(self, tmp_path):
        """The old flat format stays readable with identical contents."""
        flat = str(tmp_path / "unit.flash")
        unit = DurableFlashUnit("u", flat)
        unit.write(0, b"alpha", epoch=0)
        unit.write(1, b"beta", epoch=0)
        unit.trim(0, epoch=0)
        unit.close()
        frames = read_flat_log(flat)
        assert frames == [
            (OP_WRITE, 0, 0, b"alpha"),
            (OP_WRITE, 0, 1, b"beta"),
            (OP_TRIM, 0, 0, b""),
        ]

    def test_unknown_op_stops_flat_parse(self, tmp_path, caplog):
        flat = str(tmp_path / "unit.flash")
        with open(flat, "wb") as f:
            f.write(pack_frame(OP_WRITE, 0, 1, b"ok"))
            f.write(struct.pack("<BQQI", 0x7A, 0, 0, 0))  # bogus op 'z'
        with caplog.at_level("WARNING", logger="repro.store.segment"):
            frames = read_flat_log(flat)
        assert frames == [(OP_WRITE, 0, 1, b"ok")]
        assert any("unknown frame op" in r.message for r in caplog.records)


class TestDurableClusterIntegration:
    def test_segmented_is_default_and_survives_restart(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        cluster = open_durable_cluster(
            data_dir, num_sets=2, replication_factor=2
        )
        client = cluster.client()
        for i in range(9):
            client.append(b"entry-%d" % i, stream_ids=(1,))
        # Segment directories, not flat files.
        stores = [n for n in os.listdir(data_dir) if n.endswith(".store")]
        assert stores, os.listdir(data_dir)
        reopened = open_durable_cluster(
            data_dir, num_sets=2, replication_factor=2
        )
        client2 = reopened.client()
        assert client2.read(4).payload == b"entry-4"
        assert client2.append(b"post", stream_ids=(1,)) == 9

    def test_flat_cluster_migrates_to_segments(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        flat_cluster = open_durable_cluster(
            data_dir, num_sets=2, replication_factor=2, segmented=False
        )
        client = flat_cluster.client()
        for i in range(7):
            client.append(b"old-%d" % i, stream_ids=(1,))
        migrated = open_durable_cluster(
            data_dir, num_sets=2, replication_factor=2
        )
        client2 = migrated.client()
        for i in range(7):
            assert client2.read(i).payload == b"old-%d" % i
        # The flat files were retired in place.
        assert not any(n.endswith(".flash") for n in os.listdir(data_dir))
        assert any(n.endswith(".flash.migrated") for n in os.listdir(data_dir))

    def test_cluster_store_status_aggregates(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        cluster = open_durable_cluster(
            data_dir, num_sets=2, replication_factor=2
        )
        client = cluster.client()
        for i in range(4):  # touch every replica set
            client.append(b"x%d" % i, stream_ids=(1,))
        status = cluster.store_status()
        assert status["nodes"]
        assert status["segments"] >= len(status["nodes"])
        assert all(
            node["kind"] == "segmented" for node in status["nodes"].values()
        )

    def test_client_admin_rpcs(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        cluster = open_durable_cluster(
            data_dir, num_sets=2, replication_factor=2
        )
        client = cluster.client()
        client.append(b"x", stream_ids=(1,))
        nodes = client.store_status()
        assert nodes and all("error" not in v for v in nodes.values())
        compacted = client.compact()
        assert set(nodes) == set(compacted)
        # Idempotent: a second sweep with no new garbage is a no-op.
        again = client.compact()
        assert all(v["segments_compacted"] == 0 for v in again.values())
