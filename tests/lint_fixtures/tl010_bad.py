"""TL010 bad: guarded attribute read without holding its lock."""

import threading


class GuardedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1  # establishes the guard

    def peek(self):
        return self._count  # unlocked read of a guarded attribute
