"""TL008 good: None defaults, constructed per call."""


def open_runtime(cluster, hosted_oids=None, options=None):
    hosted_oids = list(hosted_oids or [])
    options = dict(options or {})
    hosted_oids.append(0)
    return (cluster, hosted_oids, options)


def make_batch(records=None, *, tags=()):
    return (set(records or ()), list(tags))
