"""TL012 good: blocking work happens outside the critical section."""

import threading
import time


class PatientWorker:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = 0

    def drain(self):
        with self._lock:
            self._pending += 1
        time.sleep(0.0)  # sleep after releasing the lock

    def try_escalate(self):
        acquired = self._lock.acquire(blocking=False)
        if acquired:
            self._lock.release()
        return acquired
