"""TL011 good: both paths honor the same lock order (alpha, then beta)."""

import threading


class OrderedPair:
    def __init__(self):
        self._alpha = threading.Lock()
        self._beta = threading.Lock()

    def forward(self):
        with self._alpha:
            with self._beta:
                pass

    def also_forward(self):
        with self._alpha:
            with self._beta:
                pass
