"""TL011 bad: two locks acquired in opposite orders (ABBA deadlock)."""

import threading


class AbbaPair:
    def __init__(self):
        self._alpha = threading.Lock()
        self._beta = threading.Lock()

    def forward(self):
        with self._alpha:
            with self._beta:
                pass

    def backward(self):
        with self._beta:
            with self._alpha:
                pass
