"""TL001 bad: a mutator writes the view directly instead of via apply."""


class TangoObject:
    pass


class BadCounter(TangoObject):
    def __init__(self, runtime, oid):
        self._value = 0
        self._runtime = runtime

    def apply(self, payload, offset):
        self._value += 1

    def increment(self):
        # Application thread mutating the view: replicas diverge.
        self._value += 1

    def reset(self):
        self._value = 0

    def drop(self):
        del self._value
