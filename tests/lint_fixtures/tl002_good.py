"""TL002 good: accessors sync before reading the view."""


class TangoObject:
    pass


class FreshRegister(TangoObject):
    def __init__(self, runtime, oid):
        self._stored = None
        self._runtime = runtime

    def apply(self, payload, offset):
        self._stored = payload

    def _query(self):
        self._runtime.query_helper(0)

    def read(self):
        self._query()
        return self._stored

    def read_upto(self, offset):
        self._runtime.query_helper(0, upto=offset)
        return self._stored
