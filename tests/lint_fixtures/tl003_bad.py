"""TL003 bad: ambient nondeterminism on replay paths."""

import json
import random
import time


class TangoObject:
    pass


class FlakyObject(TangoObject):
    def __init__(self, runtime, oid):
        self._entries = {}
        self._runtime = runtime

    def apply(self, payload, offset):
        # Wall clock and unseeded randomness inside the apply upcall:
        # every replica computes a different view.
        self._entries[time.time()] = payload
        self._entries[random.getrandbits(16)] = offset

    def get_checkpoint(self):
        keys = []
        for key in set(self._entries):
            keys.append(key)
        return json.dumps(keys).encode("utf-8")
