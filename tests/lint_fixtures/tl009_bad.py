"""TL009 bad: a projection-aware client issuing unguarded RPCs.

This is the shape of the real ``CorfuClient.trim`` gap: every other
public operation ran the retry loop, but trim called straight through
to the chain, so a trim racing a reconfiguration leaked SealedError to
the application's GC driver.
"""


class Client:
    def __init__(self, cluster):
        self._cluster = cluster
        self._projection = cluster.projection
        self._chain = cluster.chain

    def refresh_projection(self):
        self._projection = self._cluster.projection

    def trim(self, offset):
        rset, address = self._projection.map_offset(offset)
        # No retry loop: SealedError / NodeDownError / RpcTimeout all
        # escape to the caller.
        self._chain.trim(rset, address, self._projection.epoch)

    def check(self):
        while True:
            try:
                return self._cluster.sequencer.query((), epoch=self._projection.epoch)
            except SealedError:
                # Handles the seal but not dead nodes or timeouts.
                self.refresh_projection()


class SealedError(Exception):
    pass
