"""TL005 good: only write() installs pages; trims delete, never store."""


class WriteOnceUnit:
    def __init__(self, name):
        self._pages = {}
        self._epoch = 0

    def _check_epoch(self, epoch):
        if epoch < self._epoch:
            raise RuntimeError("sealed")

    def write(self, address, data, epoch):
        self._check_epoch(epoch)
        if address in self._pages:
            raise RuntimeError("written")
        self._pages[address] = data

    def trim(self, address, epoch):
        self._check_epoch(epoch)
        self._pages.pop(address, None)

    def read(self, address, epoch):
        self._check_epoch(epoch)
        return self._pages[address]
