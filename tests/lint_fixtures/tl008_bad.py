"""TL008 bad: mutable defaults shared across every call and client."""


def open_runtime(cluster, hosted_oids=[], options={}):
    hosted_oids.append(0)
    return (cluster, hosted_oids, options)


def make_batch(records=set(), *, tags=list()):
    return (records, tags)
