"""TL004 bad: a storage handler mutates state before checking the epoch."""


class LeakyUnit:
    def __init__(self, name):
        self._pages = {}
        self._epoch = 0

    def write(self, address, data, epoch):
        # Installs the page first; a request from a sealed epoch lands
        # anyway and the log forks.
        self._pages[address] = data
        if epoch < self._epoch:
            raise RuntimeError("sealed")

    def trim(self, address, epoch):
        # Never validates the epoch at all.
        self._pages.pop(address, None)
