"""TL005 bad: pages installed outside the guarded write path."""


class OverwritingUnit:
    def __init__(self, name):
        self._pages = {}
        self._epoch = 0

    def _check_epoch(self, epoch):
        if epoch < self._epoch:
            raise RuntimeError("sealed")

    def write(self, address, data, epoch):
        self._check_epoch(epoch)
        if address in self._pages:
            raise RuntimeError("written")
        self._pages[address] = data

    def patch(self, address, data, epoch):
        # Bypasses the write-once check: silently overwrites committed
        # data, breaking chain replication's race arbitration.
        self._check_epoch(epoch)
        self._pages[address] = data

    def reset(self):
        self._pages = {}
