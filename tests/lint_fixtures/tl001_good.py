"""TL001 good: mutators route through update_helper; apply owns the view."""

import json


class TangoObject:
    pass


class GoodCounter(TangoObject):
    def __init__(self, runtime, oid):
        self._value = 0
        self._runtime = runtime
        self._local_cursor = 0  # soft state, not part of the view

    def apply(self, payload, offset):
        self._value += json.loads(payload.decode("utf-8"))["n"]

    def _update(self, payload):
        self._runtime.update_helper(0, payload)

    def _query(self):
        self._runtime.query_helper(0)

    def increment(self, n=1):
        self._update(json.dumps({"op": "add", "n": n}).encode("utf-8"))
        self._local_cursor += 1

    def value(self):
        self._query()
        return self._value
