"""TL009 good: public RPC entry points run the standard retry path."""


class SealedError(Exception):
    pass


class NodeDownError(Exception):
    pass


class RpcTimeout(Exception):
    pass


class Client:
    def __init__(self, cluster):
        self._cluster = cluster
        self._projection = cluster.projection
        self._chain = cluster.chain

    def refresh_projection(self):
        self._projection = self._cluster.projection

    def trim(self, offset):
        for attempt in range(32):
            rset, address = self._projection.map_offset(offset)
            try:
                self._chain.trim(rset, address, self._projection.epoch)
                return
            except SealedError:
                self.refresh_projection()
            except NodeDownError:
                self.refresh_projection()
            except RpcTimeout:
                self._backoff(attempt)
        raise RuntimeError("retries exhausted")

    def tail(self):
        # A broad protocol-base catch that reacts (rather than
        # swallowing silently) also satisfies the discipline.
        while True:
            try:
                return self._sequencer().query((), epoch=self._projection.epoch)
            except CorfuError:
                self.refresh_projection()

    def _append_once(self, payload):
        # Private helpers may propagate: the public retry loop that
        # calls them owns the error handling.
        offset = self._sequencer().increment((), epoch=self._projection.epoch)
        rset, address = self._projection.map_offset(offset)
        self._chain.write(rset, address, payload, self._projection.epoch)
        return offset

    def _sequencer(self):
        return self._cluster.sequencer

    def _backoff(self, attempt):
        del attempt


class CorfuError(Exception):
    pass
