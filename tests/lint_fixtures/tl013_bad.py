"""TL013 bad: locks created outside __init__ or reassigned later."""

import threading


class ResettingQueue:
    def __init__(self):
        self._lock = threading.Lock()

    def reset(self):
        self._lock = threading.Lock()  # reassigned: old holders race new ones

    def grow(self):
        self._spare = threading.Lock()  # created outside __init__
