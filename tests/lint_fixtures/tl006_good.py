"""TL006 good: retry loops react to the specific protocol errors."""


class WrittenError(Exception):
    pass


class SealedError(Exception):
    pass


def append_with_retry(client, payload):
    while True:
        try:
            return client.append(payload)
        except WrittenError:
            continue  # lost the race: retry with a fresh offset
        except SealedError:
            client.refresh_projection()  # reconfigured: catch up


def guarded(client):
    try:
        return client.check()
    except Exception:
        # Broad catch outside a retry loop that re-raises is fine.
        client.log_failure()
        raise
