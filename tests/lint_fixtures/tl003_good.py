"""TL003 good: injected seeds, sorted iteration, no ambient clocks."""

import json
import random


class TangoObject:
    pass


class SteadyObject(TangoObject):
    def __init__(self, runtime, oid, seed=0):
        self._entries = {}
        self._runtime = runtime
        self._rng = random.Random(seed)  # seeded: deterministic

    def apply(self, payload, offset):
        self._entries[offset] = payload

    def get_checkpoint(self):
        keys = []
        for key in sorted(set(self._entries)):
            keys.append(key)
        return json.dumps(keys).encode("utf-8")
