"""TL004 good: every epoch-carrying handler validates before mutating."""


class SealedError(Exception):
    pass


class GuardedUnit:
    def __init__(self, name):
        self._pages = {}
        self._epoch = 0

    def _check_epoch(self, epoch):
        if epoch < self._epoch:
            raise SealedError(self._epoch)

    def write(self, address, data, epoch):
        self._check_epoch(epoch)
        if address in self._pages:
            raise RuntimeError("written")
        self._pages[address] = data

    def trim(self, address, epoch):
        self._check_epoch(epoch)
        self._pages.pop(address, None)

    def seal(self, epoch):
        if epoch <= self._epoch:
            raise SealedError(self._epoch)
        self._epoch = epoch
