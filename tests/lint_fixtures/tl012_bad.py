"""TL012 bad: blocking calls inside a critical section."""

import threading
import time


class SleepyWorker:
    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()

    def drain(self):
        with self._lock:
            time.sleep(0.01)  # every contender waits out the sleep

    def escalate(self):
        with self._lock:
            self._aux.acquire()  # blocking acquire under a held lock
            self._aux.release()
