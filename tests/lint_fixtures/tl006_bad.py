"""TL006 bad: retry loops that blind-catch protocol errors."""


def append_forever(client, payload):
    while True:
        try:
            return client.append(payload)
        except Exception:
            # SealedError never reaches the reconfiguration logic: the
            # client spins against a dead configuration forever.
            continue


def read_all(client, tail):
    out = []
    for offset in range(tail):
        try:
            out.append(client.read(offset))
        except:  # noqa: E722
            pass
    return out
