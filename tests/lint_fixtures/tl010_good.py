"""TL010 good: every access to the guarded attribute holds the lock."""

import threading


class SteadyGuardedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        with self._lock:
            return self._count

    def _bump_locked(self):
        # The *_locked suffix asserts the caller already holds the lock.
        self._count += 1
