"""TL007 good: explicit length-prefixed encoding for log payloads."""

import json
import struct

_U32 = struct.Struct("<I")


def encode_entry(record):
    body = json.dumps(record).encode("utf-8")
    return _U32.pack(len(body)) + body


def decode_entry(payload):
    (length,) = _U32.unpack_from(payload, 0)
    return json.loads(payload[4 : 4 + length].decode("utf-8"))
