"""TL002 bad: an accessor returns view state without syncing first."""


class TangoObject:
    pass


class StaleRegister(TangoObject):
    def __init__(self, runtime, oid):
        self._stored = None
        self._runtime = runtime

    def apply(self, payload, offset):
        self._stored = payload

    def read(self):
        # No self._query() / query_helper first: arbitrarily stale.
        return self._stored
