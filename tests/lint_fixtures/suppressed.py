"""Suppression fixtures: findings silenced by inline comments."""


class TangoObject:
    pass


class SuppressedCounter(TangoObject):
    def __init__(self, runtime, oid):
        self._value = 0
        self._runtime = runtime

    def apply(self, payload, offset):
        self._value += 1

    def rebuild_cache(self):
        # Hand-verified: runs only under the play lock during recovery.
        self._value = 0  # tangolint: disable=TL001

    def rebuild_cache_long_line(self):
        # tangolint: disable-next-line=TL001
        self._value = 0

    def blanket(self):
        self._value = 0  # tangolint: disable
