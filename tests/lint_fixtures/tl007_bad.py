"""TL007 bad: implicit serializers and code-executing decodes."""

import pickle
from marshal import dumps


def encode_entry(record):
    return pickle.dumps(record)


def decode_entry(payload):
    return eval(payload.decode("utf-8"))  # noqa: S307
