"""TL000: files the engine cannot parse still produce a diagnostic."""

def broken(:
    pass
