"""Figure 2: sequencer throughput vs number of clients.

Paper: "as we add clients to the system, sequencer throughput increases
until it plateaus at around 570K requests/sec."
"""

from repro.bench.experiments import fig2_sequencer, fig2_sharded

CLIENTS = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40)


def test_fig2_sequencer_throughput(benchmark, show):
    rows = benchmark.pedantic(
        fig2_sequencer,
        kwargs={"client_counts": CLIENTS, "duration": 0.03, "warmup": 0.01},
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 2: sequencer throughput (paper plateau ~570K req/s)",
        rows,
        columns=("clients", "kreq_per_sec", "paper_plateau_kreq"),
    )
    # Shape assertions: monotone rise to a plateau near 570K.
    plateau = rows[-1]["kreq_per_sec"]
    assert 0.9 * 570 <= plateau <= 1.1 * 570
    small = rows[0]["kreq_per_sec"]
    assert small < plateau / 4
    # Saturation: the last three points are within a few percent.
    tail = [r["kreq_per_sec"] for r in rows[-3:]]
    assert max(tail) - min(tail) < 0.05 * plateau


def test_fig2_sharded_breaks_the_ceiling(benchmark, show):
    """Sharding the sequencer by stream group scales past Fig. 2's plateau."""
    rows = benchmark.pedantic(
        fig2_sharded,
        kwargs={
            "shard_counts": (1, 4),
            "client_counts": (1, 8, 40),
            "duration": 0.03,
            "warmup": 0.01,
        },
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 2, sharded: plateau vs sequencer shard count",
        rows,
        columns=("shards", "clients", "kreq_per_sec", "paper_plateau_kreq"),
    )
    plateau = {
        shards: max(
            r["kreq_per_sec"] for r in rows if r["shards"] == shards
        )
        for shards in (1, 4)
    }
    # One shard is bit-for-bit the classic dense counter: same plateau.
    assert 0.9 * 570 <= plateau[1] <= 1.1 * 570
    # Four shards clear at least 2x the single-counter ceiling.
    assert plateau[4] >= 2.0 * plateau[1]
