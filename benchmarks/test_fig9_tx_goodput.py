"""Figure 9: transactions on one fully replicated TangoMap.

Paper: "Figure 9 shows transaction throughput and goodput (i.e.,
committed transactions) on a single TangoMap object as we vary the
degree of contention (by increasing the number of keys within the map)
and increase the number of nodes hosting views of the object. ... For 3
nodes, transaction goodput is low with tens or hundreds of keys but
reaches 99% of throughput in the uniform case and 70% in the zipf case
with 10K keys or higher. Transaction throughput hits a maximum with
three nodes and stays constant as more nodes are added; this illustrates
the playback bottleneck."
"""

from repro.bench.experiments import fig9_tx_goodput

NODES = (2, 3, 4, 5, 6, 7, 8)
KEYS = (10, 100, 1_000, 10_000, 100_000, 1_000_000)


def test_fig9_throughput_and_goodput(benchmark, show):
    rows = benchmark.pedantic(
        fig9_tx_goodput,
        kwargs={
            "node_counts": NODES,
            "key_counts": KEYS,
            "distributions": ("zipf", "uniform"),
            "duration": 0.04,
            "warmup": 0.01,
        },
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 9: fully replicated TangoMap "
        "(paper: goodput 99% uniform / 70% zipf at 10K+ keys; "
        "throughput capped by playback)",
        rows,
        columns=(
            "distribution",
            "keys",
            "nodes",
            "ktx_per_sec",
            "goodput_ktx",
            "goodput_pct",
        ),
    )
    by = {(r["distribution"], r["keys"], r["nodes"]): r for r in rows}
    # Playback bottleneck: 4x nodes buys nowhere near 4x throughput.
    t2 = by[("uniform", 100_000, 2)]["ktx_per_sec"]
    t8 = by[("uniform", 100_000, 8)]["ktx_per_sec"]
    assert t8 < 2.5 * t2
    # Contention: goodput rises with key count, for both distributions.
    for dist in ("zipf", "uniform"):
        low = by[(dist, 10, 3)]["goodput_pct"]
        high = by[(dist, 1_000_000, 3)]["goodput_pct"]
        assert high > low
    # Uniform reaches near-total goodput at 10K keys; zipf stays lower.
    assert by[("uniform", 10_000, 3)]["goodput_pct"] > 90
    assert (
        by[("zipf", 10_000, 3)]["goodput_pct"]
        < by[("uniform", 10_000, 3)]["goodput_pct"]
    )
