"""Microbenchmarks of the real (functional-layer) code paths.

These measure the actual Python implementation with pytest-benchmark:
shared-log appends and reads, stream sync, object mutators/accessors,
and transaction commit. They complement the model-driven figure
benchmarks by keeping the implementation itself honest (a regression
here is a real slowdown, not a model change).
"""

import pytest

from repro.corfu import CorfuCluster
from repro.objects import TangoMap, TangoRegister
from repro.streams import StreamClient
from repro.tango.runtime import TangoRuntime


@pytest.fixture
def cluster():
    return CorfuCluster(num_sets=9, replication_factor=2)


def test_corfu_append(benchmark, cluster):
    client = cluster.client()
    payload = b"x" * 256
    benchmark(client.append, payload, (1,))


def test_corfu_read(benchmark, cluster):
    client = cluster.client()
    offset = client.append(b"x" * 256, (1,))
    benchmark(client.read, offset)


def test_corfu_check(benchmark, cluster):
    client = cluster.client()
    client.append(b"x")
    benchmark(client.check)


def test_stream_sync_incremental(benchmark, cluster):
    sclient = StreamClient(cluster.client())
    sclient.open_stream(1)
    for i in range(50):
        sclient.append(b"e%d" % i, (1,))
    sclient.sync(1)

    def sync_after_one_append():
        sclient.append(b"new", (1,))
        sclient.sync(1)

    benchmark(sync_after_one_append)


def test_register_write_and_read(benchmark, cluster):
    rt = TangoRuntime(cluster, client_id=1)
    reg = TangoRegister(rt, oid=1)

    def write_read():
        reg.write(42)
        return reg.read()

    benchmark(write_read)


def test_map_transaction_commit(benchmark, cluster):
    rt = TangoRuntime(cluster, client_id=1)
    m = TangoMap(rt, oid=1)
    m.put("k0", 0)
    m.get("k0")
    counter = [0]

    def tx():
        counter[0] += 1
        i = counter[0]

        def body():
            _ = m.get(f"k{i % 8}")
            m.put(f"k{(i + 1) % 8}", i)

        rt.run_transaction(body)

    benchmark(tx)


def test_map_linearizable_get(benchmark, cluster):
    rt = TangoRuntime(cluster, client_id=1)
    m = TangoMap(rt, oid=1)
    for i in range(100):
        m.put(f"k{i}", i)
    m.get("k0")
    benchmark(m.get, "k50")


def test_fresh_view_replay_100_entries(benchmark, cluster):
    writer_rt = TangoRuntime(cluster, client_id=1)
    writer = TangoMap(writer_rt, oid=1)
    for i in range(100):
        writer.put(f"k{i}", i)
    ids = iter(range(100, 100000))

    def replay():
        rt = TangoRuntime(cluster, client_id=next(ids))
        fresh = TangoMap(rt, oid=1)
        return fresh.size()

    assert benchmark(replay) == 100
