"""Figure 10 (right): transactions on an object shared by all nodes.

Paper: "each node in a 4-node setup hosts a view of a different TangoMap
as in the previous experiment, but also hosts a view for a common
TangoMap shared across all the nodes ... For some percentage of
transactions, the node reads and writes both its own object as well as
the shared object; we double this percentage on the x-axis, and
throughput falls sharply going from 0% to 1%, after which it degrades
gracefully."
"""

from repro.bench.experiments import fig10_shared_object

PCTS = (0, 1, 2, 4, 8, 16, 32, 64, 100)


def test_fig10_right_shared_object(benchmark, show):
    rows = benchmark.pedantic(
        fig10_shared_object,
        kwargs={"shared_pcts": PCTS, "duration": 0.04, "warmup": 0.01},
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 10 right: shared-object transactions "
        "(paper: sharp fall 0->1%, then graceful degradation)",
        rows,
        columns=("shared_pct", "ktx_per_sec", "latency_ms"),
    )
    by = {r["shared_pct"]: r["ktx_per_sec"] for r in rows}
    # The knee: introducing shared transactions costs throughput
    # immediately (decision-record stalls on every consumer)...
    assert by[1] < by[0]
    assert by[2] < 0.9 * by[0]
    # ...then the tail degrades gradually and monotonically.
    assert by[100] < by[32] < by[8]
    # Latency balloons as the stall pipeline deepens.
    lat = {r["shared_pct"]: r["latency_ms"] for r in rows}
    assert lat[100] > 4 * lat[0]
