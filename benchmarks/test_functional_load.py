"""Functional-layer load benchmark: the implementation's own speed.

Complements the model-driven figure benchmarks: these numbers are real
Python wall-clock throughput for the full stack (runtime, streams,
chain replication, OCC), the baseline a downstream user would see and
the regression guard for implementation changes.
"""

from repro.bench.loadgen import LoadGenerator, LoadMix


def test_mixed_load_functional(benchmark, show):
    gen = LoadGenerator(
        num_clients=4,
        num_keys=1000,
        mix=LoadMix(reads=0.5, writes=0.3, transactions=0.2),
    )
    report = benchmark.pedantic(gen.run, args=(400,), rounds=1, iterations=1)
    show(
        "Functional load: 4 clients, 50/30/20 read/write/tx mix "
        "(real Python throughput, not the model)",
        report.rows(),
        columns=("op", "ops_per_sec", "p50_ms", "p99_ms"),
    )
    assert sum(report.ops.values()) == 400
    assert report.abort_rate() < 0.5
    # Views converge after the run.
    states = [dict(m.items()) for m in gen.maps]
    assert all(state == states[0] for state in states)


def test_transaction_heavy_load_functional(benchmark, show):
    gen = LoadGenerator(
        num_clients=4,
        num_keys=10_000,
        mix=LoadMix(reads=0, writes=0, transactions=1),
    )
    report = benchmark.pedantic(gen.run, args=(200,), rounds=1, iterations=1)
    show(
        "Functional load: pure 3r+3w transactions, 10K keys",
        report.rows(),
        columns=("op", "ops_per_sec", "p50_ms", "p99_ms"),
    )
    assert report.commits > 0
    assert report.abort_rate() < 0.3
