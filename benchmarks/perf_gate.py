"""perf_gate: measure real-code-path throughput and write BENCH_appends.json.

A standalone, stdlib-only throughput gate (no pytest-benchmark needed):
each scenario runs a closed loop against the actual implementation for
a fixed wall-clock window and reports ops/sec. The JSON artifact checked
in at the repo root gives reviewers a baseline to diff against — a PR
that halves ``corfu_append`` shows up as a number, not a feeling.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_gate.py            # full windows
    PYTHONPATH=src python benchmarks/perf_gate.py --quick    # CI-sized
    PYTHONPATH=src python benchmarks/perf_gate.py --wire     # + real processes
    PYTHONPATH=src python benchmarks/perf_gate.py -o BENCH_appends.json

Composes with the lock sanitizer: ``REPRO_LOCKCHECK=1`` instruments
every lock the scenarios take, so the gate doubles as a concurrency
smoke test (any witnessed lock-order cycle fails the run).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)

from repro.bench.experiments import fig2_sequencer, fig2_sharded  # noqa: E402
from repro.corfu import CorfuCluster  # noqa: E402
from repro.objects import TangoMap, TangoRegister  # noqa: E402
from repro.streams import StreamClient  # noqa: E402
from repro.tango.runtime import TangoRuntime  # noqa: E402

PAYLOAD = b"x" * 256


def _timed_loop(op, window: float, warmup_ops: int = 25) -> dict:
    """Run *op* closed-loop for *window* seconds; return throughput."""
    for _ in range(warmup_ops):
        op()
    count = 0
    start = time.perf_counter()
    deadline = start + window
    now = start
    while now < deadline:
        op()
        count += 1
        now = time.perf_counter()
    elapsed = now - start
    return {
        "ops": count,
        "elapsed_s": round(elapsed, 6),
        "ops_per_sec": round(count / elapsed, 2) if elapsed > 0 else 0.0,
    }


# -- scenarios (each builds its own deployment; nothing shared) ----------


def scenario_corfu_append(window: float) -> dict:
    client = CorfuCluster(num_sets=3, replication_factor=2).client()
    return _timed_loop(lambda: client.append(PAYLOAD, (1,)), window)


def scenario_corfu_append_batch(window: float, batch: int = 16) -> dict:
    client = CorfuCluster(num_sets=3, replication_factor=2).client()
    payloads = [PAYLOAD] * batch
    result = _timed_loop(lambda: client.append_batch(payloads, (1,)), window)
    result["ops"] *= batch  # report per-entry throughput
    result["ops_per_sec"] = round(result["ops_per_sec"] * batch, 2)
    result["batch"] = batch
    return result


def scenario_append_pipelined(window: float, flight: int = 16) -> dict:
    """Pipelined vs synchronous appends on a 3-replica chain.

    Runs on :class:`~repro.net.LatencyTransport` (a fixed wall-time
    cost per RPC) because on pure loopback an RPC is a function call
    and overlapping chain hops is indistinguishable from serializing
    them. The synchronous baseline pays the full chain round trip per
    append; the pipelined side issues a flight of ``append_async``
    calls and waits for all the handles, letting the group-commit
    leader batch them through ``write_pipelined`` so hops overlap
    across replicas. ``speedup`` is the acceptance number (gate:
    >= 1.5x) and ``max_inflight`` is the transport-wide concurrent-
    delivery high-water mark — the direct witness that hops overlapped.
    """
    from repro.net import LatencyTransport

    sync_client = CorfuCluster(
        num_sets=1, replication_factor=3, transport=LatencyTransport()
    ).client()
    sync = _timed_loop(
        lambda: sync_client.append(PAYLOAD, (1,)), window, warmup_ops=5
    )

    pipe_cluster = CorfuCluster(
        num_sets=1, replication_factor=3, transport=LatencyTransport()
    )
    pipe_client = pipe_cluster.client()

    def pipelined_flight():
        futures = [
            pipe_client.append_async(PAYLOAD, (1,)) for _ in range(flight)
        ]
        for fut in futures:
            fut.result()

    result = _timed_loop(pipelined_flight, window, warmup_ops=2)
    result["ops"] *= flight  # report per-entry throughput
    result["ops_per_sec"] = round(result["ops_per_sec"] * flight, 2)
    result["flight"] = flight
    result["sync_ops_per_sec"] = sync["ops_per_sec"]
    result["speedup"] = (
        round(result["ops_per_sec"] / sync["ops_per_sec"], 2)
        if sync["ops_per_sec"]
        else 0.0
    )
    result["max_inflight"] = pipe_cluster.transport.inflight_stats()[
        "max_inflight"
    ]
    return result


def scenario_corfu_read(window: float) -> dict:
    client = CorfuCluster(num_sets=3, replication_factor=2).client()
    offset = client.append(PAYLOAD, (1,))
    return _timed_loop(lambda: client.read(offset), window)


def scenario_corfu_read_many(window: float, batch: int = 16) -> dict:
    client = CorfuCluster(num_sets=3, replication_factor=2).client()
    offsets = [client.append(PAYLOAD, (1,)) for _ in range(batch)]
    result = _timed_loop(lambda: client.read_many(offsets), window)
    result["ops"] *= batch
    result["ops_per_sec"] = round(result["ops_per_sec"] * batch, 2)
    result["batch"] = batch
    return result


def scenario_stream_append_sync(window: float) -> dict:
    sclient = StreamClient(CorfuCluster(num_sets=3, replication_factor=2).client())
    sclient.open_stream(1)

    def append_then_sync():
        sclient.append(b"new", (1,))
        sclient.sync(1)

    return _timed_loop(append_then_sync, window)


def scenario_register_write_read(window: float) -> dict:
    runtime = TangoRuntime(
        CorfuCluster(num_sets=3, replication_factor=2), client_id=1
    )
    register = TangoRegister(runtime, oid=1)

    def write_read():
        register.write(42)
        register.read()

    return _timed_loop(write_read, window)


def scenario_map_tx_commit(window: float) -> dict:
    runtime = TangoRuntime(
        CorfuCluster(num_sets=3, replication_factor=2), client_id=1
    )
    tmap = TangoMap(runtime, oid=1)
    keys = iter(range(1 << 30))

    def tx_commit():
        runtime.begin_tx()
        tmap.put(f"k{next(keys)}", 1)
        assert runtime.end_tx()

    return _timed_loop(tx_commit, window)


def scenario_store_durable_append(window: float) -> dict:
    """Append path of the segment store, plus one compaction sweep.

    Exercises :mod:`repro.store` end to end: framed appends into
    rolling segment files (fsync off — this measures the code path,
    not the device), then a prefix trim over 90% of the history and a
    cluster-wide ``compact`` RPC. The reclaim numbers ride along in the
    artifact so a regression in the compactor shows up next to the
    throughput it protects.
    """
    import shutil
    import tempfile

    from repro.corfu.durable import open_durable_cluster
    from repro.store import CompactionPolicy

    data_dir = tempfile.mkdtemp(prefix="perf_gate_store_")
    try:
        cluster = open_durable_cluster(
            data_dir,
            num_sets=3,
            replication_factor=2,
            segment_bytes=1 << 16,
            sync=False,
            compaction_policy=CompactionPolicy(
                min_garbage_ratio=0.3, min_dead_bytes=1024
            ),
        )
        client = cluster.client()
        result = _timed_loop(lambda: client.append(PAYLOAD, (1,)), window)
        appended = result["ops"] + 25  # warmup ops hold offsets too
        client.trim_prefix(int(appended * 0.9))
        swept = client.compact()
        result["bytes_reclaimed"] = sum(
            node.get("bytes_reclaimed", 0) for node in swept.values()
        )
        status = client.store_status()
        result["segments_after_compaction"] = sum(
            node.get("segments", 0) for node in status.values()
        )
        return result
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def scenario_sequencer_grant(window: float) -> dict:
    cluster = CorfuCluster(num_sets=3, replication_factor=2)
    client = cluster.client()
    result = _timed_loop(lambda: client.check(fast=True), window)

    # Contended variant: 8 threads, one client each, all hammering the
    # same single-shard sequencer. This is the lock-convoy number the
    # sharded sequencer exists to beat; it rides along in the artifact
    # so the two are always diffed together.
    import threading

    contended = CorfuCluster(num_sets=3, replication_factor=2)
    clients = [contended.client(name=f"bench-{i}") for i in range(8)]
    counts = [0] * 8
    stop = threading.Event()

    def worker(i: int) -> None:
        c = clients[i]
        while not stop.is_set():
            c.check(fast=True)
            counts[i] += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(8)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    time.sleep(window)
    stop.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    result["contended_threads"] = 8
    result["contended_ops_per_sec"] = (
        round(sum(counts) / elapsed, 2) if elapsed > 0 else 0.0
    )
    return result


# -- wire scenarios (real OS processes over TCP, --wire only) ------------


def _wire_deployment(timeout: float = 2.0):
    """Launch a 3-storage + sequencer fleet; returns (supervisor, cluster)."""
    from repro.proc import RemoteCluster, Supervisor, cluster_specs

    supervisor = Supervisor(cluster_specs(3, 1)).start()
    cluster = RemoteCluster(
        supervisor.addresses(),
        num_sets=3,
        replication_factor=1,
        timeout=timeout,
    )
    return supervisor, cluster


def scenario_wire_corfu_append(window: float) -> dict:
    supervisor, cluster = _wire_deployment()
    try:
        client = cluster.client()
        result = _timed_loop(lambda: client.append(PAYLOAD, (1,)), window)
        result["processes"] = len(supervisor.addresses())
        return result
    finally:
        cluster.close()
        supervisor.stop()


def scenario_wire_corfu_append_batch(window: float, batch: int = 16) -> dict:
    supervisor, cluster = _wire_deployment()
    try:
        client = cluster.client()
        payloads = [PAYLOAD] * batch
        result = _timed_loop(
            lambda: client.append_batch(payloads, (1,)), window
        )
        result["ops"] *= batch
        result["ops_per_sec"] = round(result["ops_per_sec"] * batch, 2)
        result["batch"] = batch
        result["processes"] = len(supervisor.addresses())
        return result
    finally:
        cluster.close()
        supervisor.stop()


def scenario_wire_corfu_read_many(window: float, batch: int = 16) -> dict:
    supervisor, cluster = _wire_deployment()
    try:
        client = cluster.client()
        offsets = [client.append(PAYLOAD, (1,)) for _ in range(batch)]
        result = _timed_loop(lambda: client.read_many(offsets), window)
        result["ops"] *= batch
        result["ops_per_sec"] = round(result["ops_per_sec"] * batch, 2)
        result["batch"] = batch
        result["processes"] = len(supervisor.addresses())
        return result
    finally:
        cluster.close()
        supervisor.stop()


def scenario_fig2_sequencer(window: float) -> dict:
    """Figure 2 shape on the calibrated model: plateau throughput."""
    rows = fig2_sequencer(
        client_counts=(1, 8, 40), duration=window, warmup=window / 4
    )
    return {
        "clients": [r["clients"] for r in rows],
        "kreq_per_sec": [round(r["kreq_per_sec"], 1) for r in rows],
        "plateau_kreq_per_sec": round(rows[-1]["kreq_per_sec"], 1),
    }


def scenario_fig2_sharded(window: float) -> dict:
    """Figure 2 workload with the sequencer sharded by stream group.

    The calibrated model gives the plateau at 1 and 4 shards (1 shard
    must reproduce ``fig2_sequencer``; 4 shards must clear 2x). A short
    burst against a real 4-shard :class:`CorfuCluster` — single-group
    appends plus a cross-shard multiappend taking a vector grant — rides
    along so ``REPRO_LOCKCHECK=1`` witnesses the shard locks and the
    canonical-order acquisition in the same run.
    """
    rows = fig2_sharded(
        shard_counts=(1, 4),
        client_counts=(1, 8, 40),
        duration=window,
        warmup=window / 4,
    )
    plateau = {
        shards: max(
            round(r["kreq_per_sec"], 1) for r in rows if r["shards"] == shards
        )
        for shards in (1, 4)
    }

    cluster = CorfuCluster(num_sets=3, replication_factor=2, seq_shards=4)
    client = cluster.client()
    sids = iter(range(1 << 30))
    real = _timed_loop(
        lambda: client.append(PAYLOAD, (next(sids) % 4,)), min(window, 0.05)
    )
    client.append(PAYLOAD, (1, 2))  # cross-shard vector grant

    return {
        "shards": 4,
        "plateau_kreq_per_sec": plateau[1],
        "plateau_kreq_per_sec_4shards": plateau[4],
        "shard_speedup": round(plateau[4] / plateau[1], 2),
        "real_4shard_append_ops_per_sec": real["ops_per_sec"],
    }


SCENARIOS = [
    ("corfu_append", scenario_corfu_append),
    ("corfu_append_batch", scenario_corfu_append_batch),
    ("append_pipelined", scenario_append_pipelined),
    ("corfu_read", scenario_corfu_read),
    ("corfu_read_many", scenario_corfu_read_many),
    ("stream_append_sync", scenario_stream_append_sync),
    ("register_write_read", scenario_register_write_read),
    ("map_tx_commit", scenario_map_tx_commit),
    ("store_durable_append", scenario_store_durable_append),
    ("sequencer_grant", scenario_sequencer_grant),
    ("fig2_sequencer", scenario_fig2_sequencer),
    ("fig2_sharded", scenario_fig2_sharded),
]

#: Multi-process scenarios, enabled by --wire: each launches its own
#: 3-storage + sequencer fleet (4 OS processes) and drives it over TCP.
WIRE_SCENARIOS = [
    ("wire_corfu_append", scenario_wire_corfu_append),
    ("wire_corfu_append_batch", scenario_wire_corfu_append_batch),
    ("wire_corfu_read_many", scenario_wire_corfu_read_many),
]


def run(window: float, wire: bool = False, only=None) -> dict:
    lock_monitor = None
    if os.environ.get("REPRO_LOCKCHECK") == "1":
        from repro.tools import lockcheck

        lock_monitor = lockcheck.install()
    results = {}
    scenarios = SCENARIOS + (WIRE_SCENARIOS if wire else [])
    if only:
        unknown = set(only) - {name for name, _ in scenarios}
        if unknown:
            raise SystemExit(f"perf_gate: unknown scenario(s): {sorted(unknown)}")
        scenarios = [(n, s) for n, s in scenarios if n in only]
    for name, scenario in scenarios:
        print(f"perf_gate: {name} ...", file=sys.stderr)
        results[name] = scenario(window)
    payload = {
        "version": 1,
        "window_s": window,
        "python": sys.version.split()[0],
        "lockcheck": lock_monitor is not None,
        "wire": wire,
        "scenarios": results,
    }
    if lock_monitor is not None:
        lock_monitor.assert_acyclic()
        payload["lock_order_edges"] = [
            list(edge) for edge in lock_monitor.edges()
        ]
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_gate", description="Throughput gate over the real code paths."
    )
    parser.add_argument(
        "--quick", action="store_true", help="short windows (CI-sized)"
    )
    parser.add_argument(
        "--window", type=float, default=None, help="seconds per scenario"
    )
    parser.add_argument(
        "--wire",
        action="store_true",
        help="also run the multi-process scenarios (real TCP, 4 processes)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only this scenario (repeatable)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_appends.json",
        help="output path (default: BENCH_appends.json)",
    )
    args = parser.parse_args(argv)
    window = args.window if args.window is not None else (0.05 if args.quick else 0.25)
    payload = run(window, wire=args.wire, only=args.only)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, result in payload["scenarios"].items():
        ops = result.get("ops_per_sec")
        if ops is not None:
            print(f"  {name:>22}: {ops:>12,.0f} ops/s")
        else:
            print(f"  {name:>22}: plateau {result['plateau_kreq_per_sec']} kreq/s")
    print(f"perf_gate: wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
