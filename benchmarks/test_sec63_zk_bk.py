"""Section 6.3 (text): TangoZK and TangoBK on the functional layer.

Paper: "with 18 clients running independent namespaces, we obtain around
200K txes/sec if transactions do not span namespaces, and nearly 20K
txes/sec for transactions that atomically move a file from one namespace
to another. The capability to move files across different instances does
not exist in ZooKeeper. ... Ledger writes directly translate into stream
appends ... we were able to generate over 200K 4KB writes/sec."

These run the real Python implementation, so absolute rates are
Python-speed; the claims under test are structural: cross-namespace
moves cost roughly an order of magnitude more than independent
transactions, moves are atomic and fully visible, and a ledger write is
exactly one shared-log append.
"""

from repro.bench.experiments_functional import sec63_bookkeeper, sec63_zookeeper


def test_sec63_zookeeper_namespaces(benchmark, show):
    rows = benchmark.pedantic(
        sec63_zookeeper,
        kwargs={"clients": 3, "ops_per_client": 120, "moves": 60},
        rounds=1,
        iterations=1,
    )
    show("Section 6.3: TangoZK (functional layer)", rows,
         columns=("metric", "measured", "paper"))
    by = {r["metric"]: r["measured"] for r in rows}
    ratio = by["independent/move rate ratio"]
    # Moves cost a multiple of independent creates (the paper reports
    # ~10x at 18 concurrent clients, where decision-record playback
    # fans out; single-threaded Python shows the per-transaction cost
    # gap without the fan-out amplification).
    assert ratio > 1.5
    assert by["moves visible at destination owner"] == 60


def test_sec63_bookkeeper_ledger(benchmark, show):
    rows = benchmark.pedantic(
        sec63_bookkeeper,
        kwargs={"entries": 300, "entry_bytes": 1024},
        rounds=1,
        iterations=1,
    )
    show("Section 6.3: TangoBK (functional layer)", rows,
         columns=("metric", "measured", "paper"))
    by = {r["metric"]: r["measured"] for r in rows}
    # "Ledger writes directly translate into stream appends": 1 append.
    assert by["log appends per ledger write"] == 1.0
    assert by["ledger writes/sec (functional, Python)"] > 0
