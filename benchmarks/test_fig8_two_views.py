"""Figure 8 (middle): primary/backup with two views.

Paper: "Overall throughput falls sharply as writes are introduced, and
then stays constant at around 40K ops/sec as the workload mix changes;
however, average read latency goes up as writes dominate, reflecting the
extra work the read-only 'backup' node has to perform to catch up with
the 'primary'."
"""

from repro.bench.experiments import fig8_two_views

RATES = (0, 5e3, 10e3, 15e3, 20e3, 25e3, 30e3, 35e3, 40e3)


def test_fig8_middle_primary_backup(benchmark, show):
    rows = benchmark.pedantic(
        fig8_two_views,
        kwargs={"target_write_rates": RATES, "duration": 0.06, "warmup": 0.01},
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 8 middle: primary/backup "
        "(paper: total ~40K once writes dominate; read latency climbs)",
        rows,
        columns=(
            "target_writes_kops",
            "reads_kops",
            "writes_kops",
            "read_latency_ms",
        ),
    )
    by = {r["target_writes_kops"]: r for r in rows}
    # Throughput falls sharply once writes appear...
    assert by[5.0]["reads_kops"] < 0.7 * by[0.0]["reads_kops"]
    # ...read latency rises with the write rate...
    assert by[40.0]["read_latency_ms"] > 2 * by[0.0]["read_latency_ms"]
    # ...and the write side reaches its target until saturation.
    assert by[30.0]["writes_kops"] >= 28
    # Combined throughput under write domination sits near 40K.
    combined = by[40.0]["reads_kops"] + by[40.0]["writes_kops"]
    assert 30 <= combined <= 60
