"""Figure 10 (middle): cross-partition transactions, Tango vs 2PL.

Paper: "We introduce cross-partition transactions that read the local
object but write to both the local as well as a remote object ...
throughput degrades gracefully for both Tango and 2PL as we double the
percentage of cross-partition transactions. ... Our aim is to show that
Tango has scaling characteristics similar to a conventional distributed
protocol while suffering from none of the fault-tolerance problems
endemic to such protocols."
"""

from repro.bench.experiments import fig10_cross_partition

PCTS = (0, 1, 2, 4, 8, 16, 32, 64, 100)


def test_fig10_middle_tango_vs_2pl(benchmark, show):
    rows = benchmark.pedantic(
        fig10_cross_partition,
        kwargs={"cross_pcts": PCTS, "duration": 0.04, "warmup": 0.01},
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 10 middle: cross-partition transactions "
        "(paper: graceful degradation, Tango comparable to 2PL)",
        rows,
        columns=("cross_pct", "tango_ktx", "twopl_ktx"),
    )
    by = {r["cross_pct"]: r for r in rows}
    # Both start from a comparable base (~200K in the paper's setup).
    assert by[0]["tango_ktx"] > 120
    assert 0.5 < by[0]["tango_ktx"] / by[0]["twopl_ktx"] < 2.0
    # Graceful degradation: monotone-ish decline, no collapse.
    for proto in ("tango_ktx", "twopl_ktx"):
        assert by[100][proto] < by[0][proto]
        assert by[100][proto] > 0.3 * by[0][proto]
        # Doubling from 1% to 2% costs little (the "graceful" part).
        assert by[2][proto] > 0.9 * by[1][proto]
    # The two protocols stay within ~2x of each other everywhere.
    for pct in PCTS:
        ratio = by[pct]["tango_ktx"] / by[pct]["twopl_ktx"]
        assert 0.4 < ratio < 2.5
