"""Figure 8 (left): single-view latency vs throughput trade-off.

Paper: "we can provide 135K sub-millisecond reads/sec on a read-only
workload and 38K writes/sec under 2 ms on a write-only workload. Each
line on this graph is obtained by doubling the window size of
outstanding operations at the client from 8 ... to 256."
"""

from repro.bench.experiments import fig8_single_view

RATIOS = (1.0, 0.9, 0.5, 0.1, 0.0)
WINDOWS = (8, 16, 32, 64, 128, 256)


def test_fig8_left_latency_throughput(benchmark, show):
    rows = benchmark.pedantic(
        fig8_single_view,
        kwargs={
            "write_ratios": RATIOS,
            "windows": WINDOWS,
            "duration": 0.05,
            "warmup": 0.01,
        },
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 8 left: one view, latency vs throughput "
        "(paper: 135K sub-ms reads; 38K writes under 2ms)",
        rows,
        columns=("write_ratio", "window", "kops_per_sec", "latency_ms"),
    )
    by = {(r["write_ratio"], r["window"]): r for r in rows}
    # Write-only anchor: ~38K ops/s at full window.
    assert 30 <= by[(1.0, 256)]["kops_per_sec"] <= 50
    # Read-only: >=135K/s at sub-millisecond latency for some window.
    assert any(
        by[(0.0, w)]["kops_per_sec"] >= 120 and by[(0.0, w)]["latency_ms"] < 1.0
        for w in WINDOWS
    )
    # Reads are strictly faster than writes at equal window.
    for window in WINDOWS:
        assert (
            by[(0.0, window)]["kops_per_sec"]
            >= by[(1.0, window)]["kops_per_sec"]
        )
    # Larger windows trade latency for throughput.
    assert by[(1.0, 256)]["latency_ms"] > by[(1.0, 8)]["latency_ms"]
    assert by[(1.0, 256)]["kops_per_sec"] > by[(1.0, 8)]["kops_per_sec"]
