"""Figure 8 (right): elastic linearizable reads vs number of readers.

Paper: "we scale read throughput to a Tango object by adding more
read-only views, each of which issues 10K reads/sec, while keeping the
write workload constant at 10K writes/sec. Reads scale linearly until
the underlying shared log is saturated; ... a smaller 2-server log which
bottlenecks at around 120K reads/sec, as well as the default 18-server
log which scales to 180K reads/sec with 18 clients. ... with the
18-server log, we obtain 1 ms reads."
"""

from repro.bench.experiments import fig8_elasticity

READERS = (2, 4, 6, 8, 10, 12, 14, 16, 18)


def test_fig8_right_elastic_reads(benchmark, show):
    rows = benchmark.pedantic(
        fig8_elasticity,
        kwargs={"reader_counts": READERS, "duration": 0.05, "warmup": 0.01},
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 8 right: read elasticity "
        "(paper: 2-server saturates ~120K; 18-server scales to 180K @ ~1ms)",
        rows,
        columns=("log", "readers", "reads_kops", "read_latency_ms"),
    )
    by = {(r["log"], r["readers"]): r for r in rows}
    # 18-server log: linear scaling all the way to 18 readers.
    assert by[("18-server", 18)]["reads_kops"] >= 170
    assert by[("18-server", 18)]["read_latency_ms"] < 2.0
    # 2-server log: saturation near 120K.
    small_peak = max(r["reads_kops"] for r in rows if r["log"] == "2-server")
    assert 100 <= small_peak <= 135
    assert by[("2-server", 18)]["reads_kops"] <= small_peak * 1.02
    # The crossover: both logs identical before saturation.
    assert by[("2-server", 6)]["reads_kops"] == (
        __import__("pytest").approx(by[("18-server", 6)]["reads_kops"], rel=0.1)
    )
