"""Section 5 (text): sequencer failover and soft-state footprint.

Paper: "In an 18-node deployment, we are able to replace a failed
sequencer within 10 ms. Once a new sequencer comes up, it has to
reconstruct its backpointer state; in the current implementation, this
is done by scanning backward on the shared log. ... with K = 4
backpointers per stream, the space required is 4*8 bytes per stream, or
32MB for 1M streams."
"""

from repro.bench.experiments_functional import (
    sec5_failover_vs_checkpoint,
    sec5_sequencer_failover,
)


def test_sec5_sequencer_failover(benchmark, show):
    rows = benchmark.pedantic(
        sec5_sequencer_failover,
        kwargs={"entries": 300, "streams": 8},
        rounds=1,
        iterations=1,
    )
    show("Section 5: sequencer failover (functional layer)", rows,
         columns=("metric", "measured", "paper"))
    by = {r["metric"]: r["measured"] for r in rows}
    assert by["recovered state exact (tail + last-K per stream)"] is True
    assert by["sequencer soft state per stream (bytes)"] == 32


def test_sec5_failover_checkpoint_ablation(benchmark, show):
    """The paper's future-work optimization, measured: sequencer
    checkpoints turn the O(log) recovery scan into O(1)."""
    rows = benchmark.pedantic(
        sec5_failover_vs_checkpoint,
        kwargs={"log_sizes": (100, 400, 1600)},
        rounds=1,
        iterations=1,
    )
    show(
        "Section 5 ablation: failover scan with/without sequencer "
        "checkpoints (paper: planned optimization)",
        rows,
        columns=("log_entries", "checkpointed", "scan_reads", "failover_ms"),
    )
    by = {(r["log_entries"], r["checkpointed"]): r["scan_reads"] for r in rows}
    # Without checkpoints the scan grows with the log...
    assert by[(1600, False)] > 10 * by[(100, False)]
    # ...with a checkpoint near the tail it is constant and tiny.
    assert by[(1600, True)] <= 8
    assert by[(1600, True)] <= by[(100, True)] + 4
