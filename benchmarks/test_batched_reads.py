"""Benchmark: the batched read path vs the per-offset path.

Demonstrates the tentpole win of read batching: a cold sync over a
1,000-entry stream with a speculative prefetch window issues a small
fraction of the storage round trips of the per-offset backpointer walk,
over byte-identical stream contents. The RPC counts come from the
transport's per-endpoint delivery counters, so what is asserted is
exactly what a network would carry.
"""

import pytest

from repro.corfu import CorfuCluster
from repro.streams import StreamClient

N_ENTRIES = 1000
WINDOW = 64


def _build_cluster() -> CorfuCluster:
    cluster = CorfuCluster(num_sets=2, replication_factor=2)
    writer = cluster.client()
    for i in range(N_ENTRIES):
        writer.append(b"entry-%04d" % i, (1,))
    return cluster


def _storage_rpcs(client, cluster) -> int:
    stats = client.net_stats()
    return sum(
        stats[n]["rpcs"]
        for n in cluster.projection.all_nodes()
        if n in stats
    )


def _cold_sync_rpcs(prefetch_window):
    cluster = _build_cluster()
    reader = cluster.client()
    sclient = StreamClient(reader, prefetch_window=prefetch_window)
    sclient.open_stream(1)
    before = _storage_rpcs(reader, cluster)
    sclient.sync(1)
    rpcs = _storage_rpcs(reader, cluster) - before
    return rpcs, sclient


@pytest.mark.benchmark(group="batched-reads")
def test_batched_cold_sync_rpc_reduction(benchmark):
    """Cold sync of 1,000 entries: windowed read_many vs per-offset."""
    per_offset_rpcs, plain = _cold_sync_rpcs(None)
    batched_rpcs, batched = _cold_sync_rpcs(WINDOW)

    # Identical answers over identical contents...
    assert batched.known_offsets(1) == plain.known_offsets(1)
    assert len(plain.known_offsets(1)) == N_ENTRIES
    # ...with >=4x fewer storage round trips (acceptance criterion;
    # the expected ratio here is ~250 : ~33).
    assert per_offset_rpcs >= 4 * batched_rpcs

    # The savings are visible in the client's own counters too.
    corfu = batched.corfu
    assert corfu.batched_reads > 0
    # Nearly every offset travels in a batch; the sequencer's last-K
    # seed offsets may be fetched individually at the walk's start.
    assert corfu.batched_read_offsets >= N_ENTRIES * 0.95

    print("\n=== Batched reads: cold sync over "
          f"{N_ENTRIES}-entry stream ===")
    print(f"{'path':>24} | {'storage RPCs':>12}")
    print("-" * 41)
    print(f"{'per-offset walk':>24} | {per_offset_rpcs:>12}")
    print(f"{'read_many (W=%d)' % WINDOW:>24} | {batched_rpcs:>12}")
    print(f"{'reduction':>24} | {per_offset_rpcs / batched_rpcs:>11.1f}x")

    # Time the batched cold sync end to end.
    def cold_sync():
        cluster = _build_cluster()
        sclient = StreamClient(cluster.client(), prefetch_window=WINDOW)
        sclient.open_stream(1)
        return sclient.sync(1)

    result = benchmark.pedantic(cold_sync, rounds=3, iterations=1)
    assert result == N_ENTRIES - 1


@pytest.mark.benchmark(group="batched-reads")
def test_batched_playback_rpc_reduction(benchmark):
    """Full playback after sync: prefetch batches the known offsets."""
    cluster = _build_cluster()
    reader = cluster.client()
    sclient = StreamClient(reader, prefetch_window=WINDOW)
    sclient.open_stream(1)
    sclient.sync(1)
    before = _storage_rpcs(reader, cluster)
    delivered = 0
    while sclient.readnext(1) is not None:
        delivered += 1
    playback_rpcs = _storage_rpcs(reader, cluster) - before
    assert delivered == N_ENTRIES
    # Everything was prefetched during the windowed sync: playback
    # itself is almost RPC-free (cache hits).
    assert playback_rpcs < N_ENTRIES / 4

    print(f"\nplayback of {delivered} entries issued "
          f"{playback_rpcs} storage RPCs (cache-warm)")

    def playback_pass():
        sclient.reset(1)
        n = 0
        while sclient.readnext(1) is not None:
            n += 1
        return n

    assert benchmark.pedantic(playback_pass, rounds=3, iterations=1) == N_ENTRIES


@pytest.mark.benchmark(group="batched-reads")
def test_append_batch_grant_reduction(benchmark):
    """append_batch reserves offsets with one sequencer grant per batch."""
    cluster = CorfuCluster(num_sets=2, replication_factor=2)
    client = cluster.client()
    seq = cluster.sequencer()
    batch = [b"payload-%02d" % i for i in range(16)]

    inc0 = seq.increments
    client.append_batch(batch, (1,))
    assert seq.increments - inc0 == 1
    assert seq.offsets_issued == 16

    def batched_append():
        return client.append_batch(batch, (1,))

    benchmark.pedantic(batched_append, rounds=5, iterations=1)
