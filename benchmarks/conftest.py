"""Shared helpers for the figure-regeneration benchmarks.

Every file in this directory regenerates one table or figure from the
paper's evaluation (section 6) and prints a paper-vs-measured table.
Run them with::

    pytest benchmarks/ --benchmark-only

Absolute numbers come from the calibrated testbed model (see
DESIGN.md); the claims under test are about curve *shape* — plateaus,
linear regions, saturation points, crossovers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import pytest


@pytest.fixture
def show(capsys):
    """Print a table through pytest's capture (always visible)."""

    def _show(title: str, rows: List[Dict[str, object]], columns: Sequence[str]):
        with capsys.disabled():
            print(f"\n=== {title} ===")
            header = " | ".join(f"{c:>18}" for c in columns)
            print(header)
            print("-" * len(header))
            for row in rows:
                cells = []
                for c in columns:
                    value = row.get(c, "")
                    if isinstance(value, float):
                        cells.append(f"{value:>18.2f}")
                    else:
                        cells.append(f"{str(value):>18}")
                print(" | ".join(cells))

    return _show
