"""Figure 10 (left): layered partitions scale until the log saturates.

Paper: "each node hosts the view for a different TangoMap and performs
single-object transactions ... throughput scales linearly with the
number of nodes until it saturates the shared log on the 6-server
deployment at around 150K txes/sec. With an 18-server shared log,
throughput scales to 200K txes/sec and we do not encounter the
throughput ceiling imposed by the shared log."
"""

from repro.bench.experiments import fig10_partitions

NODES = (2, 4, 6, 8, 10, 12, 14, 16, 18)


def test_fig10_left_partition_scaling(benchmark, show):
    rows = benchmark.pedantic(
        fig10_partitions,
        kwargs={"node_counts": NODES, "duration": 0.04, "warmup": 0.01},
        rounds=1,
        iterations=1,
    )
    show(
        "Figure 10 left: layered partitioning "
        "(paper: 6-server saturates ~150K tx/s; 18-server reaches ~200K)",
        rows,
        columns=("log", "nodes", "ktx_per_sec", "latency_ms"),
    )
    by = {(r["log"], r["nodes"]): r["ktx_per_sec"] for r in rows}
    # Linear region: doubling nodes doubles throughput (both logs).
    for log in ("18-server", "6-server"):
        assert by[(log, 8)] > 1.8 * by[(log, 4)]
    # The 6-server log hits its ceiling near 150K...
    assert 135 <= by[("6-server", 18)] <= 165
    assert by[("6-server", 18)] < 1.1 * by[("6-server", 16)]
    # ...while the 18-server log is still scaling at 18 nodes.
    assert by[("18-server", 18)] > by[("6-server", 18)]
    assert by[("18-server", 18)] > 1.15 * by[("18-server", 14)]
