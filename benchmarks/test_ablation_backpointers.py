"""Ablations of the design choices DESIGN.md calls out.

Three knobs, measured on the functional layer:

1. **Backpointer redundancy K** (section 5): the backward walk that
   builds a stream's linked list costs ~N/K reads, so higher K
   trades per-entry header bytes for faster cold-start sync.
2. **Commit-record batching** (section 6): the performance model packs
   `batch` records per 4KB entry; here we verify the model-side
   throughput effect.
3. **Fine-grained versioning** (section 3.2): per-key versions vs
   whole-object versions, measured as abort rate under concurrent
   disjoint-key transactions.
"""

import pytest

from repro.bench.perfmodel import ModelParams
from repro.bench.experiments import fig10_partitions
from repro.corfu import CorfuCluster
from repro.objects import TangoMap
from repro.streams import StreamClient
from repro.tango.object import TangoObject
from repro.tango.runtime import TangoRuntime


def _cold_sync_reads(k: int, entries: int = 64) -> int:
    """Storage reads needed to build a fresh stream iterator."""
    cluster = CorfuCluster(num_sets=3, replication_factor=2, k=k)
    writer = StreamClient(cluster.client())
    for i in range(entries):
        writer.append(b"e%d" % i, (1,))
    cold = StreamClient(cluster.client())
    cold.open_stream(1)
    before = cold.corfu.reads
    cold.sync(1)
    return cold.corfu.reads - before


def test_ablation_backpointer_k(benchmark, show):
    def sweep():
        return [
            {"k": k, "cold_sync_reads": _cold_sync_reads(k), "entries": 64}
            for k in (2, 4, 8, 16)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        "Ablation: backpointer redundancy K "
        "(paper: walk costs ~N/K reads; 12-byte header at K=4)",
        rows,
        columns=("k", "entries", "cold_sync_reads"),
    )
    by = {r["k"]: r["cold_sync_reads"] for r in rows}
    # Higher K strides further: reads drop roughly as N/K.
    assert by[2] > by[4] > by[8] >= by[16]
    assert by[4] <= 64 // 4 + 2


def test_ablation_commit_batching(benchmark, show):
    """Model-side: batch size vs partitioned-transaction throughput."""

    def sweep():
        rows = []
        for batch in (1, 2, 4, 8):
            params = ModelParams(batch=batch)
            result = fig10_partitions(
                node_counts=(18,), duration=0.03, warmup=0.01, params=params
            )
            big = next(r for r in result if r["log"] == "18-server")
            rows.append({"batch": batch, "ktx_per_sec": big["ktx_per_sec"]})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        "Ablation: commit records per 4KB entry (paper uses batch=4)",
        rows,
        columns=("batch", "ktx_per_sec"),
    )
    by = {r["batch"]: r["ktx_per_sec"] for r in rows}
    # Batching amortizes per-entry costs: throughput rises with batch.
    assert by[4] > by[1]
    # ...with diminishing returns (per-record CPU dominates eventually).
    assert (by[8] - by[4]) < (by[4] - by[1])


class _CoarseMap(TangoMap):
    """TangoMap with fine-grained versioning disabled (whole-object)."""

    def put(self, key, value):
        import json

        op = json.dumps({"op": "put", "k": key, "v": value})
        self._update(op.encode("utf-8"))  # no key: coarse version

    def get(self, key, default=None):
        self._query()  # no key: coarse read
        return self._map.get(key, default)


def _abort_rate(map_cls, rounds: int = 40) -> float:
    """Two clients transacting on disjoint keys; count aborts."""
    cluster = CorfuCluster(num_sets=3, replication_factor=2)
    rt1 = TangoRuntime(cluster, client_id=1)
    rt2 = TangoRuntime(cluster, client_id=2)
    m1, m2 = map_cls(rt1, oid=1), map_cls(rt2, oid=1)
    m1.put("a", 0)
    m1.put("b", 0)
    m1.get("a")
    m2.get("b")
    aborts = 0
    for i in range(rounds):
        # Client 1 reads/writes key a; client 2 writes key b in the
        # conflict window. Disjoint keys: should never conflict.
        rt1.begin_tx()
        _ = m1.get("a")
        m1.put("a", i)
        m2.put("b", i)
        if not rt1.end_tx():
            aborts += 1
    return aborts / rounds


def test_ablation_fine_grained_versioning(benchmark, show):
    def sweep():
        return [
            {
                "versioning": "per-key (paper section 3.2)",
                "abort_rate_disjoint_keys": _abort_rate(TangoMap),
            },
            {
                "versioning": "whole-object",
                "abort_rate_disjoint_keys": _abort_rate(_CoarseMap),
            },
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        "Ablation: fine-grained vs whole-object versioning "
        "(paper: coarse versions cause unnecessary aborts)",
        rows,
        columns=("versioning", "abort_rate_disjoint_keys"),
    )
    fine = rows[0]["abort_rate_disjoint_keys"]
    coarse = rows[1]["abort_rate_disjoint_keys"]
    assert fine == 0.0  # disjoint keys never conflict
    assert coarse == 1.0  # every round conflicts under coarse versions
