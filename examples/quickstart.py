#!/usr/bin/env python3
"""Quickstart: Tango objects in a few lines.

Builds an in-process CORFU deployment (the paper's 9x2 configuration),
runs two clients against it, and demonstrates the core promises of a
Tango object: linearizable replication, persistence (view
reconstruction), and transactions across objects.

Run:  python examples/quickstart.py
"""

from repro import (
    CorfuCluster,
    TangoDirectory,
    TangoList,
    TangoMap,
    TangoRegister,
    TangoRuntime,
)


def main() -> None:
    # One shared log; think "a cluster of flash drives".
    cluster = CorfuCluster(num_sets=9, replication_factor=2)

    # Two application servers ("clients" in the paper's vocabulary).
    # They never talk to each other — only to the shared log.
    rt1 = TangoRuntime(cluster, name="app-server-1")
    rt2 = TangoRuntime(cluster, name="app-server-2")
    dir1, dir2 = TangoDirectory(rt1), TangoDirectory(rt2)

    # --- replication -----------------------------------------------------
    reg1 = dir1.open(TangoRegister, "config")
    reg2 = dir2.open(TangoRegister, "config")
    reg1.write({"feature_flags": ["fast_path"], "version": 7})
    print("server 2 reads:", reg2.read())

    # --- a map and a list, updated transactionally ------------------------
    owners = dir1.open(TangoMap, "owners")
    items = dir1.open(TangoList, "items")
    owners_v2 = dir2.open(TangoMap, "owners")
    items_v2 = dir2.open(TangoList, "items")

    owners.put("ledger-42", "app-server-1")
    assert owners.get("ledger-42") == "app-server-1"

    # The paper's Figure 4: add to the list only if we own the ledger,
    # atomically. If another client steals ownership in the conflict
    # window, the transaction aborts.
    def add_if_owner():
        if owners.get("ledger-42") == "app-server-1":
            items.append("item-1")
            return True
        return False

    added = rt1.run_transaction(add_if_owner)
    print("transaction committed:", added)
    print("server 2 sees items:", items_v2.to_list())

    # --- persistence: a brand-new client reconstructs state from the log --
    rt3 = TangoRuntime(cluster, name="app-server-3")
    dir3 = TangoDirectory(rt3)
    items_v3 = dir3.open(TangoList, "items")
    print("fresh server 3 reconstructs:", items_v3.to_list())

    # --- history: read the register as of an earlier log position ---------
    version_then = rt1.version_of(reg1.oid)
    reg1.write({"feature_flags": [], "version": 8})
    print("now:", reg1.read(), "| earlier version offset:", version_then)


if __name__ == "__main__":
    main()
