#!/usr/bin/env python3
"""TangoZK: partitioned namespaces with cross-namespace transactions.

Section 6.3 of the paper: "with 18 clients running independent
namespaces, we obtain around 200K txes/sec ... and nearly 20K txes/sec
for transactions that atomically move a file from one namespace to
another. The capability to move files across different instances does
not exist in ZooKeeper."

This example runs two TangoZK namespaces on different application
servers, exercises the ZooKeeper API (sequential nodes, conditional
sets, ephemeral nodes, watches, multi-op), and then performs the move
that stock ZooKeeper cannot: an atomic cross-namespace rename.

Run:  python examples/zookeeper_namespaces.py
"""

from repro import CorfuCluster, TangoDirectory, TangoRuntime, TangoZK
from repro.errors import BadVersionError, TransactionAborted


def main() -> None:
    cluster = CorfuCluster(num_sets=9, replication_factor=2)
    rt1 = TangoRuntime(cluster, name="server-1")
    rt2 = TangoRuntime(cluster, name="server-2")
    dir1, dir2 = TangoDirectory(rt1), TangoDirectory(rt2)

    # Server 1 owns namespace A; server 2 owns namespace B.
    ns_a = dir1.open(TangoZK, "namespace-a", session_id="server-1")
    ns_b = dir2.open(TangoZK, "namespace-b", session_id="server-2")

    # --- the ZooKeeper API ------------------------------------------------
    ns_a.create("/services", b"")
    ns_a.create("/services/web", b"10.0.0.1:80")
    seq1 = ns_a.create("/services/worker-", b"", sequential=True)
    seq2 = ns_a.create("/services/worker-", b"", sequential=True)
    print("sequential znodes:", seq1, seq2)

    events = []
    ns_a.watch("/services/web", lambda path, ev: events.append((path, ev)))
    stat = ns_a.set_data("/services/web", b"10.0.0.2:80", version=0)
    print("set_data -> version", stat.version, "| watch fired:", events)

    try:
        ns_a.set_data("/services/web", b"oops", version=0)
    except BadVersionError as exc:
        print("conditional set with stale version rejected:", exc)

    ns_a.create("/locks", b"")
    ns_a.create("/locks/leader", b"server-1", ephemeral=True)
    print("ephemerals:", ns_a.ephemerals())

    # multi: an atomic batch, like ZooKeeper's multi() call.
    ns_a.multi(
        [
            ("create", ("/batch", b"")),
            ("create", ("/batch/x", b"1")),
            ("create", ("/batch/y", b"2")),
        ]
    )
    print("after multi:", ns_a.get_children("/batch"))

    # --- the move ZooKeeper cannot do -------------------------------------
    # Server 1 opens a (write-capable) handle on namespace B and moves
    # /services/web there atomically: delete + create in one transaction.
    ns_b_from_1 = dir1.open(TangoZK, "namespace-b", session_id="server-1")
    ns_b_from_1.exists("/")  # instantiate the view

    def move():
        data, _stat = ns_a.get_data("/services/web")
        ns_a.delete("/services/web")
        ns_b_from_1.create("/web", data)

    rt1.run_transaction(move)
    print("namespace A children:", ns_a.get_children("/services"))
    print("namespace B sees moved node:", ns_b.get_data("/web")[0])

    # Atomicity under conflict: a move aborts cleanly if the source
    # changes mid-flight (nothing is left half-moved).
    ns_a.create("/services/db", b"10.0.0.3:5432")
    rt1.begin_tx()
    data, _ = ns_a.get_data("/services/db")
    ns_a.delete("/services/db")
    ns_b_from_1.create("/db", data)
    # Meanwhile server 1's handle raced with an update from server 2...
    ns_b.create("/db-placeholder", b"")  # unrelated; namespace B is fine
    ns_a_2 = dir2.open(TangoZK, "namespace-a", session_id="server-2")
    ns_a_2.set_data("/services/db", b"moved-under-us")
    committed = rt1.end_tx()
    print("conflicting move committed?", committed)
    print("source still intact:", ns_a.get_data("/services/db")[0])
    print("destination has no half-move:", ns_b.exists("/db") is None)


if __name__ == "__main__":
    main()
