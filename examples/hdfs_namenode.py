#!/usr/bin/env python3
"""The section 6.3 fidelity check: an HDFS-style namenode over Tango.

"we ran the HDFS namenode over them ... and successfully demonstrated
recovery from a namenode reboot as well as fail-over to a backup
namenode."

The namenode journals every namespace edit to a TangoBK ledger and uses
TangoZK for the active-lock and the edit-ledger manifest. This script
walks through the same two demonstrations: reboot recovery and fenced
failover.

Run:  python examples/hdfs_namenode.py
"""

from repro import CorfuCluster, TangoDirectory, TangoRuntime
from repro.apps.hdfs import MiniNameNode, NotActiveError


def main() -> None:
    cluster = CorfuCluster(num_sets=9, replication_factor=2)

    # --- the primary namenode builds a namespace ---------------------------
    rt1 = TangoRuntime(cluster, name="host-1")
    nn1 = MiniNameNode(rt1, TangoDirectory(rt1), "nn-1")
    assert nn1.start(), "first namenode should become active"

    nn1.mkdir("/user")
    nn1.mkdir("/user/alice")
    nn1.create_file("/user/alice/dataset.csv")
    block = nn1.add_block("/user/alice/dataset.csv")
    nn1.mkdir("/tmp")
    nn1.rename("/user/alice/dataset.csv", "/tmp/dataset.csv")
    print("namespace:", nn1.listdir("/"), "| blocks:", nn1.file_blocks("/tmp/dataset.csv"))

    # --- demonstration 1: recovery from a namenode reboot -------------------
    # The process dies; a new incarnation on the same host replays the
    # journal from the shared log and resumes exactly where it left off.
    rt1b = TangoRuntime(cluster, name="host-1-rebooted")
    nn1b = MiniNameNode.restart(rt1b, TangoDirectory(rt1b), "nn-1")
    nn1b.failover()  # fence the dead incarnation's journal, replay, resume
    print(
        "after reboot:",
        nn1b.listdir("/"),
        "| file recovered:",
        nn1b.exists("/tmp/dataset.csv"),
        "| blocks:",
        nn1b.file_blocks("/tmp/dataset.csv"),
    )
    nn1b.create_file("/tmp/post-reboot-file")

    # --- demonstration 2: fail-over to a backup namenode --------------------
    rt2 = TangoRuntime(cluster, name="host-2")
    nn2 = MiniNameNode(rt2, TangoDirectory(rt2), "nn-2")
    became_active = nn2.start()
    print("backup start while primary holds the lock:", became_active)

    # The primary "crashes"; the backup fences its journal and takes over.
    nn2.failover()
    print("backup is active:", nn2.is_active)
    print("backup sees:", sorted(nn2.listdir("/tmp")))

    # The deposed primary discovers it was fenced the moment it journals.
    try:
        nn1b.create_file("/tmp/zombie-write")
        raise AssertionError("deposed namenode must not journal")
    except NotActiveError as exc:
        print("deposed primary rejected:", exc)

    nn2.create_file("/tmp/post-failover-file")
    print("final namespace at backup:", sorted(nn2.listdir("/tmp")))
    print("no zombie write:", not nn2.exists("/tmp/zombie-write"))


if __name__ == "__main__":
    main()
