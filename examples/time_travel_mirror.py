#!/usr/bin/env python3
"""History, consistent snapshots, mirroring, and garbage collection.

Section 3 of the paper lists capabilities that fall out of "the shared
log is the object":

- *History*: "the state of the object can be rolled back to any point
  in its history simply by creating a new instance and syncing with the
  appropriate prefix of the log."
- *Consistent snapshots / coordinated rollback*: "creating views of
  each object synced up to the same offset in the shared log."
- *Remote mirroring*: a remote-site process plays the log and is
  "guaranteed to represent a consistent, system-wide snapshot of the
  primary at some point in the past."
- *Checkpoints and forget*: trim history that no one needs to roll back
  into, reclaiming log capacity.

This example runs bank transfers between two account maps and shows the
invariant (total balance) holds at *every* historical offset; then it
checkpoints, forgets, trims, and rebuilds a view from the checkpoint.

Run:  python examples/time_travel_mirror.py
"""

import json

from repro import CorfuCluster, TangoDirectory, TangoMap, TangoRuntime


def total_balance(checking_state: bytes, savings_state: bytes) -> int:
    checking = json.loads(checking_state.decode())
    savings = json.loads(savings_state.decode())
    return sum(checking.values()) + sum(savings.values())


def main() -> None:
    cluster = CorfuCluster(num_sets=9, replication_factor=2)
    rt = TangoRuntime(cluster, name="bank-primary")
    directory = TangoDirectory(rt)
    checking = directory.open(TangoMap, "checking")
    savings = directory.open(TangoMap, "savings")

    checking.put("alice", 1000)
    savings.put("alice", 0)
    # Sync the views before transacting: transactional reads observe
    # the local view without playing the log forward (section 3.2).
    assert checking.get("alice") == 1000 and savings.get("alice") == 0

    # Ten transfers, each an atomic cross-object transaction.
    snapshots = []
    for i in range(10):
        def transfer(amount=100):
            balance = checking.get("alice")
            checking.put("alice", balance - amount)
            savings.put("alice", savings.get("alice") + amount)

        rt.run_transaction(transfer)
        snapshots.append(rt.version_of(savings.oid))
    print("final:", checking.get("alice"), "+", savings.get("alice"))

    # --- time travel: a consistent snapshot at every transfer --------------
    # A "remote mirror" instantiates fresh views and plays the shared
    # history forward to a chosen offset — the same mechanism whether the
    # reader sits in this datacenter or a remote one.
    for offset in (snapshots[2], snapshots[6], snapshots[9]):
        mirror = TangoRuntime(cluster, name=f"mirror@{offset}")
        mdir = TangoDirectory(mirror)
        m_checking = mdir.open(TangoMap, "checking")
        m_savings = mdir.open(TangoMap, "savings")
        m_checking.sync_to(offset)
        m_savings.sync_to(offset)
        total = total_balance(
            m_checking.get_checkpoint(), m_savings.get_checkpoint()
        )
        c_alice = json.loads(m_checking.get_checkpoint().decode())["alice"]
        print(
            f"snapshot @ offset {offset}: checking={c_alice} "
            f"total={total} (invariant holds: {total == 1000})"
        )

    # --- checkpoint, forget, trim ------------------------------------------
    # Each object checkpoints and forgets its covered history; the
    # directory goes last so its checkpoint covers the forget records.
    rt.checkpoint_and_forget(checking.oid, directory)
    rt.checkpoint_and_forget(savings.oid, directory)
    rt.checkpoint_and_forget(directory.oid, directory)
    trimmed_below = directory.gc()
    print(f"log trimmed below offset {trimmed_below}")

    # A brand-new client now rebuilds from checkpoints, not raw history.
    late = TangoRuntime(cluster, name="late-joiner")
    ldir = TangoDirectory(late)
    l_checking = ldir.open(TangoMap, "checking")
    l_savings = ldir.open(TangoMap, "savings")
    print(
        "late joiner reconstructs from checkpoint:",
        l_checking.get("alice"), "+", l_savings.get("alice"),
    )


if __name__ == "__main__":
    main()
