#!/usr/bin/env python3
"""A replicated job scheduler (the paper's section 4 running example).

"A job scheduling service that runs on multiple application servers for
high availability can be constructed using a TangoMap (mapping jobs to
compute nodes), a TangoList (storing free compute nodes) and a
TangoCounter (for new job IDs)."

Two scheduler replicas (from :mod:`repro.apps.scheduler`) run against
the same shared log. Scheduling a job is a transaction that moves a
node from the free list to the allocation map — the canonical "moving a
node from a free list to an allocation table" metadata transaction from
the paper's introduction. A backup service concurrently takes free
nodes offline for backup and returns them, sharing the free list with
the schedulers (Figure 5(c): sharing state across services).

Run:  python examples/job_scheduler.py
"""

from repro import CorfuCluster, TangoDirectory, TangoList, TangoRuntime
from repro.apps.scheduler import JobScheduler


class BackupService:
    """A different service sharing the free list (Figure 5(c))."""

    def __init__(self, runtime: TangoRuntime, directory: TangoDirectory) -> None:
        self._runtime = runtime
        # It hosts the shared free list plus its own backup log — but
        # not the scheduler's assignment map or counter.
        self.free_nodes = directory.open(TangoList, "scheduler/free-nodes")
        self.backups_done = directory.open(TangoList, "backups-done")

    def backup_one(self) -> "str | None":
        """Take a free node offline, 'back it up', return it."""
        node = self.free_nodes.take_head()
        if node is None:
            return None
        # ... imagine copying disks here ...
        def put_back():
            self.free_nodes.append(node)
            self.backups_done.append(node)

        self._runtime.run_transaction(put_back)
        return node


def main() -> None:
    cluster = CorfuCluster(num_sets=9, replication_factor=2)

    # Two scheduler replicas on different "application servers".
    rt_a = TangoRuntime(cluster, name="sched-a")
    rt_b = TangoRuntime(cluster, name="sched-b")
    sched_a = JobScheduler(rt_a, TangoDirectory(rt_a))
    sched_b = JobScheduler(rt_b, TangoDirectory(rt_b))

    for node in ("node-1", "node-2", "node-3", "node-4"):
        sched_a.add_node(node)

    # Both replicas schedule; allocations never collide.
    j0 = sched_a.schedule("train model")
    j1 = sched_b.schedule("compact sstables")
    j2 = sched_a.schedule("rebuild index")
    print("scheduled:", j0, j1, j2)
    print("free nodes:", sched_b.free_nodes.to_list())
    print("assignments seen by B:", sched_b.running_jobs())

    # Completing on one replica frees the node for the other.
    sched_b.complete(j0[0])
    j3 = sched_a.schedule("run backfill")
    print("after completion, rescheduled:", j3)

    # A bad node? Atomically move the job somewhere else.
    sched_a.add_node("node-9")
    moved = sched_b.reschedule(j1[0])
    print("rescheduled job", j1[0], "->", moved)

    # The backup service shares only the free list.
    rt_c = TangoRuntime(cluster, name="backup-svc")
    backup = BackupService(rt_c, TangoDirectory(rt_c))
    backed = backup.backup_one()
    print("backup service processed:", backed)
    print("free nodes after backup cycle:", sched_a.free_nodes.to_list())

    # High availability: replica A "crashes"; a fresh replica resumes
    # from the shared log with full state.
    rt_d = TangoRuntime(cluster, name="sched-recovered")
    sched_d = JobScheduler(rt_d, TangoDirectory(rt_d))
    print("recovered replica sees assignments:", sched_d.running_jobs())
    print("next job id at recovered replica:", sched_d.job_ids.value())


if __name__ == "__main__":
    main()
