#!/usr/bin/env python3
"""A network topology service: TangoGraph + TangoLock + durable storage.

The paper's introduction lists "network topologies [35]" (OpenFlow
controllers) among the metadata workloads Tango targets. This example
runs a topology service the way an SDN control plane would use it:

- the datacenter network is a :class:`TangoGraph`, replicated across
  two controller instances;
- maintenance operations take a :class:`TangoLock` with a fencing
  token, so a stalled controller can never apply a stale re-cabling;
- the whole thing runs on a *durable* CORFU deployment — the script
  "restarts the datacenter" by reopening the same on-disk log and shows
  the topology intact.

Run:  python examples/topology_service.py
"""

import tempfile

from repro.corfu.durable import open_durable_cluster
from repro.objects import TangoGraph, TangoLock
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime


def build_controllers(cluster):
    rt1 = TangoRuntime(cluster, name="controller-1")
    rt2 = TangoRuntime(cluster, name="controller-2")
    d1, d2 = TangoDirectory(rt1), TangoDirectory(rt2)
    return (
        (rt1, d1.open(TangoGraph, "topology"), d1.open(TangoLock, "maint-locks")),
        (rt2, d2.open(TangoGraph, "topology"), d2.open(TangoLock, "maint-locks")),
    )


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="tango-topology-")
    cluster = open_durable_cluster(data_dir, num_sets=3, replication_factor=2)
    (rt1, topo1, locks1), (rt2, topo2, locks2) = build_controllers(cluster)

    # Controller 1 builds the fabric.
    for rack in ("rack-1", "rack-2", "rack-3"):
        topo1.add_node(rack, attrs={"kind": "rack"})
    topo1.add_node("spine-1", attrs={"kind": "spine"})
    for rack in ("rack-1", "rack-2", "rack-3"):
        topo1.add_edge("spine-1", rack, label={"gbps": 40})
        topo1.add_edge(rack, "spine-1", label={"gbps": 40})

    # Controller 2 sees it immediately and runs queries.
    print("racks off spine-1:", topo2.neighbors("spine-1"))
    print("rack-1 reachable from rack-3:", topo2.reachable("rack-3", "rack-1"))

    # Maintenance: controller 2 re-cables rack-2, under a fenced lock.
    token = locks2.try_acquire("recable-rack-2", "controller-2")
    print("controller-2 holds maintenance lock, fencing token:", token)
    assert locks1.try_acquire("recable-rack-2", "controller-1") is None
    topo2.add_node("spine-2", attrs={"kind": "spine"})

    # Atomic re-home: rack-2 moves from spine-1 to spine-2.
    def rehome():
        label = topo2.edge_label("spine-1", "rack-2")
        topo2.remove_edge("spine-1", "rack-2")
        topo2.remove_edge("rack-2", "spine-1")
        topo2.add_edge("spine-2", "rack-2", label)
        topo2.add_edge("rack-2", "spine-2", label)

    rt2.run_transaction(rehome)
    locks2.release("recable-rack-2", "controller-2")
    print("after re-home, spine-1 serves:", topo1.neighbors("spine-1"))
    print("rack-2 now reaches spine-2:", topo1.reachable("rack-2", "spine-2", max_hops=1))

    # A *stalled* controller with a stale token can be fenced: break the
    # lock, take a fresh one, and note the token ordering downstream
    # switches would use to reject the zombie.
    zombie_token = locks1.try_acquire("upgrade-spine-1", "controller-1")
    locks2.break_lock("upgrade-spine-1")  # controller-1 presumed dead
    fresh_token = locks2.try_acquire("upgrade-spine-1", "controller-2")
    print(
        f"fencing: zombie token {zombie_token} < fresh token {fresh_token}:",
        zombie_token < fresh_token,
    )

    # --- restart the whole service: durability over the on-disk log ---
    reopened = open_durable_cluster(data_dir, num_sets=3, replication_factor=2)
    rt3 = TangoRuntime(reopened, name="controller-recovered")
    topo3 = TangoDirectory(rt3).open(TangoGraph, "topology")
    print(
        "after restart from disk: nodes =", topo3.node_count(),
        "| rack-2 on spine-2:", topo3.reachable("rack-2", "spine-2", max_hops=1),
    )


if __name__ == "__main__":
    main()
