"""Thin setup.py shim; metadata lives in pyproject.toml.

Kept so that offline environments without the `wheel` package can do
legacy editable installs (`pip install -e . --no-use-pep517`).
"""
from setuptools import setup

setup()
