"""Applications built on the Tango object library."""

from repro.apps.dedup import DedupStore
from repro.apps.hdfs import MiniNameNode
from repro.apps.scheduler import JobScheduler

__all__ = ["MiniNameNode", "DedupStore", "JobScheduler"]
