"""A mini HDFS namenode over TangoZK and TangoBK.

Paper section 6.3: "To verify that our versions of ZooKeeper and
BookKeeper were full-fledged implementations, we ran the HDFS namenode
over them (modifying it only to instantiate our classes instead of the
originals) and successfully demonstrated recovery from a namenode reboot
as well as fail-over to a backup namenode."

We do not ship Java HDFS; instead :class:`MiniNameNode` is a
namenode-shaped metadata service that uses the two Tango objects exactly
the way HDFS's HA design (HDFS-1623) uses the real ones:

- **TangoZK** for coordination: the active namenode holds an ephemeral
  lock znode, and a pointer znode names the current edit ledger;
- **TangoBK** for the edit journal: every namespace mutation is recorded
  as a ledger entry before it is acknowledged; recovery replays the
  ledger, and failover *fences* it so the deposed active can no longer
  journal (and thereby discovers it was deposed).

The in-memory namespace (directories, files, blocks) is deliberately
plain — the point of the exercise is the recovery/failover choreography
over the Tango objects, not filesystem features.
"""

from __future__ import annotations

import itertools
import json
from typing import Dict, List, Tuple

from repro.errors import (
    LedgerClosedError,
    LedgerFencedError,
    NodeExistsError,
    ReproError,
)
from repro.objects.bookkeeper import TangoBK
from repro.objects.zookeeper import TangoZK

_LOCK_ZNODE = "/namenode/active"
_EDITS_ZNODE = "/namenode/edits"


class NotActiveError(ReproError):
    """The namenode is not (or no longer) the active instance."""


class MiniNameNode:
    """A highly available metadata service shaped like the HDFS namenode.

    Args:
        runtime: this node's Tango runtime.
        directory: the Tango directory (for opening the shared objects).
        node_id: unique namenode identity (e.g. "nn-1").
    """

    _incarnations = itertools.count(1)

    def __init__(self, runtime, directory, node_id: str) -> None:
        self.node_id = node_id
        self._runtime = runtime
        self._directory = directory
        # Each incarnation is its own ZK session: a rebooted namenode
        # must be able to fence its dead predecessor's ephemeral lock.
        self._session = f"{node_id}#{next(MiniNameNode._incarnations)}"
        self._zk = directory.open(TangoZK, "hdfs-coord", session_id=self._session)
        self._bk = TangoBK(runtime, directory)
        self._ledger = None
        self._active = False
        self._epoch = itertools.count(1)
        # The namespace: path -> inode dict. Directories have
        # {"type": "dir"}; files {"type": "file", "blocks": [...]}.
        self._inodes: Dict[str, dict] = {"/": {"type": "dir"}}
        self._block_counter = 0

    # ------------------------------------------------------------------
    # HA choreography
    # ------------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._active

    def start(self) -> bool:
        """Try to become the active namenode; returns True on success.

        The winner takes the ephemeral lock znode, recovers the
        namespace from the previous edit ledger (if any), and opens a
        fresh ledger for its own edits.
        """
        try:
            self._zk.create("/namenode", b"")
        except NodeExistsError:
            pass
        try:
            self._zk.create(_LOCK_ZNODE, self.node_id.encode(), ephemeral=True)
        except NodeExistsError:
            return False  # another incarnation is active; we are standby
        self._recover_previous_ledger(fence=False)
        self._open_new_ledger()
        self._active = True
        return True

    def failover(self) -> None:
        """Take over from a crashed active namenode.

        Fences the old edit ledger (so the deposed active's journal
        writes fail everywhere), replays it, expires the old session's
        ephemeral lock, and becomes active with a fresh ledger.
        """
        stat = self._zk.exists(_LOCK_ZNODE)
        if stat is not None and stat.ephemeral_owner == self._zk.session_id:
            raise NotActiveError("already the active namenode")
        self._recover_previous_ledger(fence=True)
        if stat is not None:
            self._zk.expire_session(stat.ephemeral_owner)
        self._zk.create(_LOCK_ZNODE, self.node_id.encode(), ephemeral=True)
        self._open_new_ledger()
        self._active = True

    @staticmethod
    def restart(runtime, directory, node_id: str) -> "MiniNameNode":
        """Simulate a reboot: a fresh instance recovering from the log.

        A reboot is a new process, so the caller supplies a fresh
        :class:`~repro.tango.runtime.TangoRuntime` (one runtime cannot
        host two views of the same object). The returned instance has
        replayed nothing yet; call :meth:`failover` to fence the dead
        incarnation's journal and resume as active.
        """
        return MiniNameNode(runtime, directory, node_id)

    def _recover_previous_ledger(self, fence: bool) -> None:
        """Rebuild the namespace by replaying all prior edit ledgers."""
        if self._zk.exists(_EDITS_ZNODE) is None:
            return
        manifest = json.loads(self._zk.get_data(_EDITS_ZNODE)[0].decode())
        self._inodes = {"/": {"type": "dir"}}
        self._block_counter = 0
        for i, name in enumerate(manifest):
            is_last = i == len(manifest) - 1
            ledger = self._bk.open_ledger(
                name,
                recovery=fence and is_last,
                writer_token=f"{self.node_id}-recovery",
            )
            last = ledger.last_entry_id()
            if last >= 0:
                for raw in ledger.read_entries(0, last):
                    self._replay(json.loads(raw.decode("utf-8")))

    def _open_new_ledger(self) -> None:
        # Named by incarnation, so a rebooted namenode never collides
        # with a ledger its dead predecessor created.
        name = f"edits-{self._session}-{next(self._epoch)}"
        self._ledger = self._bk.create_ledger(
            name, writer_token=f"{self._session}-writer"
        )
        manifest: List[str] = []
        if self._zk.exists(_EDITS_ZNODE) is not None:
            manifest = json.loads(self._zk.get_data(_EDITS_ZNODE)[0].decode())
            manifest.append(name)
            self._zk.set_data(_EDITS_ZNODE, json.dumps(manifest).encode())
        else:
            manifest = [name]
            self._zk.create(_EDITS_ZNODE, json.dumps(manifest).encode())

    # ------------------------------------------------------------------
    # journaling
    # ------------------------------------------------------------------

    def _journal(self, edit: dict) -> None:
        """Persist one edit before applying it (write-ahead)."""
        if not self._active or self._ledger is None:
            raise NotActiveError(f"{self.node_id} is not the active namenode")
        try:
            self._ledger.add_entry(json.dumps(edit).encode("utf-8"))
        except (LedgerFencedError, LedgerClosedError):
            # Someone fenced our journal: we have been deposed.
            self._active = False
            raise NotActiveError(
                f"{self.node_id} was fenced; a failover has occurred"
            )
        self._replay(edit)

    def _replay(self, edit: dict) -> None:
        kind = edit["op"]
        if kind == "mkdir":
            self._inodes[edit["path"]] = {"type": "dir"}
        elif kind == "create":
            self._inodes[edit["path"]] = {"type": "file", "blocks": []}
        elif kind == "add_block":
            inode = self._inodes.get(edit["path"])
            if inode is not None and inode["type"] == "file":
                inode["blocks"].append(edit["block"])
            self._block_counter = max(self._block_counter, edit["block"] + 1)
        elif kind == "delete":
            prefix = edit["path"].rstrip("/") + "/"
            for path in [p for p in self._inodes if p == edit["path"] or p.startswith(prefix)]:
                del self._inodes[path]
        elif kind == "rename":
            src, dst = edit["src"], edit["dst"]
            moved = {}
            prefix = src.rstrip("/") + "/"
            for path in list(self._inodes):
                if path == src:
                    moved[dst] = self._inodes.pop(path)
                elif path.startswith(prefix):
                    moved[dst + path[len(src):]] = self._inodes.pop(path)
            self._inodes.update(moved)
        else:  # pragma: no cover - corrupt journal
            raise ValueError(f"unknown edit {kind!r}")

    # ------------------------------------------------------------------
    # namespace API (the parts the evaluation exercises)
    # ------------------------------------------------------------------

    def _check_parent(self, path: str) -> None:
        parent = path.rsplit("/", 1)[0] or "/"
        inode = self._inodes.get(parent)
        if inode is None or inode["type"] != "dir":
            raise FileNotFoundError(f"parent directory {parent} missing")

    def mkdir(self, path: str) -> None:
        self._check_parent(path)
        if path in self._inodes:
            raise FileExistsError(path)
        self._journal({"op": "mkdir", "path": path})

    def create_file(self, path: str) -> None:
        self._check_parent(path)
        if path in self._inodes:
            raise FileExistsError(path)
        self._journal({"op": "create", "path": path})

    def add_block(self, path: str) -> int:
        """Allocate a block id for *path* and journal the assignment."""
        inode = self._inodes.get(path)
        if inode is None or inode["type"] != "file":
            raise FileNotFoundError(path)
        block = self._block_counter
        self._journal({"op": "add_block", "path": path, "block": block})
        return block

    def delete(self, path: str) -> None:
        if path not in self._inodes:
            raise FileNotFoundError(path)
        self._journal({"op": "delete", "path": path})

    def rename(self, src: str, dst: str) -> None:
        if src not in self._inodes:
            raise FileNotFoundError(src)
        if dst in self._inodes:
            raise FileExistsError(dst)
        self._check_parent(dst)
        self._journal({"op": "rename", "src": src, "dst": dst})

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def listdir(self, path: str) -> Tuple[str, ...]:
        inode = self._inodes.get(path)
        if inode is None or inode["type"] != "dir":
            raise FileNotFoundError(path)
        prefix = path.rstrip("/") + "/"
        names = set()
        for p in self._inodes:
            if p != path and p.startswith(prefix):
                names.add(p[len(prefix):].split("/", 1)[0])
        return tuple(sorted(names))

    def file_blocks(self, path: str) -> Tuple[int, ...]:
        inode = self._inodes.get(path)
        if inode is None or inode["type"] != "file":
            raise FileNotFoundError(path)
        return tuple(inode["blocks"])

    def namespace_size(self) -> int:
        return len(self._inodes)
