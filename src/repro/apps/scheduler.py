"""The paper's running example as a library: a replicated job scheduler.

Section 4: "a job scheduling service that runs on multiple application
servers for high availability can be constructed using a TangoMap
(mapping jobs to compute nodes), a TangoList (storing free compute
nodes) and a TangoCounter (for new job IDs)."

Any number of :class:`JobScheduler` replicas run against the same shared
log; scheduling moves a node from the free list into the allocation map
atomically (the introduction's canonical metadata transaction), so no
job is ever double-assigned and no node double-allocated, no matter how
replicas interleave. Other services — the section-4 backup service, a
monitoring dashboard — share individual objects (Figure 5(c)) without
hosting the whole scheduler.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.objects.counter import TangoCounter
from repro.objects.list import TangoList
from repro.objects.map import TangoMap
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime


class JobScheduler:
    """One replica of the scheduling service."""

    def __init__(
        self,
        runtime: TangoRuntime,
        directory: TangoDirectory,
        namespace: str = "scheduler",
    ) -> None:
        self._runtime = runtime
        self.assignments = directory.open(TangoMap, f"{namespace}/assignments")
        self.free_nodes = directory.open(TangoList, f"{namespace}/free-nodes")
        self.job_ids = directory.open(TangoCounter, f"{namespace}/job-ids")

    # ------------------------------------------------------------------
    # node pool management
    # ------------------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Register a compute node as available."""
        self.free_nodes.append(node)

    def remove_node(self, node: str) -> bool:
        """Drain a free node from the pool; False if it is not free."""

        def body() -> bool:
            if not self.free_nodes.contains(node):
                return False
            self.free_nodes.remove_value(node)
            return True

        return self._runtime.run_transaction(body)

    def free_count(self) -> int:
        return self.free_nodes.size()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, command: str) -> Optional[Tuple[int, str]]:
        """Atomically allocate a free node to a new job.

        Returns (job id, node) or None when the pool is empty. Racing
        replicas conflict on the free list and the job counter; exactly
        one wins each allocation.
        """

        def body() -> Optional[Tuple[int, str]]:
            nodes = self.free_nodes.to_list()
            if not nodes:
                return None
            node = nodes[0]
            job_id = self.job_ids.value()
            self.job_ids.set(job_id + 1)
            self.free_nodes.remove_value(node)
            self.assignments.put(
                str(job_id), {"node": node, "cmd": command, "state": "running"}
            )
            return job_id, node

        return self._runtime.run_transaction(body)

    def complete(self, job_id: int) -> str:
        """Finish a job: free its node atomically; returns the node."""

        def body() -> str:
            job = self.assignments.get(str(job_id))
            if job is None:
                raise KeyError(f"unknown job {job_id}")
            self.assignments.remove(str(job_id))
            self.free_nodes.append(job["node"])
            return job["node"]

        return self._runtime.run_transaction(body)

    def reschedule(self, job_id: int) -> Optional[Tuple[int, str]]:
        """Move a job to a different free node (e.g. node went bad).

        The whole move — release nothing, claim a new node, rewrite the
        assignment — is one transaction; the job is never unassigned in
        any observable state.
        """

        def body() -> Optional[Tuple[int, str]]:
            job = self.assignments.get(str(job_id))
            if job is None:
                raise KeyError(f"unknown job {job_id}")
            nodes = [n for n in self.free_nodes.to_list() if n != job["node"]]
            if not nodes:
                return None
            new_node = nodes[0]
            self.free_nodes.remove_value(new_node)
            self.free_nodes.append(job["node"])
            self.assignments.put(str(job_id), {**job, "node": new_node})
            return job_id, new_node

        return self._runtime.run_transaction(body)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def job(self, job_id: int) -> Optional[dict]:
        return self.assignments.get(str(job_id))

    def running_jobs(self) -> Dict[int, dict]:
        return {int(job_id): job for job_id, job in self.assignments.items()}

    def node_of(self, job_id: int) -> Optional[str]:
        job = self.assignments.get(str(job_id))
        return job["node"] if job else None
