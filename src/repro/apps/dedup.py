"""A deduplicating chunk store over the shared log.

The paper's introduction cites "deduplication indices [20]"
(ChunkStash) among real metadata workloads, and section 3.1 describes
exactly the mechanism a dedup index wants: a view that holds *pointers
into the log* instead of values, "effectively acting as indices over
log-structured storage".

:class:`DedupStore` stores each unique chunk's bytes once, in the shared
log, and keeps a replicated :class:`~repro.objects.map.TangoIndexedMap`
from content hash to the log offset holding the chunk. Writing a file is
chunking + hashing + storing only the chunks the index has not seen;
reading a file is index lookups + random reads of the log. Reference
counts (a :class:`~repro.objects.counter.TangoCounter`-style map) let
deleted files release their chunks.

Everything — index, refcounts, file manifests — is Tango objects, so the
store is persistent, consistent across any number of clients, and
transactional (a file's manifest and its refcount bumps commit
atomically).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from repro.objects.map import TangoIndexedMap, TangoMap
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime

DEFAULT_CHUNK_BYTES = 512


def _chunks(data: bytes, size: int):
    for start in range(0, len(data), size):
        yield data[start : start + size]


def _digest(chunk: bytes) -> str:
    return hashlib.sha256(chunk).hexdigest()


class DedupStore:
    """Content-addressed, deduplicated storage over one shared log."""

    def __init__(
        self,
        runtime: TangoRuntime,
        directory: TangoDirectory,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self._runtime = runtime
        self.chunk_bytes = chunk_bytes
        # hash -> base64 chunk, stored as a log-indexed map: the view
        # holds offsets; the bytes live in the log exactly once.
        self._chunks = directory.open(TangoIndexedMap, "dedup-chunks")
        # hash -> reference count.
        self._refs = directory.open(TangoMap, "dedup-refs")
        # filename -> ordered list of chunk hashes.
        self._manifests = directory.open(TangoMap, "dedup-manifests")

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put_file(self, name: str, data: bytes) -> dict:
        """Store *name*; returns dedup statistics for the write."""
        hashes: List[str] = []
        new_chunks: List[Tuple[str, bytes]] = []
        seen_in_this_file = set()
        for chunk in _chunks(data, self.chunk_bytes):
            digest = _digest(chunk)
            hashes.append(digest)
            if digest in seen_in_this_file:
                continue
            seen_in_this_file.add(digest)
            if self._chunks.offset_of(digest) is None:
                new_chunks.append((digest, chunk))

        def commit() -> None:
            if self._manifests.get(name) is not None:
                raise FileExistsError(name)
            for digest, chunk in new_chunks:
                import base64

                self._chunks.put(
                    digest, base64.b64encode(chunk).decode("ascii")
                )
            for digest in sorted(set(hashes)):
                count = self._refs.get(digest, 0)
                self._refs.put(digest, count + hashes.count(digest))
            self._manifests.put(name, hashes)

        self._runtime.run_transaction(commit)
        return {
            "chunks": len(hashes),
            "unique_chunks": len(seen_in_this_file),
            "new_chunks": len(new_chunks),
            "deduplicated": len(hashes) - len(new_chunks),
        }

    def delete_file(self, name: str) -> None:
        """Remove *name*, releasing its chunk references atomically."""

        def commit() -> None:
            hashes = self._manifests.get(name)
            if hashes is None:
                raise FileNotFoundError(name)
            for digest in sorted(set(hashes)):
                count = self._refs.get(digest, 0) - hashes.count(digest)
                if count > 0:
                    self._refs.put(digest, count)
                else:
                    self._refs.remove(digest)
                    self._chunks.remove(digest)
            self._manifests.remove(name)

        self._runtime.run_transaction(commit)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get_file(self, name: str) -> bytes:
        """Reassemble *name* from its chunks (random reads of the log)."""
        import base64

        hashes = self._manifests.get(name)
        if hashes is None:
            raise FileNotFoundError(name)
        parts = []
        for digest in hashes:
            encoded = self._chunks.get(digest)
            if encoded is None:
                raise IOError(f"chunk {digest[:12]} missing for {name}")
            parts.append(base64.b64decode(encoded))
        return b"".join(parts)

    def files(self) -> Tuple[str, ...]:
        return tuple(sorted(self._manifests.keys()))

    def stats(self) -> dict:
        """Store-wide statistics (linearizable)."""
        unique = self._chunks.size()
        total_refs = sum(
            self._refs.get(h, 0) for h in self._refs.keys()
        )
        return {
            "files": len(self._manifests.keys()),
            "unique_chunks": unique,
            "total_references": total_refs,
            "dedup_ratio": (total_refs / unique) if unique else 0.0,
        }

    def chunk_offset(self, digest: str) -> Optional[int]:
        """Log offset holding a chunk (index-over-log introspection)."""
        return self._chunks.offset_of(digest)
