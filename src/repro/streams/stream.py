"""The client-side streaming library over CORFU.

Paper section 5: "the library stores stream metadata as a linked list of
offsets on the address space of the shared log, along with an iterator.
When the application calls readnext on a stream, the library issues a
conventional CORFU random read to the offset pointed to by the iterator,
and moves the iterator forward."

Bringing the linked list up to date (``sync``) contacts the sequencer
for the stream's most recent offsets and then strides backward through
the K-redundant backpointers, issuing roughly N/K reads for N new
entries. Junk entries (filled holes) carry no backpointers, so when all
pointers from an offset lead to junk the library "resorts to scanning
the log backwards to find an earlier valid entry for the stream".

The library fetches each log entry once and caches it, so an entry
multiappended to S streams is read from the cluster a single time even
though every one of the S streams delivers it (section 4.1: "under the
hood, the streaming layer fetches the entry once from the shared log and
caches it").
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.corfu.client import CorfuClient
from repro.corfu.entry import NO_BACKPOINTER, LogEntry
from repro.errors import (
    ReproError,
    TrimmedError,
    UnknownStreamError,
    UnwrittenError,
)

#: Default client-side entry cache capacity (entries, not bytes).
DEFAULT_CACHE_ENTRIES = 131072

#: Default hole timeout before filling, seconds (paper: "100ms by default").
DEFAULT_HOLE_TIMEOUT = 0.1

#: Offsets per batched RPC when a junk dead-end forces a linear
#: backward scan (the scan reads every offset in range anyway, so
#: batching it is a pure round-trip win).
SCAN_WINDOW = 32

#: Known upcoming offsets prefetched per batched RPC during playback.
PLAYBACK_PREFETCH = 8

#: Estimated fixed per-entry cost charged against a cache byte budget,
#: on top of the payload: LogEntry + header objects + the cache's dict
#: slot. A rough constant — the budget bounds growth, it is not an
#: allocator.
CACHE_ENTRY_OVERHEAD = 200


class _InflightFetch:
    """Single-flight slot for one offset's fetch.

    Exactly one thread (the owner) issues the read RPC and runs the
    hole handler; every concurrent fetch of the same offset waits on
    the event and shares the owner's entry or exception. A slot that
    resolves with neither (the owner obtained nothing it could share,
    e.g. a best-effort batch skipping a hole) tells waiters to retry —
    the next one through becomes the new owner.
    """

    __slots__ = ("event", "entry", "exc")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.entry: Optional[LogEntry] = None
        self.exc: Optional[BaseException] = None


class _StreamState:
    """Per-stream metadata: the linked list of offsets plus the iterator."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self.offsets: List[int] = []  # ascending offsets known to belong here
        self.known: set = set()
        self.read_ptr = 0  # index into `offsets` of the next entry to deliver
        # Highest offset forgotten to a prefix trim (memory-bounded
        # mode); everything at or below it was delivered-or-reclaimed.
        self.trim_floor = NO_BACKPOINTER

    def highest_known(self) -> int:
        return self.offsets[-1] if self.offsets else self.trim_floor

    def forget_below(self, horizon: int) -> int:
        """Drop linked-list entries below *horizon* (a trimmed prefix).

        The dropped offsets read as junk forever, so neither playback
        nor checkpoint scans can miss anything. Returns the number of
        offsets dropped; the iterator keeps its logical position.
        """
        k = bisect_left(self.offsets, horizon)
        if k:
            self.known.difference_update(self.offsets[:k])
            del self.offsets[:k]
            self.read_ptr = max(0, self.read_ptr - k)
        if horizon - 1 > self.trim_floor:
            self.trim_floor = horizon - 1
        return k

    def extend(self, new_offsets: Sequence[int]) -> None:
        """Add newly discovered offsets (all greater than the current max)."""
        for off in sorted(new_offsets):
            if off not in self.known:
                self.offsets.append(off)
                self.known.add(off)


class StreamClient:
    """Stream creation and playback over a CORFU client.

    Args:
        corfu: the underlying CORFU client library instance.
        hole_handler: called with the offending offset when playback
            encounters a hole. The default fills immediately (the
            functional layer has no real clocks; the 100ms timeout of
            the paper is modeled in the performance layer). Tests inject
            their own handlers to exercise races between slow writers
            and fillers.
        cache_entries: capacity of the shared entry cache.
        prefetch_window: with a window W set, a cold backpointer walk
            over a *dense* stream region speculatively batch-reads W
            contiguous offsets per storage round trip
            (``CorfuClient.read_many``) instead of fetching one cursor
            at a time, collapsing the walk's RPC count by roughly
            W / (K * num_chains). Sparse regions (detected from the
            backpointer stride) fall back to the exact per-offset walk,
            so a thin stream over a huge log never over-reads. ``None``
            (the default) disables speculation entirely and preserves
            the paper's ~N/K read accounting.
    """

    def __init__(
        self,
        corfu: CorfuClient,
        hole_handler: Optional[Callable[[int], None]] = None,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        prefetch_window: Optional[int] = None,
    ) -> None:
        self._corfu = corfu
        self._streams: Dict[int, _StreamState] = {}
        self._cache: "OrderedDict[int, LogEntry]" = OrderedDict()
        self._cache_entries = cache_entries
        # Optional cache byte budget (memory-bounded mode); None keeps
        # the entry-count cap alone.
        self._cache_budget: Optional[int] = None
        self._cache_bytes = 0
        self._prefetch_window = prefetch_window
        # Guards _cache and _inflight. Separate from the iterator lock
        # so a thread waiting on another's in-flight fetch never blocks
        # cache inserts (which would deadlock single-flight waiters).
        self._cache_lock = threading.Lock()
        self._inflight: Dict[int, _InflightFetch] = {}
        self._hole_handler = hole_handler or self._default_hole_handler
        # Serializes iterator/cache state across application threads:
        # every method that reads or moves read_ptr/offsets (readnext,
        # seek, peek_offset, reset, position, pending, known_offsets,
        # lookahead, sync) takes it. The owning runtime also holds its
        # own coarser lock during playback; this one covers direct uses
        # like indexed-map reads. Reentrant because readnext fetches
        # (and caches) entries while holding it.
        self._lock = threading.RLock()
        # GC must actually free client memory: evict cached entries for
        # offsets the log reclaims, whoever drives the trim. Registered
        # last — the callback uses both locks.
        corfu.subscribe_trim(self._on_trim)
        # Counters for tests / the performance model.
        self.sync_reads = 0
        self.backward_scans = 0

    # -- stream lifecycle -----------------------------------------------------

    def open_stream(self, stream_id: int) -> None:
        """Start tracking *stream_id* (idempotent)."""
        with self._lock:
            if stream_id not in self._streams:
                self._streams[stream_id] = _StreamState(stream_id)

    def is_open(self, stream_id: int) -> bool:
        with self._lock:
            return stream_id in self._streams

    def open_streams(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._streams)

    def _state(self, stream_id: int) -> _StreamState:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise UnknownStreamError(stream_id) from None

    # -- append path ------------------------------------------------------------

    def append(self, payload: bytes, stream_ids: Sequence[int]) -> int:
        """Multiappend *payload* to every stream in *stream_ids*.

        A client does not need to play (or even have opened) a stream to
        append to it — this is what makes remote-write transactions work
        (section 4.1, case A).
        """
        return self._corfu.append(payload, stream_ids)

    def append_async(self, payload: bytes, stream_ids: Sequence[int]):
        """Queue a multiappend; return its completion handle.

        Passthrough to :meth:`CorfuClient.append_async`: the returned
        :class:`~repro.corfu.client.AppendFuture` resolves to the log
        offset once the append pipeline commits it. Callers issuing a
        flight of appends and collecting the handles afterwards get the
        pipelined chain-write path (overlapped hops, shared grants).
        """
        return self._corfu.append_async(payload, stream_ids)

    def append_batch(
        self, payloads: Sequence[bytes], stream_ids: Sequence[int]
    ) -> List[int]:
        """Multiappend several payloads with one sequencer round trip.

        Each payload joins every stream in *stream_ids*; the resulting
        linked lists are identical to sequential :meth:`append` calls
        (see :meth:`CorfuClient.append_batch`). Returns the offsets in
        payload order.
        """
        return self._corfu.append_batch(payloads, stream_ids)

    # -- entry fetch with hole handling ------------------------------------------

    def _default_hole_handler(self, offset: int) -> None:
        self._corfu.fill(offset)

    def fetch(self, offset: int) -> LogEntry:
        """Read (and cache) the entry at *offset*, patching holes.

        Returns a junk entry for trimmed offsets so that walkers treat
        reclaimed space like filled holes.

        Concurrent fetches of the same offset are single-flighted:
        exactly one thread issues the read RPC (and, on a hole, runs the
        hole handler exactly once); every other thread waits and shares
        the owner's entry or exception. Without this, the window between
        the cache-miss check and the cache insert lets N threads issue N
        identical RPCs — and run N hole handlers — for one offset.
        """
        while True:
            with self._cache_lock:
                cached = self._cache.get(offset)
                if cached is not None:
                    self._cache.move_to_end(offset)
                    return cached
                flight = self._inflight.get(offset)
                if flight is None:
                    flight = _InflightFetch()
                    self._inflight[offset] = flight
                    owner = True
                else:
                    owner = False
            if not owner:
                flight.event.wait()
                if flight.exc is not None:
                    raise flight.exc
                if flight.entry is not None:
                    return flight.entry
                # Unresolved slot (a best-effort batch skipped this
                # offset): loop and become the new owner.
                continue
            try:
                entry = self._fetch_uncached(offset)
            except BaseException as exc:
                with self._cache_lock:
                    self._inflight.pop(offset, None)
                    flight.exc = exc
                flight.event.set()
                raise
            with self._cache_lock:
                self._cache_insert_locked(offset, entry)
                self._inflight.pop(offset, None)
                flight.entry = entry
            flight.event.set()
            return entry

    def _fetch_uncached(self, offset: int) -> LogEntry:
        """The actual read RPC (plus hole handling) behind ``fetch``."""
        try:
            return self._corfu.read(offset)
        except UnwrittenError:
            self._hole_handler(offset)
            try:
                return self._corfu.read(offset)
            except UnwrittenError:
                # Handler chose not to fill (e.g. still inside the
                # timeout window); surface the hole to the caller.
                raise
        except TrimmedError:
            return LogEntry.junk()

    @staticmethod
    def _entry_bytes(entry: LogEntry) -> int:
        return len(entry.payload) + CACHE_ENTRY_OVERHEAD

    def _cache_insert_locked(self, offset: int, entry: LogEntry) -> None:
        """Insert into the LRU cache; caller holds ``_cache_lock``."""
        old = self._cache.get(offset)
        if old is not None:
            self._cache_bytes -= self._entry_bytes(old)
        self._cache[offset] = entry
        self._cache.move_to_end(offset)
        self._cache_bytes += self._entry_bytes(entry)
        self._cache_shrink_locked()

    def _cache_shrink_locked(self) -> None:
        """Evict LRU entries past the entry cap or the byte budget."""
        budget = self._cache_budget
        while len(self._cache) > self._cache_entries or (
            budget is not None
            and self._cache_bytes > budget
            and len(self._cache) > 1
        ):
            _off, victim = self._cache.popitem(last=False)
            self._cache_bytes -= self._entry_bytes(victim)

    def _fetch_many_best_effort(self, offsets: Sequence[int]) -> int:
        """Warm the cache for *offsets* in one batched read per chain.

        Claims single-flight slots for the offsets that are neither
        cached nor already in flight, reads them all with a single
        :meth:`CorfuClient.read_many` round, and caches the written
        ones (trimmed offsets cache as junk, matching ``fetch``).
        Unwritten offsets are *skipped* — no hole handling here — and
        their slots resolve empty, which sends any waiter (including our
        caller's per-offset fallback) through ``fetch`` to own the hole.
        Returns the number of offsets newly cached.
        """
        claimed: Dict[int, _InflightFetch] = {}
        with self._cache_lock:
            for off in offsets:
                if off in self._cache or off in claimed or off in self._inflight:
                    continue
                flight = _InflightFetch()
                self._inflight[off] = flight
                claimed[off] = flight
        if not claimed:
            return 0
        try:
            outcomes = self._corfu.read_many(tuple(claimed))
        except BaseException:
            with self._cache_lock:
                for off in claimed:
                    self._inflight.pop(off, None)
            for flight in claimed.values():
                flight.event.set()  # unresolved: waiters retry solo
            raise
        filled = 0
        with self._cache_lock:
            for off, flight in claimed.items():
                outcome = outcomes.get(off)
                if isinstance(outcome, LogEntry):
                    entry: Optional[LogEntry] = outcome
                elif isinstance(outcome, TrimmedError):
                    entry = LogEntry.junk()
                else:
                    entry = None  # hole: leave to per-offset fetch
                if entry is not None:
                    self._cache_insert_locked(off, entry)
                    flight.entry = entry
                    filled += 1
                self._inflight.pop(off, None)
        for flight in claimed.values():
            flight.event.set()
        return filled

    def _prefetch(self, offsets: Sequence[int]) -> None:
        """Best-effort batched cache warm: never raises, never fills holes.

        Only spends an RPC when at least two of the offsets are actual
        cache misses — a single miss costs the same round trip either
        way, and the subsequent ``fetch`` handles it with full hole
        semantics.
        """
        with self._cache_lock:
            misses = [
                off
                for off in offsets
                if off not in self._cache and off not in self._inflight
            ]
        if len(misses) < 2:
            return
        try:
            self._fetch_many_best_effort(misses)
        except ReproError:
            pass  # the per-offset path retries with full discipline

    def fetch_many(self, offsets: Sequence[int]) -> Dict[int, LogEntry]:
        """Fetch several offsets, batching the storage round trips.

        Equivalent to ``{off: fetch(off) for off in offsets}`` —
        including hole handling and junk-for-trimmed — but written
        offsets are read with one RPC per replica chain instead of one
        per offset. Holes surface through the per-offset fallback so the
        hole handler runs exactly once per hole.
        """
        wanted = sorted(set(offsets))
        if len(wanted) > 1:
            try:
                self._fetch_many_best_effort(wanted)
            except ReproError:
                pass  # fall through to the per-offset retry discipline
        return {off: self.fetch(off) for off in wanted}

    # -- cache maintenance -------------------------------------------------------

    @property
    def cache_size(self) -> int:
        """Entries currently cached (tests/observability)."""
        with self._cache_lock:
            return len(self._cache)

    def cached_offsets(self) -> Tuple[int, ...]:
        """Snapshot of cached offsets, ascending (tests/observability)."""
        with self._cache_lock:
            return tuple(sorted(self._cache))

    def set_cache_budget(self, budget: Optional[int]) -> None:
        """Cap the entry cache at *budget* bytes (None removes the cap).

        Memory-bounded mode: the cache evicts least-recently-used
        entries until it fits, on every insert and right here. Entry
        cost is ``len(payload) + CACHE_ENTRY_OVERHEAD``.
        """
        if budget is not None and budget <= 0:
            raise ValueError("cache budget must be a positive byte count")
        with self._cache_lock:
            self._cache_budget = budget
            self._cache_shrink_locked()

    def resident_bytes(self) -> int:
        """Estimated bytes held by the entry cache."""
        with self._cache_lock:
            return self._cache_bytes

    def _on_trim(self, offset: int, is_prefix: bool) -> None:
        """Release client memory the log just reclaimed.

        Registered with :meth:`CorfuClient.subscribe_trim`; runs on the
        trimming thread after the cluster-side trim succeeds. Without
        this the cache would keep serving entries whose offsets the log
        has already handed back to GC — unbounded memory on a client
        that plays a long-lived, checkpointed stream.

        In memory-bounded mode (a byte budget is set) a prefix trim
        additionally drops the per-stream linked-list entries below the
        horizon: those offsets read as junk forever, so keeping their
        bookkeeping would grow client memory with total log history
        instead of live history.
        """
        with self._cache_lock:
            if is_prefix:
                stale = [off for off in self._cache if off < offset]
            else:
                stale = [offset] if offset in self._cache else []
            for off in stale:
                self._cache_bytes -= self._entry_bytes(self._cache.pop(off))
            bounded = self._cache_budget is not None
        if is_prefix and bounded:
            with self._lock:
                for state in self._streams.values():
                    state.forget_below(offset)

    # -- sync: bring the linked list up to date ------------------------------------

    def sync(self, stream_id: int) -> int:
        """Update the stream's linked list; return its last offset.

        One sequencer query plus ~N/K reads for N newly discovered
        entries. Returns :data:`NO_BACKPOINTER` for an empty stream.
        Applications must call this before ``readnext`` to get
        linearizable semantics (section 5).
        """
        _tail, last_offsets = self._corfu.query_streams((stream_id,))
        return self._sync_from(stream_id, last_offsets.get(stream_id, ()))

    def sync_many(self, stream_ids: Sequence[int]) -> Dict[int, int]:
        """Sync several streams with a single sequencer query.

        Returns each stream's last known offset after the sync. The
        Tango runtime uses this before a merged playback pass so that
        multi-stream commit records find every involved hosted stream
        up to date.
        """
        _tail, last_offsets = self._corfu.query_streams(tuple(stream_ids))
        return {
            sid: self._sync_from(sid, last_offsets.get(sid, ()))
            for sid in stream_ids
        }

    def _sync_from(self, stream_id: int, recent_offsets: Sequence[int]) -> int:
        """Walk backpointers from the sequencer's last-K offsets."""
        with self._lock:
            return self._sync_from_locked(stream_id, recent_offsets)

    def _sync_from_locked(
        self, stream_id: int, recent_offsets: Sequence[int]
    ) -> int:
        state = self._state(stream_id)
        recents = [o for o in recent_offsets if o != NO_BACKPOINTER]
        if not recents:
            return state.highest_known()
        floor = state.highest_known()
        discovered: set = set()
        # Seed the walk with the sequencer's last-K offsets; they are the
        # newest entries of the stream, newest first.
        for off in recents:
            if off > floor:
                discovered.add(off)
        cursor = min(recents)
        if cursor <= floor:
            cursor = None
        window = self._prefetch_window
        # Stride estimate: mean gap between consecutive entries of this
        # stream, seeded from the sequencer's last-K offsets and refined
        # from each entry's backpointers as the walk descends. The
        # speculative window prefetch below only pays when a W-offset
        # window is expected to hold several entries of the stream.
        if len(recents) >= 2:
            stride = max(1.0, (max(recents) - min(recents)) / (len(recents) - 1))
        else:
            stride = 1.0
        while cursor is not None and cursor > floor:
            if window:
                self._maybe_prefetch_window(cursor, floor, window, stride)
            entry = self._try_fetch(cursor)
            header = entry.header_for(stream_id) if entry is not None else None
            if entry is None or entry.is_junk or header is None:
                # Filled hole (or an offset we cannot interpret): fall
                # back to a linear backward scan for the previous valid
                # entry of this stream.
                discovered.discard(cursor)
                cursor = self._scan_backward(stream_id, cursor - 1, floor)
                if cursor is not None:
                    discovered.add(cursor)
                continue
            self.sync_reads += 1
            discovered.add(cursor)
            ptrs = [
                p
                for p in header.backpointers
                if p != NO_BACKPOINTER and p > floor and p not in discovered
            ]
            if not ptrs:
                # Check whether the chain genuinely ends here or the
                # pointers merely overflowed/landed on known ground.
                prev = [p for p in header.backpointers if p != NO_BACKPOINTER]
                if prev and min(prev) > floor and min(prev) not in discovered:
                    cursor = min(prev)
                else:
                    cursor = None
                continue
            discovered.update(ptrs)
            stride = max(1.0, (cursor - min(ptrs)) / len(ptrs))
            cursor = min(ptrs)
        state.extend(discovered)
        return state.highest_known()

    def _maybe_prefetch_window(
        self, cursor: int, floor: int, window: int, stride: float
    ) -> None:
        """Speculatively batch-read the window below *cursor* if dense.

        The walk will examine roughly ``window / stride`` offsets inside
        the window, so speculation only pays when the stream is dense
        there; a sparse region (stride > window / 8) keeps the exact
        per-offset walk and never over-reads. Skipped when *cursor* is
        already cached or in flight — the walk is inside warm ground.
        """
        if stride > window / 8:
            return
        with self._cache_lock:
            if cursor in self._cache or cursor in self._inflight:
                return
        lo = max(floor + 1, cursor - window + 1)
        if cursor - lo < 1:
            return
        self._prefetch(range(lo, cursor + 1))

    def _try_fetch(self, offset: int) -> Optional[LogEntry]:
        """Fetch, mapping unresolvable holes to None."""
        try:
            return self.fetch(offset)
        except UnwrittenError:
            return None

    def _scan_backward(
        self, stream_id: int, start: int, floor: int
    ) -> Optional[int]:
        """Linear backward scan for the previous valid entry of a stream.

        Used when backpointers dead-end in junk (section 5: "a client in
        this situation resorts to scanning the log backwards to find an
        earlier valid entry for the stream").

        The scan examines every offset in range regardless, so it reads
        the log in :data:`SCAN_WINDOW`-sized batches — one storage round
        trip per replica chain per window instead of one per offset.
        Holes inside a window are skipped by the batch and re-fetched
        individually so hole handling stays per-offset and exactly-once.
        """
        top = start
        while top > floor:
            lo = max(floor + 1, top - SCAN_WINDOW + 1)
            if top > lo:
                self._prefetch(range(lo, top + 1))
            for offset in range(top, lo - 1, -1):
                self.backward_scans += 1
                entry = self._try_fetch(offset)
                if entry is None or entry.is_junk:
                    continue
                if entry.header_for(stream_id) is not None:
                    return offset
            top = lo - 1
        return None

    # -- playback ---------------------------------------------------------------

    def readnext(
        self, stream_id: int, upto: Optional[int] = None
    ) -> Optional[Tuple[int, LogEntry]]:
        """Deliver the stream's next entry, or None if caught up.

        With *upto* set, entries at offsets greater than *upto* are held
        back; the Tango runtime uses this to play "all the streams
        involved until position X" when it meets a multi-stream commit
        record (section 4.1), and to build historical views from a
        prefix of the log (section 3.1, "History").
        """
        with self._lock:
            state = self._state(stream_id)
            if state.read_ptr >= len(state.offsets):
                return None
            offset = state.offsets[state.read_ptr]
            if upto is not None and offset > upto:
                return None
            # The next few deliverable offsets are already known; warm
            # them with one batched read instead of one RPC each as the
            # iterator reaches them. Bounded by *upto* so a held-back
            # suffix is never read early.
            upcoming = [
                off
                for off in state.offsets[
                    state.read_ptr : state.read_ptr + PLAYBACK_PREFETCH
                ]
                if upto is None or off <= upto
            ]
            if len(upcoming) > 1:
                self._prefetch(upcoming)
            entry = self.fetch(offset)
            state.read_ptr += 1
            return offset, entry

    def peek_offset(self, stream_id: int) -> Optional[int]:
        """Offset of the next undelivered entry, or None if caught up.

        Does not move the iterator; the runtime's merged playback uses
        this to pick the globally smallest next offset across streams.
        """
        with self._lock:
            state = self._state(stream_id)
            if state.read_ptr >= len(state.offsets):
                return None
            return state.offsets[state.read_ptr]

    def seek(self, stream_id: int, after_offset: int) -> None:
        """Move the iterator past every offset <= *after_offset*.

        Used after loading a checkpoint: playback resumes at the first
        entry the checkpoint does not cover.
        """
        with self._lock:
            state = self._state(stream_id)
            ptr = 0
            while ptr < len(state.offsets) and state.offsets[ptr] <= after_offset:
                ptr += 1
            state.read_ptr = ptr

    def known_offsets(self, stream_id: int) -> Tuple[int, ...]:
        """The stream's current linked list (ascending), without fetching."""
        with self._lock:
            return tuple(self._state(stream_id).offsets)

    def lookahead(self, stream_id: int, after_offset: int):
        """Yield (offset, entry) pairs beyond *after_offset* without
        moving the iterator.

        Consuming clients use this to hunt for a decision record further
        down a stream while replaying history (the decision record of a
        transaction always follows its commit record in the same
        streams). The offset list is snapshotted under the lock; the
        fetches happen outside it so a paused consumer cannot hold the
        iterator lock against playback threads.
        """
        with self._lock:
            offsets = [
                offset
                for offset in self._state(stream_id).offsets
                if offset > after_offset
            ]
        for i in range(0, len(offsets), PLAYBACK_PREFETCH):
            chunk = offsets[i : i + PLAYBACK_PREFETCH]
            if len(chunk) > 1:
                self._prefetch(chunk)
            for offset in chunk:
                yield offset, self.fetch(offset)

    def position(self, stream_id: int) -> int:
        """Offset of the last delivered entry (NO_BACKPOINTER before any).

        After a prefix trim forgot delivered offsets (memory-bounded
        mode), the trim floor stands in for them: everything at or
        below it is part of the delivered history.
        """
        with self._lock:
            state = self._state(stream_id)
            if state.read_ptr == 0:
                return state.trim_floor
            return state.offsets[state.read_ptr - 1]

    def pending(self, stream_id: int) -> int:
        """Entries discovered by sync but not yet delivered."""
        with self._lock:
            state = self._state(stream_id)
            return len(state.offsets) - state.read_ptr

    def reset(self, stream_id: int) -> None:
        """Rewind the iterator to the beginning of the stream.

        Combined with ``readnext(upto=...)`` this instantiates a view
        from a prefix of the history (time travel, section 3.1).
        """
        with self._lock:
            self._state(stream_id).read_ptr = 0

    # -- passthroughs -------------------------------------------------------------

    def check_tail(self, stream_ids: Optional[Sequence[int]] = None) -> int:
        """Current tail of the underlying shared log (fast check).

        With *stream_ids*, only the sequencer shards owning those
        streams are queried — one RPC per owning shard instead of one
        per shard of the whole group — and the result still bounds
        every offset those streams' entries can occupy (a cross-shard
        entry bumps the owning shard's counter past its offset when
        the grant commits). Without arguments this is the global fast
        check across all shards.
        """
        if stream_ids:
            tail, _ = self._corfu.query_streams(tuple(stream_ids))
            return tail
        return self._corfu.check(fast=True)

    @property
    def corfu(self) -> CorfuClient:
        return self._corfu
