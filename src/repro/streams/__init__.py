"""Streams: selective playback of subsequences of the shared log.

"A stream provides a readnext interface over the address space of the
shared log, allowing clients to selectively learn or consume the
subsequence of updates that concern them while skipping over those that
do not" (paper section 1). Streams are the mechanism behind layered
partitioning: each Tango object lives on its own stream, and a client
only plays the streams of the objects it hosts.
"""

from repro.streams.stream import StreamClient

__all__ = ["StreamClient"]
