"""Process supervision: spawn, monitor, and kill node processes.

Each :class:`NodeSpec` becomes one child process running
``python -m repro.net.server``. The readiness handshake is the child
printing ``READY <name> <host> <port>`` once its listener is bound —
children bind port 0 by default, so there are no port-allocation races;
a per-child reader thread parses the line and keeps a tail of recent
output for crash diagnostics.

Failure model: a child that exits (for any reason) is *down*. The
supervisor notices via ``poll()`` — on demand through
:meth:`Supervisor.ensure_up` / :meth:`down_nodes`, or continuously via
:meth:`monitor`, which invokes a callback with
:class:`~repro.errors.NodeDownError` per newly dead node. Crashed
nodes stay in the roster (their exit code and output tail are
retained); the cluster-level response — ejecting the node from the
projection — belongs to the CORFU reconfiguration protocol, not the
supervisor.

All wall-clock waiting goes through
:class:`~repro.net.clock.MonotonicClock`: supervision is operational
machinery, never replayed state.
"""

from __future__ import annotations

import os
import signal
import socket as _socket
import subprocess
import sys
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import NodeDownError
from repro.net.clock import MonotonicClock
from repro.net.socket import SocketTransport
from repro.net.wire import decode_value, recv_frame, send_frame

#: Output lines retained per child for post-mortem diagnostics.
_OUTPUT_TAIL = 200


@dataclass(frozen=True)
class NodeSpec:
    """One node process to launch.

    ``kind`` selects what the server hosts (``storage`` or
    ``sequencer``); ``port`` 0 lets the OS pick and the READY handshake
    report it back.
    """

    name: str
    kind: str
    host: str = "127.0.0.1"
    port: int = 0
    k: int = 4
    #: Storage nodes only: host segmented durable storage under this
    #: directory (``--data-dir``); None keeps the node in-memory.
    data_dir: Optional[str] = None
    #: Background compaction sweep interval for durable storage nodes
    #: (seconds; 0 leaves compaction RPC-triggered only).
    compact_interval: float = 0.0


def cluster_specs(
    num_sets: int,
    replication_factor: int,
    sequencer: str = "seq-0",
    standby_sequencers: int = 0,
    host: str = "127.0.0.1",
    k: int = 4,
    data_dir: Optional[str] = None,
    compact_interval: float = 0.0,
) -> List[NodeSpec]:
    """Specs for the standard NxR layout plus its sequencer(s).

    Names match :func:`repro.corfu.layout.build_projection` exactly
    (``flash-{set}-{replica}``, sequencer ``seq-0``). Standby
    sequencers are named ``seq-1`` .. ``seq-N`` — the names
    :func:`repro.corfu.reconfig.replace_sequencer` reaches for on
    failover (``seq-{epoch+1}``), so launching one standby makes the
    first sequencer failover work over the wire.
    """
    specs = [
        NodeSpec(
            name=f"flash-{i}-{j}",
            kind="storage",
            host=host,
            k=k,
            data_dir=data_dir,
            compact_interval=compact_interval,
        )
        for i in range(num_sets)
        for j in range(replication_factor)
    ]
    specs.append(NodeSpec(name=sequencer, kind="sequencer", host=host, k=k))
    specs.extend(
        NodeSpec(name=f"seq-{n}", kind="sequencer", host=host, k=k)
        for n in range(1, standby_sequencers + 1)
    )
    return specs


class _Handle:
    """Supervisor-internal state for one child process."""

    def __init__(self, spec: NodeSpec, process: subprocess.Popen) -> None:
        self.spec = spec
        self.process = process
        self.address: Optional[Tuple[str, int]] = None
        self.ready = threading.Event()
        self.output: Deque[str] = deque(maxlen=_OUTPUT_TAIL)
        self.reader: Optional[threading.Thread] = None


class Supervisor:
    """Spawn and supervise one server process per :class:`NodeSpec`."""

    def __init__(
        self,
        specs: List[NodeSpec],
        python: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
        ready_timeout: float = 15.0,
    ) -> None:
        self._specs = list(specs)
        names = [s.name for s in self._specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in specs: {names}")
        self._python = python if python is not None else sys.executable
        self._env = env
        self._ready_timeout = ready_timeout
        self._clock = MonotonicClock()
        self._handles: Dict[str, _Handle] = {}
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Supervisor":
        """Launch every child and wait for all READY handshakes."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        try:
            for spec in self._specs:
                self._handles[spec.name] = self._spawn(spec)
            deadline = self._clock.now() + self._ready_timeout
            for handle in self._handles.values():
                budget = deadline - self._clock.now()
                if budget <= 0 or not handle.ready.wait(budget):
                    raise RuntimeError(
                        f"node {handle.spec.name} did not become ready "
                        f"within {self._ready_timeout}s; last output: "
                        f"{list(handle.output)[-5:]}"
                    )
        except BaseException:
            self.stop()
            raise
        return self

    def _spawn(self, spec: NodeSpec) -> _Handle:
        env = dict(os.environ if self._env is None else self._env)
        # Children must import repro from this checkout even when it is
        # not installed: prepend the package parent to PYTHONPATH.
        src_dir = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        prior = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not prior else src_dir + os.pathsep + prior
        )
        argv = [
            self._python,
            "-m",
            "repro.net.server",
            "--name",
            spec.name,
            "--kind",
            spec.kind,
            "--host",
            spec.host,
            "--port",
            str(spec.port),
            "--k",
            str(spec.k),
        ]
        if spec.data_dir is not None and spec.kind == "storage":
            argv += ["--data-dir", spec.data_dir]
            if spec.compact_interval > 0:
                argv += ["--compact-interval", str(spec.compact_interval)]
        process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        handle = _Handle(spec, process)
        handle.reader = threading.Thread(
            target=self._read_output,
            args=(handle,),
            name=f"repro-proc-{spec.name}",
            daemon=True,
        )
        handle.reader.start()
        return handle

    def _read_output(self, handle: _Handle) -> None:
        stdout = handle.process.stdout
        assert stdout is not None
        for line in stdout:
            line = line.rstrip("\n")
            handle.output.append(line)
            if line.startswith("READY ") and not handle.ready.is_set():
                parts = line.split()
                if len(parts) == 4 and parts[1] == handle.spec.name:
                    handle.address = (parts[2], int(parts[3]))
                    handle.ready.set()
        # EOF: the child exited; wake any start() waiting on readiness
        # (it will see the dead process via ensure_up/down_nodes).
        handle.ready.set()

    def stop(self, timeout: float = 5.0) -> Dict[str, Optional[int]]:
        """Tear the fleet down; returns exit codes by node name.

        Escalation per child: graceful ``shutdown`` RPC, then SIGTERM,
        then SIGKILL. Reader threads are joined so no output is lost.
        """
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=2.0)
            self._monitor_thread = None
        for handle in self._handles.values():
            if handle.process.poll() is None and handle.address is not None:
                self._best_effort_shutdown(handle)
        deadline = self._clock.now() + timeout
        for escalate in (signal.SIGTERM, signal.SIGKILL):
            if all(h.process.poll() is not None for h in self._handles.values()):
                break
            for handle in self._handles.values():
                if handle.process.poll() is None:
                    try:
                        budget = max(0.1, (deadline - self._clock.now()) / 2)
                        handle.process.wait(timeout=budget)
                    except subprocess.TimeoutExpired:
                        try:
                            handle.process.send_signal(escalate)
                        except (ProcessLookupError, OSError):
                            pass
        exit_codes: Dict[str, Optional[int]] = {}
        for name, handle in self._handles.items():
            try:
                exit_codes[name] = handle.process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                exit_codes[name] = None
            if handle.reader is not None:
                handle.reader.join(timeout=2.0)
        return exit_codes

    def _best_effort_shutdown(self, handle: _Handle) -> None:
        """One shot at the graceful ``shutdown`` RPC; failures are fine."""
        assert handle.address is not None
        try:
            with _socket.create_connection(handle.address, timeout=1.0) as conn:
                conn.settimeout(1.0)
                send_frame(
                    conn,
                    {
                        "id": "supervisor#shutdown",
                        "source": "supervisor",
                        "target": handle.spec.name,
                        "op": "shutdown",
                        "args": [],
                        "kwargs": {},
                    },
                )
                recv_frame(conn)
        except (OSError, ValueError):
            pass

    def __enter__(self) -> "Supervisor":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- addressing / transports --------------------------------------------

    def addresses(self) -> Dict[str, Tuple[str, int]]:
        """Name → (host, port) for every ready node."""
        out: Dict[str, Tuple[str, int]] = {}
        for name, handle in self._handles.items():
            addr = handle.address
            if addr is not None:
                out[name] = addr
        return out

    def transport(self, timeout: float = 2.0) -> SocketTransport:
        """A fresh :class:`SocketTransport` wired to this fleet."""
        return SocketTransport(addresses=self.addresses(), timeout=timeout)

    # -- health --------------------------------------------------------------

    def alive(self, name: str) -> bool:
        """True while the child process for *name* is running."""
        return self._handles[name].process.poll() is None

    def ping(self, name: str) -> Dict[str, object]:
        """Health-check one node over the wire; returns its ping info."""
        handle = self._handles[name]
        if handle.address is None or handle.process.poll() is not None:
            raise NodeDownError(name)
        try:
            with _socket.create_connection(handle.address, timeout=1.0) as conn:
                conn.settimeout(1.0)
                send_frame(
                    conn,
                    {
                        "id": "supervisor#ping",
                        "source": "supervisor",
                        "target": name,
                        "op": "ping",
                        "args": [],
                        "kwargs": {},
                    },
                )
                response = recv_frame(conn)
        except (OSError, ValueError):
            raise NodeDownError(name) from None
        if response is None or "ok" not in response:
            raise NodeDownError(name)
        return decode_value(response["ok"])

    def down_nodes(self) -> List[str]:
        """Names of children that have exited."""
        return [
            name
            for name, handle in self._handles.items()
            if handle.process.poll() is not None
        ]

    def ensure_up(self) -> None:
        """Raise :class:`~repro.errors.NodeDownError` for the first dead node."""
        for name in self.down_nodes():
            raise NodeDownError(name)

    def monitor(
        self,
        on_down: Callable[[NodeDownError], None],
        interval: float = 0.25,
    ) -> None:
        """Poll children on a daemon thread; report each death once."""
        if self._monitor_thread is not None:
            raise RuntimeError("monitor already running")

        def watch() -> None:
            reported: set = set()
            while not self._monitor_stop.wait(interval):
                for name in self.down_nodes():
                    if name not in reported:
                        reported.add(name)
                        on_down(NodeDownError(name))

        self._monitor_thread = threading.Thread(
            target=watch, name="repro-proc-monitor", daemon=True
        )
        self._monitor_thread.start()

    # -- faults --------------------------------------------------------------

    def kill(self, name: str, sig: int = signal.SIGKILL) -> None:
        """Kill one node process (the SIGKILL failover drill)."""
        handle = self._handles[name]
        try:
            handle.process.send_signal(sig)
        except (ProcessLookupError, OSError):  # pragma: no cover - racing exit
            pass
        try:
            handle.process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass

    def output_tail(self, name: str) -> List[str]:
        """Recent stdout/stderr lines from one child (diagnostics)."""
        return list(self._handles[name].output)
