"""``python -m repro.proc`` == the ``repro-cluster`` CLI."""

import sys

from repro.proc.cli import main

sys.exit(main())
