"""repro-cluster: launch an N-node CORFU deployment as OS processes.

Quickstart (see docs/DEPLOY.md)::

    repro-cluster --sets 3 --replication 1          # run until Ctrl-C
    repro-cluster --sets 1 --replication 3 --smoke 100

``--smoke N`` appends N entries through a real client over TCP,
reads every one back, prints per-endpoint RPC stats, and exits 0 on
success — the one-command deployment check CI uses.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from repro.proc.remote import RemoteCluster
from repro.proc.supervisor import Supervisor, cluster_specs


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description=(
            "Launch a CORFU deployment (storage nodes + sequencer) as "
            "separate OS processes speaking framed JSON over TCP."
        ),
    )
    parser.add_argument(
        "--sets", type=int, default=3, help="replica sets (chains)"
    )
    parser.add_argument(
        "--replication", type=int, default=1, help="replicas per chain"
    )
    parser.add_argument(
        "--standby-sequencers",
        type=int,
        default=0,
        help="extra sequencer processes (seq-1..seq-N) for failover",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--k", type=int, default=4, help="backpointers per stream header"
    )
    parser.add_argument(
        "--timeout", type=float, default=2.0, help="per-RPC deadline (s)"
    )
    parser.add_argument(
        "--smoke",
        type=int,
        default=0,
        metavar="N",
        help="append/read N entries through a client, then exit",
    )
    return parser


def _run_smoke(cluster: RemoteCluster, count: int) -> int:
    client = cluster.client()
    offsets = [client.append(f"entry-{i}".encode()) for i in range(count)]
    for i, offset in enumerate(offsets):
        entry = client.read(offset)
        if entry.payload != f"entry-{i}".encode():
            print(f"SMOKE FAILED: offset {offset} read back {entry!r}")
            return 1
    print(f"smoke ok: {count} appends read back over TCP")
    for node, stats in sorted(client.net_stats().items()):
        print(f"  {node}: rpcs={stats['rpcs']} timeouts={stats['timeouts']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    specs = cluster_specs(
        args.sets,
        args.replication,
        standby_sequencers=args.standby_sequencers,
        host=args.host,
        k=args.k,
    )
    print(f"launching {len(specs)} node processes ...")
    supervisor = Supervisor(specs)
    try:
        supervisor.start()
        addresses = supervisor.addresses()
        width = max(len(name) for name in addresses)
        for name, (host, port) in sorted(addresses.items()):
            info = supervisor.ping(name)
            print(f"  {name:<{width}}  {host}:{port}  pid={info['pid']}")
        cluster = RemoteCluster(
            addresses,
            num_sets=args.sets,
            replication_factor=args.replication,
            k=args.k,
            timeout=args.timeout,
        )
        with cluster:
            if args.smoke:
                return _run_smoke(cluster, args.smoke)
            print("cluster up; Ctrl-C to stop")
            stop = threading.Event()
            signal.signal(signal.SIGINT, lambda *_: stop.set())
            signal.signal(signal.SIGTERM, lambda *_: stop.set())
            reported = set()
            while not stop.wait(0.5):
                for name in supervisor.down_nodes():
                    if name not in reported:
                        reported.add(name)
                        print(
                            f"node {name} is down "
                            f"(see repro.corfu.reconfig for failover)"
                        )
        return 0
    finally:
        exit_codes = supervisor.stop()
        if exit_codes:
            codes = " ".join(
                f"{name}={code}" for name, code in sorted(exit_codes.items())
            )
            print(f"stopped: {codes}")


if __name__ == "__main__":
    sys.exit(main())
