"""RemoteCluster: the client-side handle on a wire deployment.

:class:`~repro.corfu.client.CorfuClient`, the stream layer, and the
reconfiguration driver all consume a *cluster* object for exactly four
things: the transport, the authoritative projection (the paper's
auxiliary), deployment constants (``k`` / ``entry_size`` /
``max_streams``), and ``storage()`` / ``sequencer()`` resolvers that
only the in-process transports ever invoke. :class:`RemoteCluster`
provides all four over TCP, so the entire client stack runs unchanged
against real processes.

The auxiliary caveat: the paper keeps projections in a Paxos-backed
service; here the authoritative copy lives in the *client process*
(same epoch-checked ``install_projection`` semantics as
:class:`~repro.corfu.cluster.CorfuCluster`). Clients in one process
share one auxiliary; separate client processes each have their own —
fine for benchmarks and the e2e suite (one driver process), and the
storage-side epoch sealing still fences stale writers regardless of
who drove the reconfiguration.

``storage()`` / ``sequencer()`` raise: over a wire there is no live
node object, and only loopback-style transports ever call the resolver
a proxy carries. Anything that genuinely needs the object (e.g.
:func:`repro.corfu.reconfig.checkpoint_sequencer_state`, which reads
the sequencer's soft state directly) is loopback-only by design.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.corfu.entry import DEFAULT_ENTRY_SIZE, DEFAULT_K
from repro.corfu.layout import Projection, build_projection
from repro.net.socket import SocketTransport
from repro.net.transport import Transport


class RemoteCluster:
    """Duck-typed :class:`~repro.corfu.cluster.CorfuCluster` over TCP.

    Args:
        addresses: node name → ``(host, port)`` map, typically
            :meth:`repro.proc.supervisor.Supervisor.addresses`.
        num_sets / replication_factor / sequencer: the deployed layout;
            must match the processes actually running (names are the
            contract — see :func:`repro.proc.supervisor.cluster_specs`).
        projection: explicit initial projection (overrides the layout
            arguments).
        transport: defaults to a :class:`SocketTransport` over
            *addresses* with *timeout* seconds per call.
    """

    def __init__(
        self,
        addresses: Dict[str, Tuple[str, int]],
        num_sets: int = 1,
        replication_factor: int = 3,
        sequencer: str = "seq-0",
        k: int = DEFAULT_K,
        entry_size: int = DEFAULT_ENTRY_SIZE,
        max_streams: int = 16,
        projection: Optional[Projection] = None,
        transport: Optional[Transport] = None,
        timeout: float = 2.0,
    ) -> None:
        self.k = k
        self.entry_size = entry_size
        self.max_streams = max_streams
        self.transport: Transport = (
            transport
            if transport is not None
            else SocketTransport(addresses=dict(addresses), timeout=timeout)
        )
        if projection is None:
            projection = build_projection(
                num_sets, replication_factor, sequencer=sequencer
            )
        missing = [n for n in projection.all_nodes() if n not in addresses]
        if projection.sequencer not in addresses:
            missing.append(projection.sequencer)
        if missing:
            raise ValueError(
                f"projection names nodes with no address: {missing}"
            )
        self._projection = projection
        self._lock = threading.Lock()
        self._client_ids = iter(range(1, 1 << 31))

    # -- membership (the client-process auxiliary) ---------------------------

    @property
    def projection(self) -> Projection:
        """The current (latest-epoch) projection."""
        with self._lock:
            return self._projection

    def install_projection(self, projection: Projection) -> None:
        """Atomically install a higher-epoch projection."""
        with self._lock:
            if projection.epoch <= self._projection.epoch:
                raise ValueError(
                    f"projection epoch {projection.epoch} is not newer than "
                    f"current epoch {self._projection.epoch}"
                )
            self._projection = projection

    def storage(self, name: str):
        """No live objects over a wire; see the module docstring."""
        raise RuntimeError(
            f"RemoteCluster has no in-process object for storage node "
            f"{name!r}; all access goes through the transport"
        )

    def sequencer(self, name: Optional[str] = None):
        """No live objects over a wire; see the module docstring."""
        raise RuntimeError(
            f"RemoteCluster has no in-process object for sequencer "
            f"{name!r}; all access goes through the transport"
        )

    # -- clients -------------------------------------------------------------

    def client(self, name: Optional[str] = None) -> "CorfuClient":
        """A :class:`~repro.corfu.client.CorfuClient` over this wire."""
        from repro.corfu.client import CorfuClient

        return CorfuClient(self, name=name)

    def next_client_name(self) -> str:
        """Mint a unique transport endpoint name for a new client."""
        with self._lock:
            return f"client-{next(self._client_ids)}"

    def close(self) -> None:
        """Release pooled connections (processes are not ours to stop)."""
        close = getattr(self.transport, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "RemoteCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.projection
        return (
            f"<RemoteCluster epoch={p.epoch} sets={len(p.replica_sets)} "
            f"sequencer={p.sequencer}>"
        )
