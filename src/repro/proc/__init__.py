"""repro.proc: real OS processes for CORFU nodes.

The loopback deployment puts every node in one interpreter; this
package puts each node in its own process behind
:class:`~repro.net.socket.SocketTransport`:

- :class:`NodeSpec` / :func:`cluster_specs` describe a deployment in
  the same naming scheme :func:`repro.corfu.layout.build_projection`
  uses, so projections and processes always agree on node names.
- :class:`Supervisor` spawns one ``python -m repro.net.server`` per
  spec, parses their READY handshakes, health-pings them, surfaces
  crashes as :class:`~repro.errors.NodeDownError`, and tears the fleet
  down cleanly (graceful shutdown RPC, then SIGTERM, then SIGKILL).
- :class:`RemoteCluster` is the client-side cluster handle: it
  duck-types :class:`~repro.corfu.cluster.CorfuCluster` closely enough
  that :class:`~repro.corfu.client.CorfuClient`, the stream layer, and
  the reconfiguration driver run unchanged over TCP.
- ``repro-cluster`` (:mod:`repro.proc.cli`) launches an N-node
  deployment from the command line.
"""

from repro.proc.remote import RemoteCluster
from repro.proc.supervisor import NodeSpec, Supervisor, cluster_specs

__all__ = [
    "NodeSpec",
    "RemoteCluster",
    "Supervisor",
    "cluster_specs",
]
