"""TangoGraph: a replicated directed graph.

The paper's introduction lists "network topologies" and "provenance
graphs" among real-world metadata; this object serves both. The view is
an adjacency map; mutators carry the touched node as the fine-grained
versioning key, so transactions editing disjoint regions of the graph
never conflict.

Edges may carry JSON-serializable labels (link capacity, provenance
relation, ...). Accessors include the queries topology services
actually run: neighbours, degree, and bounded reachability.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Optional, Set, Tuple

from repro.tango.object import TangoObject


class TangoGraph(TangoObject):
    """A persistent, transactional directed graph."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._nodes: Dict[str, Any] = {}  # node -> attribute value
        self._edges: Dict[str, Dict[str, Any]] = {}  # src -> {dst: label}
        super().__init__(runtime, oid, host_view=host_view)

    # -- upcalls ------------------------------------------------------------

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        kind = op["op"]
        if kind == "add_node":
            self._nodes[op["n"]] = op.get("attrs")
            self._edges.setdefault(op["n"], {})
        elif kind == "remove_node":
            node = op["n"]
            self._nodes.pop(node, None)
            self._edges.pop(node, None)
            for targets in self._edges.values():
                targets.pop(node, None)
        elif kind == "add_edge":
            src, dst = op["src"], op["dst"]
            # Implicit node creation keeps apply total under any
            # interleaving of concurrent mutators.
            self._nodes.setdefault(src, None)
            self._nodes.setdefault(dst, None)
            self._edges.setdefault(src, {})[dst] = op.get("label")
            self._edges.setdefault(dst, {})
        elif kind == "remove_edge":
            targets = self._edges.get(op["src"])
            if targets is not None:
                targets.pop(op["dst"], None)
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown graph op {kind!r}")

    def get_checkpoint(self) -> bytes:
        return json.dumps({"nodes": self._nodes, "edges": self._edges}).encode()

    def load_checkpoint(self, state: bytes) -> None:
        data = json.loads(state.decode("utf-8"))
        self._nodes = data["nodes"]
        self._edges = data["edges"]

    # -- mutators --------------------------------------------------------------

    def add_node(self, node: str, attrs: Any = None) -> None:
        op = json.dumps({"op": "add_node", "n": node, "attrs": attrs})
        self._update(op.encode("utf-8"), key=node.encode("utf-8"))

    def remove_node(self, node: str) -> None:
        """Remove a node and every edge touching it (whole-object
        version bump: incident edges may live anywhere)."""
        op = json.dumps({"op": "remove_node", "n": node})
        self._update(op.encode("utf-8"))

    def add_edge(self, src: str, dst: str, label: Any = None) -> None:
        op = json.dumps({"op": "add_edge", "src": src, "dst": dst, "label": label})
        self._update(op.encode("utf-8"), key=src.encode("utf-8"))

    def remove_edge(self, src: str, dst: str) -> None:
        op = json.dumps({"op": "remove_edge", "src": src, "dst": dst})
        self._update(op.encode("utf-8"), key=src.encode("utf-8"))

    # -- accessors --------------------------------------------------------------

    def has_node(self, node: str) -> bool:
        self._query(key=node.encode("utf-8"))
        return node in self._nodes

    def node_attrs(self, node: str) -> Any:
        self._query(key=node.encode("utf-8"))
        return self._nodes.get(node)

    def neighbors(self, node: str) -> Tuple[str, ...]:
        """Outgoing neighbours of *node*, sorted."""
        self._query(key=node.encode("utf-8"))
        return tuple(sorted(self._edges.get(node, ())))

    def edge_label(self, src: str, dst: str) -> Any:
        self._query(key=src.encode("utf-8"))
        return self._edges.get(src, {}).get(dst)

    def degree(self, node: str) -> int:
        self._query(key=node.encode("utf-8"))
        return len(self._edges.get(node, ()))

    def node_count(self) -> int:
        self._query()
        return len(self._nodes)

    def reachable(self, src: str, dst: str, max_hops: Optional[int] = None) -> bool:
        """BFS reachability over the linearizable view.

        The provenance question ("does artifact B descend from A?") and
        the topology question ("is there a path from rack X to rack
        Y?") in one accessor.
        """
        self._query()
        if src not in self._nodes or dst not in self._nodes:
            return False
        if src == dst:
            return True
        seen: Set[str] = {src}
        frontier = deque([(src, 0)])
        while frontier:
            node, depth = frontier.popleft()
            if max_hops is not None and depth >= max_hops:
                continue
            for nxt in self._edges.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, depth + 1))
        return False

    # -- transactional pattern ------------------------------------------------------

    def move_edge(self, src: str, old_dst: str, new_dst: str) -> None:
        """Atomically repoint an edge (e.g. re-cable a topology link)."""

        def body() -> None:
            self._query(key=src.encode("utf-8"))
            if old_dst not in self._edges.get(src, {}):
                raise KeyError(f"no edge {src} -> {old_dst}")
            label = self._edges[src][old_dst]
            self.remove_edge(src, old_dst)
            self.add_edge(src, new_dst, label)

        self._runtime.run_transaction(body)
