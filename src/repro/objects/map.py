"""TangoMap: a replicated hash map with fine-grained versioning.

The workhorse of the paper's evaluation (Figures 9 and 10). Keys are
strings; values any JSON-serializable object. Every operation passes the
key to the runtime's helper calls, so transactions touching disjoint
keys do not conflict (section 3.2, "Versioning").

:class:`TangoIndexedMap` is the log-structured variant from section 3.1
("Durability"): its view maps keys to *log offsets* instead of values,
"effectively turning the data structure into an index over
log-structured storage"; a get consults the index and then issues a
random read to the shared log for the value.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.tango.object import TangoObject
from repro.tango.records import UpdateRecord, decode_records


class TangoMap(TangoObject):
    """A persistent, transactional string-keyed map."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._map: Dict[str, Any] = {}
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        if op["op"] == "put":
            self._map[op["k"]] = op["v"]
        elif op["op"] == "remove":
            self._map.pop(op["k"], None)
        else:  # "clear"
            self._map.clear()

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._map).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._map = json.loads(state.decode("utf-8"))

    def get_checkpoint_delta(self, keys) -> bytes:
        """Serialize only the entries behind the changed version *keys*.

        ``clear`` is unkeyed, so the runtime forces a full checkpoint
        after one — a delta never has to express "everything vanished".
        """
        puts: Dict[str, Any] = {}
        dels = []
        for raw in sorted(keys):
            key = raw.decode("utf-8")
            if key in self._map:
                puts[key] = self._map[key]
            else:
                dels.append(key)
        return json.dumps({"set": puts, "del": dels}, sort_keys=True).encode(
            "utf-8"
        )

    def load_checkpoint_delta(self, state: bytes) -> None:
        delta = json.loads(state.decode("utf-8"))
        self._map.update(delta.get("set", {}))
        for key in delta.get("del", ()):
            self._map.pop(key, None)

    # -- mutators ---------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        op = json.dumps({"op": "put", "k": key, "v": value})
        self._update(op.encode("utf-8"), key=key.encode("utf-8"))

    def remove(self, key: str) -> None:
        op = json.dumps({"op": "remove", "k": key})
        self._update(op.encode("utf-8"), key=key.encode("utf-8"))

    def clear(self) -> None:
        """Drop every key (bumps the whole-object version)."""
        self._update(json.dumps({"op": "clear"}).encode("utf-8"))

    # -- accessors ---------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        self._query(key=key.encode("utf-8"))
        return self._map.get(key, default)

    def contains(self, key: str) -> bool:
        self._query(key=key.encode("utf-8"))
        return key in self._map

    def size(self) -> int:
        """Linearizable size (reads the whole object)."""
        self._query()
        return len(self._map)

    def keys(self) -> Tuple[str, ...]:
        self._query()
        return tuple(self._map)

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        self._query()
        return tuple(self._map.items())


class TangoIndexedMap(TangoObject):
    """A map whose view is an index into the shared log.

    The apply upcall stores the update's log offset; ``get`` dereferences
    the offset with a random read. Values therefore live exactly once,
    in the log, regardless of how many clients host views.
    """

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._index: Dict[str, int] = {}
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        if op["op"] == "put":
            self._index[op["k"]] = offset
        else:  # "remove"
            self._index.pop(op["k"], None)

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._index).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._index = json.loads(state.decode("utf-8"))

    def put(self, key: str, value: Any) -> None:
        op = json.dumps({"op": "put", "k": key, "v": value})
        self._update(op.encode("utf-8"), key=key.encode("utf-8"))

    def remove(self, key: str) -> None:
        op = json.dumps({"op": "remove", "k": key})
        self._update(op.encode("utf-8"), key=key.encode("utf-8"))

    def get(self, key: str, default: Any = None) -> Any:
        """Index lookup followed by a random read of the log."""
        self._query(key=key.encode("utf-8"))
        offset = self._index.get(key)
        if offset is None:
            return default
        entry = self._runtime.streams.fetch(offset)
        # The offset may hold a plain update record, or a commit record
        # whose transaction carried the put inline (a transaction's
        # writes become visible — and are indexed — at its commit point).
        candidates = []
        for record in decode_records(entry.payload):
            if isinstance(record, UpdateRecord):
                candidates.append(record)
            else:
                candidates.extend(getattr(record, "inline_updates", ()))
        # A transaction may put the same key twice; the last write wins.
        for record in reversed(candidates):
            if record.oid == self.oid:
                op = json.loads(record.payload.decode("utf-8"))
                if op.get("op") == "put" and op.get("k") == key:
                    return op["v"]
        return default

    def offset_of(self, key: str) -> Optional[int]:
        """The log offset backing *key* (for tests and introspection)."""
        self._query(key=key.encode("utf-8"))
        return self._index.get(key)

    def size(self) -> int:
        self._query()
        return len(self._index)
