"""TangoBK: BookKeeper's single-writer ledger abstraction over Tango.

Paper section 6.3: "We also implemented the single-writer ledger
abstraction of BookKeeper in around 300 lines of Java code ... Ledger
writes directly translate into stream appends (with some metadata added
to enforce the single-writer property)."

A :class:`Ledger` is a Tango object whose view is the ordered list of
committed entries. The single-writer property is enforced
deterministically in the apply upcall: an ``add`` is accepted only if it
carries the current writer's token and the next expected entry id.
Fencing (BookKeeper's recovery-open) installs a new writer token, after
which the old writer's in-flight adds are rejected by every view —
including the old writer's own, which is how it learns it has been
fenced.

:class:`TangoBK` is the thin manager API (create/open/delete by name)
mirroring BookKeeper's client.
"""

from __future__ import annotations

import base64
import itertools
import json
from typing import List, Optional, Tuple

from repro.errors import LedgerClosedError, LedgerFencedError
from repro.tango.object import TangoObject
from repro.util.ident import default_source

_STATE_OPEN = "open"
_STATE_CLOSED = "closed"


class Ledger(TangoObject):
    """A single-writer, append-only sequence of byte entries."""

    def __init__(
        self,
        runtime,
        oid: int,
        writer_token: Optional[str] = None,
        host_view: bool = True,
    ) -> None:
        # View state (modified only via apply).
        self._entries: List[bytes] = []
        self._entry_offsets: List[int] = []
        self._writer: Optional[str] = None
        self._state = _STATE_OPEN
        # Local (soft) writer identity, drawn from the seedable process
        # identity source so deterministic-replay tests can pin it.
        if writer_token is None:
            writer_token = default_source().writer_token()
        self.writer_token = writer_token
        self._next_seq = 0
        super().__init__(runtime, oid, host_view=host_view)

    # ------------------------------------------------------------------
    # apply upcall — the deterministic single-writer gate
    # ------------------------------------------------------------------

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        kind = op["op"]
        if kind == "claim":
            # First claim wins; later claims by other writers are
            # rejected unless they are fences.
            if self._writer is None:
                self._writer = op["writer"]
        elif kind == "add":
            if (
                self._state == _STATE_OPEN
                and op["writer"] == self._writer
                and op["seq"] == len(self._entries)
            ):
                self._entries.append(base64.b64decode(op["data"]))
                self._entry_offsets.append(offset)
        elif kind == "fence":
            # Recovery-open: depose the writer. The ledger stays open
            # for the fencer (who becomes the writer) to close it.
            self._writer = op["writer"]
        elif kind == "close":
            if op["writer"] == self._writer and self._state == _STATE_OPEN:
                self._state = _STATE_CLOSED
                # A close may truncate to the writer's chosen last entry
                # (BookKeeper semantics: recovery decides LAC).
                last = op.get("last")
                if last is not None and last + 1 < len(self._entries):
                    del self._entries[last + 1 :]
                    del self._entry_offsets[last + 1 :]
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown ledger op {kind!r}")

    def get_checkpoint(self) -> bytes:
        return json.dumps(
            {
                "entries": [base64.b64encode(e).decode("ascii") for e in self._entries],
                "offsets": self._entry_offsets,
                "writer": self._writer,
                "state": self._state,
            }
        ).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        data = json.loads(state.decode("utf-8"))
        self._entries = [base64.b64decode(e) for e in data["entries"]]
        self._entry_offsets = list(data["offsets"])
        self._writer = data["writer"]
        self._state = data["state"]

    # ------------------------------------------------------------------
    # writer API
    # ------------------------------------------------------------------

    def claim(self) -> None:
        """Become the ledger's writer (first claimer wins)."""
        op = json.dumps({"op": "claim", "writer": self.writer_token})
        self._update(op.encode("utf-8"))
        self._query()
        if self._writer != self.writer_token:
            raise LedgerFencedError(
                f"ledger {self.oid} already owned by {self._writer}"
            )
        self._next_seq = len(self._entries)

    def add_entries(self, batch) -> int:
        """Append several entries; returns the last entry id.

        The whole batch is buffered as one transaction-free sequence of
        appends followed by a single acceptance check, so the common
        journaling pattern ("write these N edits, then fsync") pays one
        playback sync instead of N.
        """
        import base64 as _b64

        if not batch:
            return self.last_entry_id()
        first_seq = self._next_seq
        for index, data in enumerate(batch):
            op = json.dumps(
                {
                    "op": "add",
                    "writer": self.writer_token,
                    "seq": first_seq + index,
                    "data": _b64.b64encode(data).decode("ascii"),
                }
            )
            self._update(op.encode("utf-8"))
        self._query()
        last_seq = first_seq + len(batch) - 1
        if len(self._entries) <= last_seq or self._entries[last_seq] != batch[-1]:
            if self._state == _STATE_CLOSED:
                raise LedgerClosedError(f"ledger {self.oid} is closed")
            raise LedgerFencedError(
                f"ledger {self.oid}: writer {self.writer_token} was fenced "
                f"by {self._writer}"
            )
        self._next_seq = last_seq + 1
        return last_seq

    def length(self) -> int:
        """Number of committed entries (linearizable)."""
        self._query()
        return len(self._entries)

    def read_last_confirmed(self) -> int:
        """BookKeeper's LAC: the last entry every reader may safely read.

        In this design every applied entry is committed (the apply
        upcall is the commit point), so LAC equals the last entry id.
        """
        return self.last_entry_id()

    def add_entry(self, data: bytes) -> int:
        """Append one entry; returns its entry id.

        One stream append plus one sync (the sync verifies acceptance —
        a rejected add means this writer has been fenced or the ledger
        closed).
        """
        seq = self._next_seq
        op = json.dumps(
            {
                "op": "add",
                "writer": self.writer_token,
                "seq": seq,
                "data": base64.b64encode(data).decode("ascii"),
            }
        )
        self._update(op.encode("utf-8"))
        self._query()
        if len(self._entries) <= seq or self._entries[seq] != data:
            if self._state == _STATE_CLOSED:
                raise LedgerClosedError(f"ledger {self.oid} is closed")
            raise LedgerFencedError(
                f"ledger {self.oid}: writer {self.writer_token} was fenced "
                f"by {self._writer}"
            )
        self._next_seq = seq + 1
        return seq

    def close(self) -> None:
        """Close the ledger; subsequent adds fail everywhere."""
        op = json.dumps(
            {"op": "close", "writer": self.writer_token, "last": None}
        )
        self._update(op.encode("utf-8"))
        self._query()

    # ------------------------------------------------------------------
    # reader / recovery API
    # ------------------------------------------------------------------

    def fence_and_recover(self) -> int:
        """BookKeeper's recovery-open: depose the writer, seal the state.

        Returns the id of the last committed entry (-1 if empty). After
        this call the caller may read a stable prefix and the old writer
        can no longer extend it.
        """
        fence = json.dumps({"op": "fence", "writer": self.writer_token})
        self._update(fence.encode("utf-8"))
        self._query()
        last = len(self._entries) - 1
        close = json.dumps(
            {"op": "close", "writer": self.writer_token, "last": last}
        )
        self._update(close.encode("utf-8"))
        self._query()
        return last

    def read_entries(self, first: int, last: int) -> Tuple[bytes, ...]:
        """Entries ``first..last`` inclusive (linearizable)."""
        self._query()
        if first < 0 or last >= len(self._entries) or first > last:
            raise ValueError(
                f"range [{first}, {last}] out of bounds "
                f"(ledger has {len(self._entries)} entries)"
            )
        return tuple(self._entries[first : last + 1])

    def last_entry_id(self) -> int:
        self._query()
        return len(self._entries) - 1

    def entry_offset(self, entry_id: int) -> int:
        """Shared-log offset backing one entry (index-over-log behaviour)."""
        self._query()
        return self._entry_offsets[entry_id]

    @property
    def is_closed(self) -> bool:
        self._query()
        return self._state == _STATE_CLOSED

    @property
    def current_writer(self) -> Optional[str]:
        self._query()
        return self._writer


class TangoBK:
    """Ledger manager: create/open/delete ledgers by name.

    Thin sugar over the Tango directory, mirroring the BookKeeper client
    API shape.
    """

    def __init__(self, runtime, directory) -> None:
        self._runtime = runtime
        self._directory = directory
        self._counter = itertools.count()

    def create_ledger(self, name: str, writer_token: Optional[str] = None) -> Ledger:
        """Create (or open) a ledger and claim its writership."""
        ledger = self._directory.open(Ledger, name, writer_token=writer_token)
        ledger.claim()
        return ledger

    def open_ledger(
        self, name: str, recovery: bool = False, writer_token: Optional[str] = None
    ) -> Ledger:
        """Open an existing ledger for reading.

        With ``recovery=True``, fences the current writer first
        (BookKeeper's openLedger recovery mode).
        """
        ledger = self._directory.open(Ledger, name, writer_token=writer_token)
        if recovery:
            ledger.fence_and_recover()
        return ledger

    def delete_ledger(self, name: str) -> None:
        """Unbind the ledger's name (its history remains until GC)."""
        self._directory.remove(name)
