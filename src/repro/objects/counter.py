"""TangoCounter: a replicated integer counter.

Used by the paper's job-scheduler example ("a TangoCounter for new job
IDs", section 4). Increments are commutative updates; ``next_id`` shows
the transactional read-modify-write pattern for allocation.
"""

from __future__ import annotations

import json

from repro.tango.object import TangoObject


class TangoCounter(TangoObject):
    """A persistent, highly available counter."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._value = 0
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        if op["op"] == "add":
            self._value += op["n"]
        else:  # "set"
            self._value = op["n"]

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._value).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._value = json.loads(state.decode("utf-8"))

    # -- mutators --------------------------------------------------------------

    def increment(self, n: int = 1) -> None:
        """Add *n* (commutative; safe without a transaction)."""
        self._update(json.dumps({"op": "add", "n": n}).encode("utf-8"))

    def decrement(self, n: int = 1) -> None:
        self.increment(-n)

    def set(self, n: int) -> None:
        """Overwrite the counter."""
        self._update(json.dumps({"op": "set", "n": n}).encode("utf-8"))

    # -- accessors --------------------------------------------------------------

    def value(self) -> int:
        """Linearizable read of the counter."""
        self._query()
        return self._value

    # -- transactional pattern -----------------------------------------------------

    def next_id(self) -> int:
        """Allocate a unique id: transactional read-increment.

        Two clients calling this concurrently conflict (one retries), so
        ids are never handed out twice.
        """

        def attempt() -> int:
            self._query()
            current = self._value
            self._update(json.dumps({"op": "set", "n": current + 1}).encode("utf-8"))
            return current

        return self._runtime.run_transaction(attempt)
