"""TangoQueue: a replicated FIFO queue.

The producer-consumer pattern from section 4.1: "with remote-write
transactions, the producer can add new items to the queue without having
to locally host it and see all its updates" — construct the producer's
instance with ``host_view=False`` and only consumers pay playback cost.

Dequeues are transactional read-modify-writes on the whole queue, so
concurrent consumers hand each element to exactly one caller.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional, Tuple

from repro.tango.object import TangoObject


class TangoQueue(TangoObject):
    """A persistent, highly available FIFO queue."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._items: List[Any] = []
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        if op["op"] == "enqueue":
            self._items.append(op["v"])
        elif op["op"] == "dequeue":
            if self._items:
                self._items.pop(0)
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown queue op {op['op']!r}")

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._items).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._items = json.loads(state.decode("utf-8"))

    # -- mutators ---------------------------------------------------------------

    def enqueue(self, value: Any) -> None:
        """Append to the tail (works without a local view: remote write)."""
        self._update(json.dumps({"op": "enqueue", "v": value}).encode("utf-8"))

    # -- accessors ---------------------------------------------------------------

    def peek(self) -> Optional[Any]:
        self._query()
        return self._items[0] if self._items else None

    def size(self) -> int:
        self._query()
        return len(self._items)

    def to_list(self) -> Tuple[Any, ...]:
        self._query()
        return tuple(self._items)

    # -- transactional dequeue ----------------------------------------------------

    def dequeue(self) -> Optional[Any]:
        """Atomically remove and return the head (None when empty)."""

        def attempt() -> Optional[Any]:
            self._query()
            if not self._items:
                return None
            head = self._items[0]
            self._update(json.dumps({"op": "dequeue"}).encode("utf-8"))
            return head

        return self._runtime.run_transaction(attempt)
