"""TangoLock: an advisory lock service with fencing tokens.

Locks are the canonical coordination-service workload ("locks" appear in
the paper's opening inventory of metadata, section 3). The
implementation demonstrates two Tango patterns:

- **transactional acquire** — read the lock's holder, write the claim;
  optimistic concurrency guarantees a single winner without any lock
  server;
- **fencing tokens** — every successful acquire returns a monotonically
  increasing token (the log offset of the acquiring update), which
  downstream resources can use to reject operations from stale holders,
  exactly as a TangoBK ledger rejects a fenced writer.

There are no leases or heartbeats in-process; a crashed holder's lock is
broken explicitly with :meth:`break_lock` (the fencing token makes this
safe: the dead holder's token is stale forever).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from repro.tango.object import TangoObject


class TangoLock(TangoObject):
    """A named-lock table over the shared log."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        # name -> {"holder": str, "token": int}
        self._locks: Dict[str, dict] = {}
        super().__init__(runtime, oid, host_view=host_view)

    # -- upcalls ------------------------------------------------------------

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        name = op["name"]
        if op["op"] == "acquire":
            # Unconditional at apply time: the acquiring transaction
            # validated vacancy; the token is the acquire's log offset.
            self._locks[name] = {"holder": op["holder"], "token": offset}
        elif op["op"] == "release":
            held = self._locks.get(name)
            if held is not None and held["holder"] == op["holder"]:
                del self._locks[name]
        elif op["op"] == "break":
            self._locks.pop(name, None)
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown lock op {op['op']!r}")

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._locks).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._locks = json.loads(state.decode("utf-8"))

    # -- interface ------------------------------------------------------------

    def try_acquire(self, name: str, holder: str) -> Optional[int]:
        """Acquire *name* for *holder*; returns a fencing token or None.

        Concurrent acquirers conflict on the lock's key and exactly one
        commits. Re-acquiring a lock already held by *holder* returns
        the existing token (idempotent).
        """

        def body() -> Optional[bool]:
            self._query(key=name.encode("utf-8"))
            held = self._locks.get(name)
            if held is not None:
                return False if held["holder"] != holder else None
            op = json.dumps({"op": "acquire", "name": name, "holder": holder})
            self._update(op.encode("utf-8"), key=name.encode("utf-8"))
            return True

        outcome = self._runtime.run_transaction(body)
        if outcome is False:
            return None
        self._query(key=name.encode("utf-8"))
        held = self._locks.get(name)
        if held is None or held["holder"] != holder:
            return None  # broken/stolen between commit and read-back
        return held["token"]

    def release(self, name: str, holder: str) -> None:
        """Release *name* if held by *holder* (otherwise a no-op)."""
        op = json.dumps({"op": "release", "name": name, "holder": holder})
        self._update(op.encode("utf-8"), key=name.encode("utf-8"))

    def break_lock(self, name: str) -> None:
        """Forcibly clear a lock (crashed-holder recovery).

        Safe because fencing tokens are monotone: the next acquirer's
        token exceeds the dead holder's, so fenced resources reject the
        old holder regardless.
        """
        op = json.dumps({"op": "break", "name": name})
        self._update(op.encode("utf-8"), key=name.encode("utf-8"))

    def holder_of(self, name: str) -> Optional[Tuple[str, int]]:
        """(holder, fencing token) for *name*, or None if free."""
        self._query(key=name.encode("utf-8"))
        held = self._locks.get(name)
        if held is None:
            return None
        return held["holder"], held["token"]

    def held_locks(self) -> Tuple[str, ...]:
        self._query()
        return tuple(sorted(self._locks))
