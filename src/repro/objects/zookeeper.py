"""TangoZK: the ZooKeeper interface as a Tango object.

Paper section 6.3: "we implemented the ZooKeeper interface over Tango in
less than 1000 lines of Java code, compared to over 13K lines for the
original". As in the paper, ACLs are out of scope; the znode tree,
versioned conditional updates, sequential and ephemeral nodes, watches,
and multi-ops are in.

Every mutating operation runs as a Tango transaction that reads the
preconditions ZooKeeper defines (parent exists, node absent/present,
version matches) and buffers unconditional update records, so the
optimistic concurrency control of the runtime enforces exactly
ZooKeeper's check-and-act semantics — including across *different*
TangoZK instances, which stock ZooKeeper cannot do ("The capability to
move files across different instances does not exist in ZooKeeper").

Fine-grained versioning: znode operations carry the path as the version
key, and structural changes (child add/remove, sequential counters)
additionally touch the parent path, so independent subtrees never
conflict.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import (
    BadVersionError,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    ZKError,
)
from repro.tango.object import TangoObject


@dataclass(frozen=True)
class ZnodeStat:
    """The subset of ZooKeeper's Stat that Tango tracks."""

    version: int  # data version (bumped by set_data)
    cversion: int  # child-list version (bumped by child create/delete)
    czxid: int  # log offset of the creating update
    mzxid: int  # log offset of the last data modification
    ephemeral_owner: Optional[str]
    num_children: int


class _Znode:
    """In-view representation of one znode."""

    __slots__ = (
        "data",
        "version",
        "cversion",
        "czxid",
        "mzxid",
        "ephemeral_owner",
        "children",
        "seq_counter",
    )

    def __init__(self, data: bytes, czxid: int, ephemeral_owner: Optional[str]) -> None:
        self.data = data
        self.version = 0
        self.cversion = 0
        self.czxid = czxid
        self.mzxid = czxid
        self.ephemeral_owner = ephemeral_owner
        self.children: Set[str] = set()
        self.seq_counter = 0

    def clone(self) -> "_Znode":
        copy = _Znode(self.data, self.czxid, self.ephemeral_owner)
        copy.version = self.version
        copy.cversion = self.cversion
        copy.mzxid = self.mzxid
        copy.children = set(self.children)
        copy.seq_counter = self.seq_counter
        return copy


def _parent_of(path: str) -> str:
    if path == "/":
        raise ZKError("the root has no parent")
    parent = path.rsplit("/", 1)[0]
    return parent or "/"


def _validate_path(path: str) -> None:
    if not path.startswith("/"):
        raise ZKError(f"path must be absolute: {path!r}")
    if path != "/" and path.endswith("/"):
        raise ZKError(f"path must not end with '/': {path!r}")
    if "//" in path:
        raise ZKError(f"path contains empty component: {path!r}")


class TangoZK(TangoObject):
    """A hierarchical namespace (znode tree) over the shared log.

    Args:
        runtime: the hosting Tango runtime.
        oid: object id (each TangoZK instance is an independent
            namespace; applications may run several and move nodes
            between them transactionally).
        session_id: owner tag for ephemeral nodes created through this
            handle. There is no heartbeat machinery in-process; sessions
            end via :meth:`close_session` / :meth:`expire_session`.
    """

    #: Cross-instance transactions (e.g. moving a node between two
    #: namespaces hosted by different clients) need decision records.
    needs_decision_record = True

    def __init__(
        self,
        runtime,
        oid: int,
        session_id: str = "session-0",
        host_view: bool = True,
    ) -> None:
        self._nodes: Dict[str, _Znode] = {"/": _Znode(b"", -1, None)}
        self._watches: Dict[str, List[Callable[[str, str], None]]] = {}
        self.session_id = session_id
        # Transaction-local shadow of modified znodes, so that later
        # operations in a multi (or any ambient transaction) observe
        # earlier ones' effects — ZooKeeper's multi semantics — even
        # though the runtime defers the actual updates to commit time.
        self._overlay_tx: int = 0
        self._overlay_nodes: Dict[str, Optional[_Znode]] = {}
        super().__init__(runtime, oid, host_view=host_view)

    # ------------------------------------------------------------------
    # apply upcall
    # ------------------------------------------------------------------

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        kind = op["op"]
        if kind == "create":
            path = op["path"]
            if path in self._nodes:
                return  # apply must stay total; transactional
                # validation makes this unreachable in practice
            node = _Znode(
                base64.b64decode(op["data"]),
                offset,
                op.get("owner"),
            )
            self._nodes[path] = node
            self._fire_watches(path, "created")
        elif kind == "delete":
            node = self._nodes.pop(op["path"], None)
            if node is not None:
                self._fire_watches(op["path"], "deleted")
        elif kind == "set_data":
            node = self._nodes.get(op["path"])
            if node is None:
                return
            node.data = base64.b64decode(op["data"])
            node.version += 1
            node.mzxid = offset
            self._fire_watches(op["path"], "changed")
        elif kind == "child_add":
            node = self._nodes.get(op["path"])
            if node is None:
                return
            node.children.add(op["child"])
            node.cversion += 1
            if op.get("sequential"):
                node.seq_counter += 1
            self._fire_watches(op["path"], "children")
        elif kind == "child_remove":
            node = self._nodes.get(op["path"])
            if node is None:
                return
            node.children.discard(op["child"])
            node.cversion += 1
            self._fire_watches(op["path"], "children")
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown zk op {kind!r}")

    def get_checkpoint(self) -> bytes:
        nodes = {}
        for path, node in self._nodes.items():
            nodes[path] = {
                "data": base64.b64encode(node.data).decode("ascii"),
                "version": node.version,
                "cversion": node.cversion,
                "czxid": node.czxid,
                "mzxid": node.mzxid,
                "owner": node.ephemeral_owner,
                "children": sorted(node.children),
                "seq": node.seq_counter,
            }
        return json.dumps(nodes).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        raw = json.loads(state.decode("utf-8"))
        self._nodes = {}
        for path, d in raw.items():
            node = _Znode(base64.b64decode(d["data"]), d["czxid"], d["owner"])
            node.version = d["version"]
            node.cversion = d["cversion"]
            node.mzxid = d["mzxid"]
            node.children = set(d["children"])
            node.seq_counter = d["seq"]
            self._nodes[path] = node

    # ------------------------------------------------------------------
    # watches (one-shot, local, like ZooKeeper's)
    # ------------------------------------------------------------------

    def watch(self, path: str, callback: Callable[[str, str], None]) -> None:
        """Register a one-shot callback ``cb(path, event)`` on *path*.

        Events: ``created``, ``deleted``, ``changed``, ``children``.
        Watches are local to this view (as in ZooKeeper, where they are
        local to a session) and fire during the apply upcall.
        """
        self._watches.setdefault(path, []).append(callback)

    def _fire_watches(self, path: str, event: str) -> None:
        callbacks = self._watches.pop(path, None)
        if not callbacks:
            return
        for callback in callbacks:
            callback(path, event)

    # ------------------------------------------------------------------
    # transaction-local overlay (read-your-own-writes within a TX)
    # ------------------------------------------------------------------

    def _overlay(self) -> Optional[Dict[str, Optional[_Znode]]]:
        """The current transaction's shadow map, or None outside a TX."""
        ctx = self._runtime._current_tx()
        if ctx is None:
            return None
        if self._overlay_tx != ctx.tx_id:
            self._overlay_tx = ctx.tx_id
            self._overlay_nodes = {}
        return self._overlay_nodes

    def _lookup(self, path: str) -> Optional[_Znode]:
        """Effective znode: the TX overlay shadows the base view."""
        overlay = self._overlay()
        if overlay is not None and path in overlay:
            return overlay[path]
        return self._nodes.get(path)

    def _shadow(self, path: str) -> _Znode:
        """Clone-for-write *path* into the overlay; the node must exist."""
        overlay = self._overlay()
        node = self._lookup(path)
        if node is None:
            raise NoNodeError(path)
        if overlay is None:
            # Only reachable from inside a transaction body.
            raise ZKError("internal: _shadow outside a transaction")
        if path not in overlay or overlay[path] is not node:
            node = node.clone()
            overlay[path] = node
        return node

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------

    def exists(self, path: str, watch=None) -> Optional[ZnodeStat]:
        """Stat of *path*, or None if it does not exist.

        As in ZooKeeper, a *watch* callback may be registered in the
        same call that reads the state, closing the read-then-watch
        race window.
        """
        _validate_path(path)
        self._query(key=path.encode("utf-8"))
        if watch is not None:
            self.watch(path, watch)
        node = self._lookup(path)
        return self._stat(node) if node is not None else None

    def get_data(self, path: str, watch=None) -> Tuple[bytes, ZnodeStat]:
        """The data and stat of *path* (NoNodeError if absent)."""
        _validate_path(path)
        self._query(key=path.encode("utf-8"))
        node = self._require(path)
        if watch is not None:
            self.watch(path, watch)
        return node.data, self._stat(node)

    def get_children(self, path: str, watch=None) -> Tuple[str, ...]:
        """Sorted child names of *path*."""
        _validate_path(path)
        self._query(key=path.encode("utf-8"))
        node = self._require(path)
        if watch is not None:
            self.watch(path, watch)
        return tuple(sorted(node.children))

    def _require(self, path: str) -> _Znode:
        node = self._lookup(path)
        if node is None:
            raise NoNodeError(path)
        return node

    @staticmethod
    def _stat(node: _Znode) -> ZnodeStat:
        return ZnodeStat(
            version=node.version,
            cversion=node.cversion,
            czxid=node.czxid,
            mzxid=node.mzxid,
            ephemeral_owner=node.ephemeral_owner,
            num_children=len(node.children),
        )

    # ------------------------------------------------------------------
    # write API (each op is a Tango transaction unless already in one)
    # ------------------------------------------------------------------

    def _run(self, body):
        """Run *body* in the ambient transaction, or a fresh one."""
        if self._runtime._current_tx() is not None:
            return body()
        return self._runtime.run_transaction(body)

    def ensure_path(self, path: str) -> None:
        """Create *path* and any missing ancestors (kazoo-style).

        Existing nodes along the way are left untouched; the whole
        ladder of creates is one transaction.
        """
        _validate_path(path)
        if path == "/":
            return

        def body() -> None:
            components = path.strip("/").split("/")
            current = ""
            for component in components:
                current = f"{current}/{component}"
                self._query(key=current.encode("utf-8"))
                if self._lookup(current) is None:
                    self.create(current, b"")

        self._run(body)

    def create(
        self,
        path: str,
        data: bytes = b"",
        ephemeral: bool = False,
        sequential: bool = False,
        makepath: bool = False,
    ) -> str:
        """Create a znode; returns the actual path (with any sequential
        suffix). With ``makepath``, missing ancestors are created too
        (atomically with the node itself)."""
        _validate_path(path)
        if path == "/":
            raise NodeExistsError("/")
        if makepath:
            def with_ancestors() -> str:
                parent = _parent_of(path)
                if parent != "/":
                    self.ensure_path(parent)
                return self.create(
                    path, data, ephemeral=ephemeral, sequential=sequential
                )

            return self._run(with_ancestors)

        def body() -> str:
            parent_path = _parent_of(path)
            self._query(key=parent_path.encode("utf-8"))
            parent = self._lookup(parent_path)
            if parent is None:
                raise NoNodeError(parent_path)
            if parent.ephemeral_owner is not None:
                raise ZKError(f"ephemeral node {parent_path} cannot have children")
            actual = path
            if sequential:
                actual = f"{path}{parent.seq_counter:010d}"
            self._query(key=actual.encode("utf-8"))
            if self._lookup(actual) is not None:
                raise NodeExistsError(actual)
            child = actual.rsplit("/", 1)[1]
            self._update(
                json.dumps(
                    {
                        "op": "create",
                        "path": actual,
                        "data": base64.b64encode(data).decode("ascii"),
                        "owner": self.session_id if ephemeral else None,
                    }
                ).encode("utf-8"),
                key=actual.encode("utf-8"),
            )
            self._update(
                json.dumps(
                    {
                        "op": "child_add",
                        "path": parent_path,
                        "child": child,
                        "sequential": sequential,
                    }
                ).encode("utf-8"),
                key=parent_path.encode("utf-8"),
            )
            # Mirror the (deferred) updates into the TX overlay so later
            # operations in the same transaction observe them.
            overlay = self._overlay()
            overlay[actual] = _Znode(
                data, -1, self.session_id if ephemeral else None
            )
            shadow_parent = self._shadow(parent_path)
            shadow_parent.children.add(child)
            shadow_parent.cversion += 1
            if sequential:
                shadow_parent.seq_counter += 1
            return actual

        return self._run(body)

    def delete(self, path: str, version: int = -1) -> None:
        """Delete a znode (must exist, be empty, and match *version*)."""
        _validate_path(path)
        if path == "/":
            raise ZKError("cannot delete the root")

        def body() -> None:
            self._query(key=path.encode("utf-8"))
            node = self._require(path)
            if node.children:
                raise NotEmptyError(path)
            if version != -1 and node.version != version:
                raise BadVersionError(
                    f"{path}: expected version {version}, is {node.version}"
                )
            parent_path = _parent_of(path)
            self._query(key=parent_path.encode("utf-8"))
            child = path.rsplit("/", 1)[1]
            self._update(
                json.dumps({"op": "delete", "path": path}).encode("utf-8"),
                key=path.encode("utf-8"),
            )
            self._update(
                json.dumps(
                    {"op": "child_remove", "path": parent_path, "child": child}
                ).encode("utf-8"),
                key=parent_path.encode("utf-8"),
            )
            overlay = self._overlay()
            shadow_parent = self._shadow(parent_path)
            shadow_parent.children.discard(child)
            shadow_parent.cversion += 1
            overlay[path] = None

        self._run(body)

    def set_data(self, path: str, data: bytes, version: int = -1) -> ZnodeStat:
        """Replace a znode's data, optionally conditioned on *version*."""
        _validate_path(path)

        def body() -> ZnodeStat:
            self._query(key=path.encode("utf-8"))
            node = self._require(path)
            if version != -1 and node.version != version:
                raise BadVersionError(
                    f"{path}: expected version {version}, is {node.version}"
                )
            self._update(
                json.dumps(
                    {
                        "op": "set_data",
                        "path": path,
                        "data": base64.b64encode(data).decode("ascii"),
                    }
                ).encode("utf-8"),
                key=path.encode("utf-8"),
            )
            shadow = self._shadow(path)
            shadow.data = data
            shadow.version += 1
            return self._stat(shadow)

        return self._run(body)

    def multi(self, ops: List[Tuple[str, tuple]]) -> List[Any]:
        """ZooKeeper's multi: an atomic batch of operations.

        Each op is ``("create", (path, data))``, ``("delete", (path,))``
        / ``("delete", (path, version))``, or
        ``("set_data", (path, data))`` / ``("set_data", (path, data,
        version))``. All succeed or none do.
        """
        dispatch = {
            "create": self.create,
            "delete": self.delete,
            "set_data": self.set_data,
        }

        def body() -> List[Any]:
            results = []
            for kind, args in ops:
                method = dispatch.get(kind)
                if method is None:
                    raise ZKError(f"unknown multi op {kind!r}")
                results.append(method(*args))
            return results

        return self._run(body)

    # ------------------------------------------------------------------
    # sessions (ephemeral-node cleanup)
    # ------------------------------------------------------------------

    def ephemerals(self, session_id: Optional[str] = None) -> Tuple[str, ...]:
        """Paths of ephemeral nodes owned by *session_id* (default ours)."""
        owner = session_id if session_id is not None else self.session_id
        self._query()
        return tuple(
            sorted(
                path
                for path, node in self._nodes.items()
                if node.ephemeral_owner == owner
            )
        )

    def expire_session(self, session_id: str) -> int:
        """Delete every ephemeral node owned by *session_id*.

        Any client may expire any session (in real ZooKeeper the leader
        does this on heartbeat timeout). Returns the number of nodes
        removed.
        """
        paths = self.ephemerals(session_id)

        def body() -> int:
            count = 0
            for path in sorted(paths, key=len, reverse=True):
                self._query(key=path.encode("utf-8"))
                if self._lookup(path) is not None:
                    self.delete(path)
                    count += 1
            return count

        return self._run(body)

    def close_session(self) -> int:
        """End this handle's session, removing its ephemeral nodes."""
        return self.expire_session(self.session_id)
