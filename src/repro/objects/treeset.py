"""TangoTreeSet: a replicated sorted set.

The paper's motivating complaint about one-size-fits-all coordination
services (section 2) is precisely that they cannot efficiently answer
ordered queries ("extracting the oldest/newest inserted name"); a
TreeSet view makes those queries local and O(log n) while the shared log
still provides consistency and durability.

Elements must be mutually comparable JSON scalars (all strings or all
numbers). Fine-grained versioning uses the element itself as the key,
so transactions adding/removing different elements do not conflict.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, List, Optional, Tuple

from repro.tango.object import TangoObject


def _version_key(value: Any) -> bytes:
    return json.dumps(value, sort_keys=True).encode("utf-8")


class TangoTreeSet(TangoObject):
    """A persistent, highly available sorted set."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._items: List[Any] = []  # kept sorted
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        value = op.get("v")
        if op["op"] == "add":
            index = bisect.bisect_left(self._items, value)
            if index == len(self._items) or self._items[index] != value:
                self._items.insert(index, value)
        elif op["op"] == "discard":
            index = bisect.bisect_left(self._items, value)
            if index < len(self._items) and self._items[index] == value:
                self._items.pop(index)
        else:  # "clear"
            self._items.clear()

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._items).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._items = json.loads(state.decode("utf-8"))

    # -- mutators ---------------------------------------------------------------

    def add(self, value: Any) -> None:
        op = json.dumps({"op": "add", "v": value})
        self._update(op.encode("utf-8"), key=_version_key(value))

    def discard(self, value: Any) -> None:
        op = json.dumps({"op": "discard", "v": value})
        self._update(op.encode("utf-8"), key=_version_key(value))

    def clear(self) -> None:
        self._update(json.dumps({"op": "clear"}).encode("utf-8"))

    # -- accessors ---------------------------------------------------------------

    def contains(self, value: Any) -> bool:
        self._query(key=_version_key(value))
        index = bisect.bisect_left(self._items, value)
        return index < len(self._items) and self._items[index] == value

    def first(self) -> Optional[Any]:
        """Smallest element (None when empty)."""
        self._query()
        return self._items[0] if self._items else None

    def last(self) -> Optional[Any]:
        """Largest element (None when empty)."""
        self._query()
        return self._items[-1] if self._items else None

    def floor(self, value: Any) -> Optional[Any]:
        """Largest element <= *value*."""
        self._query()
        index = bisect.bisect_right(self._items, value)
        return self._items[index - 1] if index > 0 else None

    def ceiling(self, value: Any) -> Optional[Any]:
        """Smallest element >= *value*."""
        self._query()
        index = bisect.bisect_left(self._items, value)
        return self._items[index] if index < len(self._items) else None

    def range(self, lo: Any, hi: Any) -> Tuple[Any, ...]:
        """All elements with lo <= e < hi, in order."""
        self._query()
        start = bisect.bisect_left(self._items, lo)
        stop = bisect.bisect_left(self._items, hi)
        return tuple(self._items[start:stop])

    def size(self) -> int:
        self._query()
        return len(self._items)

    def to_list(self) -> Tuple[Any, ...]:
        self._query()
        return tuple(self._items)
