"""The Tango object library.

"Applications can use a standard set of objects provided by Tango,
providing interfaces similar to the Java Collections library or the C++
STL" (paper section 3). Every class here is persistent, strongly
consistent, and highly available purely by virtue of being layered over
the shared log; none contains any distributed protocol code.

Values stored in these objects must be JSON-serializable (the update
records are JSON-encoded for debuggability); :class:`TangoBK` ledger
entries and :class:`TangoZK` znode data are raw bytes.
"""

from repro.objects.register import TangoRegister
from repro.objects.counter import TangoCounter
from repro.objects.map import TangoMap, TangoIndexedMap
from repro.objects.list import TangoList
from repro.objects.treeset import TangoTreeSet
from repro.objects.queue import TangoQueue
from repro.objects.lock import TangoLock
from repro.objects.graph import TangoGraph
from repro.objects.zookeeper import TangoZK, ZnodeStat
from repro.objects.bookkeeper import TangoBK, Ledger

__all__ = [
    "TangoRegister",
    "TangoCounter",
    "TangoMap",
    "TangoIndexedMap",
    "TangoList",
    "TangoTreeSet",
    "TangoQueue",
    "TangoLock",
    "TangoGraph",
    "TangoZK",
    "ZnodeStat",
    "TangoBK",
    "Ledger",
]
