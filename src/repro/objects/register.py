"""TangoRegister: the paper's Figure 3 object.

"A linearizable, highly available and persistent register" in a handful
of lines: the view is a single value, the apply upcall overwrites it,
the mutator funnels writes through ``update_helper`` and the accessor
synchronizes through ``query_helper``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.tango.object import TangoObject


class TangoRegister(TangoObject):
    """A single replicated value (any JSON-serializable object)."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._state: Any = None
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload: bytes, offset: int) -> None:
        self._state = json.loads(payload.decode("utf-8"))

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._state).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._state = json.loads(state.decode("utf-8"))

    def write(self, value: Any) -> None:
        """Mutator: replace the register's value."""
        self._update(json.dumps(value).encode("utf-8"))

    def read(self) -> Any:
        """Accessor: linearizable read of the current value."""
        self._query()
        return self._state
