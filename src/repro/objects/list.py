"""TangoList: a replicated list.

Used in the paper's Figure 4 example (a single-writer list built with a
transaction over a TangoMap and a TangoList) and in the job scheduler of
section 4 ("a TangoList storing free compute nodes").

Mutators are defined so that their apply upcalls are total under any
interleaving: positional inserts clamp to the current bounds, and
removals of absent values are no-ops. Applications needing
read-modify-write semantics (e.g. "remove this exact element") wrap the
operations in a transaction.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional, Tuple

from repro.tango.object import TangoObject


class TangoList(TangoObject):
    """A persistent, highly available list of JSON values."""

    def __init__(self, runtime, oid: int, host_view: bool = True) -> None:
        self._items: List[Any] = []
        super().__init__(runtime, oid, host_view=host_view)

    def apply(self, payload: bytes, offset: int) -> None:
        op = json.loads(payload.decode("utf-8"))
        kind = op["op"]
        if kind == "append":
            self._items.append(op["v"])
        elif kind == "insert":
            index = max(0, min(op["i"], len(self._items)))
            self._items.insert(index, op["v"])
        elif kind == "remove_value":
            try:
                self._items.remove(op["v"])
            except ValueError:
                pass  # already gone; removal is idempotent by value
        elif kind == "pop_head":
            if self._items:
                self._items.pop(0)
        elif kind == "clear":
            self._items.clear()
        else:  # pragma: no cover - corrupt log entries
            raise ValueError(f"unknown list op {kind!r}")

    def get_checkpoint(self) -> bytes:
        return json.dumps(self._items).encode("utf-8")

    def load_checkpoint(self, state: bytes) -> None:
        self._items = json.loads(state.decode("utf-8"))

    # -- mutators ---------------------------------------------------------------

    def append(self, value: Any) -> None:
        self._update(json.dumps({"op": "append", "v": value}).encode("utf-8"))

    def insert(self, index: int, value: Any) -> None:
        op = json.dumps({"op": "insert", "i": index, "v": value})
        self._update(op.encode("utf-8"))

    def remove_value(self, value: Any) -> None:
        """Remove the first occurrence of *value* (no-op if absent)."""
        op = json.dumps({"op": "remove_value", "v": value})
        self._update(op.encode("utf-8"))

    def clear(self) -> None:
        self._update(json.dumps({"op": "clear"}).encode("utf-8"))

    # -- accessors ---------------------------------------------------------------

    def get(self, index: int) -> Any:
        self._query()
        return self._items[index]

    def head(self) -> Optional[Any]:
        self._query()
        return self._items[0] if self._items else None

    def contains(self, value: Any) -> bool:
        self._query()
        return value in self._items

    def size(self) -> int:
        self._query()
        return len(self._items)

    def to_list(self) -> Tuple[Any, ...]:
        self._query()
        return tuple(self._items)

    # -- transactional patterns ------------------------------------------------------

    def take_head(self) -> Optional[Any]:
        """Atomically remove and return the head (None when empty).

        Concurrent takers conflict and retry, so each element is handed
        to exactly one caller — the free-list pop of the job scheduler.
        """

        def attempt() -> Optional[Any]:
            self._query()
            if not self._items:
                return None
            head = self._items[0]
            self._update(json.dumps({"op": "pop_head"}).encode("utf-8"))
            return head

        return self._runtime.run_transaction(attempt)
