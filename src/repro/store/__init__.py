"""repro.store — segmented durable log storage with background compaction.

Layout:

- :mod:`repro.store.segment` — segment files (flat-compatible frames,
  per-segment index, footer checksum), crash recovery, flat-file reader;
- :mod:`repro.store.compactor` — garbage-ratio policy plus an inline or
  threaded compactor that rewrites still-live entries past the trim
  point into fresh segments;
- :mod:`repro.store.flash` — :class:`SegmentedFlashUnit`, the
  drop-in durable unit built on the above.

See ``docs/STORAGE.md`` for the on-disk formats and knobs.
"""

from repro.store.compactor import CompactionPolicy, Compactor
from repro.store.flash import SegmentedFlashUnit
from repro.store.segment import (
    DEFAULT_SEGMENT_BYTES,
    FRAME,
    OP_SEAL,
    OP_TRIM,
    OP_TRIM_PREFIX,
    OP_WRITE,
    SegmentInfo,
    SegmentStore,
    pack_frame,
    parse_frames,
    read_flat_log,
)

__all__ = [
    "CompactionPolicy",
    "Compactor",
    "DEFAULT_SEGMENT_BYTES",
    "FRAME",
    "OP_SEAL",
    "OP_TRIM",
    "OP_TRIM_PREFIX",
    "OP_WRITE",
    "SegmentInfo",
    "SegmentStore",
    "SegmentedFlashUnit",
    "pack_frame",
    "parse_frames",
    "read_flat_log",
]
