"""A flash unit persisted to a segment store instead of one flat file.

:class:`SegmentedFlashUnit` mirrors
:class:`~repro.corfu.durable.DurableFlashUnit` — every mutation applies
in memory and then persists one intention frame, atomically under the
unit lock — but frames land in a :class:`~repro.store.segment.SegmentStore`
directory, so trimmed history can be reclaimed by the
:class:`~repro.store.compactor.Compactor` instead of accreting forever.

A legacy flat-format file can be migrated in place: its frames are
streamed into the store unchanged and the file is renamed to
``<path>.migrated`` so the migration never repeats.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.corfu.storage import FlashUnit
from repro.store.compactor import CompactionPolicy, Compactor
from repro.store.segment import (
    DEFAULT_SEGMENT_BYTES,
    OP_SEAL,
    OP_TRIM,
    OP_TRIM_PREFIX,
    OP_WRITE,
    SegmentStore,
    read_flat_log,
)


class SegmentedFlashUnit(FlashUnit):
    """A durable flash unit backed by sealed, compactable segments."""

    def __init__(
        self,
        name: str,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: bool = True,
        policy: Optional[CompactionPolicy] = None,
        migrate_flat: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.directory = directory
        self.store = SegmentStore(
            directory, segment_bytes=segment_bytes, sync=sync
        )
        for op, epoch, address, data in self.store.replay():
            self._apply_frame(op, epoch, address, data)
        if migrate_flat is not None and os.path.exists(migrate_flat):
            self._migrate_flat(migrate_flat)
        self.compactor = Compactor(self, policy=policy)

    # -- recovery -------------------------------------------------------------

    def _apply_frame(self, op: int, epoch: int, address: int, data: bytes) -> None:
        """Apply one replayed frame (mirrors the flat-format replay)."""
        if op == OP_WRITE:
            if self._is_trimmed(address):
                # A compacted segment's trim preamble can precede a W
                # frame for an address trimmed later in log time; the
                # trim wins either way.
                return
            # Recovery replays frames the guarded write() path already
            # validated (epoch included) before persisting them, so no
            # re-validation here — frames legitimately predate later
            # seals in the same log.
            self._pages[address] = data  # tangolint: disable=TL004,TL005
        elif op == OP_TRIM:
            self._pages.pop(address, None)
            self._trimmed_sparse.add(address)
            self._compact_trims()
        elif op == OP_TRIM_PREFIX:
            for addr in [a for a in self._pages if a < address]:
                del self._pages[addr]
            self._trimmed_prefix = max(self._trimmed_prefix, address)
            self._trimmed_sparse = {
                a for a in self._trimmed_sparse if a >= address
            }
        elif op == OP_SEAL:
            self._epoch = max(self._epoch, epoch)

    def _migrate_flat(self, path: str) -> None:
        """Import a legacy flat intention log, then retire the file."""
        for op, epoch, address, data in read_flat_log(path):
            self.store.append_frame(op, epoch, address, data)
            self._apply_frame(op, epoch, address, data)
        os.replace(path, path + ".migrated")

    # -- overridden mutations (apply, then persist; atomically) ---------------

    # As in DurableFlashUnit, each override holds the unit lock (an
    # RLock, so the inherited mutation can re-enter it) across apply
    # *and* persist, keeping file frame order equal to apply order.

    def write(self, address: int, data: bytes, epoch: int) -> None:
        with self._lock:
            super().write(address, data, epoch)
            self.store.append_frame(OP_WRITE, epoch, address, data)

    def trim(self, address: int, epoch: int) -> None:
        with self._lock:
            super().trim(address, epoch)
            self.store.append_frame(OP_TRIM, epoch, address, b"")

    def trim_prefix(self, address: int, epoch: int) -> None:
        with self._lock:
            super().trim_prefix(address, epoch)
            self.store.append_frame(OP_TRIM_PREFIX, epoch, address, b"")

    def seal(self, epoch: int) -> int:
        with self._lock:
            tail = super().seal(epoch)
            self.store.append_frame(OP_SEAL, epoch, 0, b"")
            return tail

    # -- compaction surface ----------------------------------------------------

    def trim_snapshot(self):
        """(epoch, trimmed_prefix, sparse trims) — the liveness horizon."""
        with self._lock:
            return (self._epoch, self._trimmed_prefix, set(self._trimmed_sparse))

    def compact(self) -> Dict[str, int]:
        """Run one deterministic compaction sweep (also an admin RPC)."""
        return self.compactor.run_once()

    def start_compaction(self, interval: float = 0.05) -> None:
        """Start the background compaction thread."""
        self.compactor.start(interval)

    def stop_compaction(self) -> None:
        self.compactor.stop()

    def store_status(self) -> Dict[str, object]:
        """Segment/garbage/compaction accounting (also an admin RPC)."""
        with self._lock:
            epoch = self._epoch
            prefix = self._trimmed_prefix
            sparse = set(self._trimmed_sparse)
            pages = len(self._pages)
            resident = sum(len(data) for data in self._pages.values())

        def is_dead(address: int) -> bool:
            return address < prefix or address in sparse

        status = self.store.usage(is_dead)
        status["kind"] = "segmented"
        status["name"] = self.name
        status["epoch"] = epoch
        status["trimmed_prefix"] = prefix
        status["pages"] = pages
        status["resident_bytes"] = resident
        status["compaction"] = self.compactor.counters()
        return status

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Stop compaction and release the active segment handle."""
        self.compactor.stop()
        self.store.close()
