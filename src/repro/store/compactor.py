"""Background compaction for the segment store.

The compactor looks at sealed segments through a liveness predicate
derived from the owning flash unit's trim state: a W frame is *dead*
when its address sits below the trimmed prefix or in the sparse-trim
set; every control frame (T/P/S) is reclaimable because each rewrite
re-records the trim/epoch snapshot in a compacted segment's preamble.

Policy: a sealed segment is *eligible* when its garbage ratio reaches
``min_garbage_ratio`` **and** its reclaimable bytes reach
``min_dead_bytes`` (the byte floor stops a tiny preamble-only segment —
ratio 1.0 by construction — from being recompacted forever). Each run
merges maximal adjacent runs of eligible segments into one replacement
segment, which both reclaims space and bounds the segment-file count.

The compactor is deterministic when driven with :meth:`Compactor.run_once`
(sim/tests) and can also run on a daemon thread (:meth:`Compactor.start`)
with a timed wait between sweeps.

Lock order: ``Compactor._lock`` (serializes sweeps) is taken before the
unit lock (trim snapshot) and before ``SegmentStore._lock`` (list
splice, inside :meth:`SegmentStore.rewrite_segments`) — see
``docs/CONCURRENCY.md``. File reads and the temp-file write happen with
no lock held; sealed segments are immutable.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.store.segment import (
    OP_SEAL,
    OP_TRIM,
    OP_TRIM_PREFIX,
    Frame,
    SegmentInfo,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.flash import SegmentedFlashUnit


class CompactionPolicy:
    """When is a sealed segment worth rewriting?"""

    def __init__(
        self,
        min_garbage_ratio: float = 0.5,
        min_dead_bytes: int = 1024,
        max_batch_segments: int = 8,
    ) -> None:
        if not 0.0 < min_garbage_ratio <= 1.0:
            raise ValueError("min_garbage_ratio must be in (0, 1]")
        if min_dead_bytes < 1:
            raise ValueError("min_dead_bytes must be >= 1")
        if max_batch_segments < 1:
            raise ValueError("max_batch_segments must be >= 1")
        self.min_garbage_ratio = min_garbage_ratio
        self.min_dead_bytes = min_dead_bytes
        self.max_batch_segments = max_batch_segments

    def eligible(self, info: SegmentInfo, dead_bytes: int) -> bool:
        if info.data_bytes <= 0:
            return False
        if dead_bytes < self.min_dead_bytes:
            return False
        return dead_bytes / info.data_bytes >= self.min_garbage_ratio

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompactionPolicy(min_garbage_ratio={self.min_garbage_ratio}, "
            f"min_dead_bytes={self.min_dead_bytes}, "
            f"max_batch_segments={self.max_batch_segments})"
        )


class Compactor:
    """Rewrites garbage-heavy sealed segments of one flash unit."""

    def __init__(
        self,
        unit: "SegmentedFlashUnit",
        policy: Optional[CompactionPolicy] = None,
    ) -> None:
        self._unit = unit
        self.policy = policy or CompactionPolicy()
        # Serializes sweeps (RPC-triggered vs. background thread).
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._counters: Dict[str, int] = {
            "runs": 0,
            "noop_runs": 0,
            "segments_compacted": 0,
            "segments_written": 0,
            "frames_dropped": 0,
            "bytes_reclaimed": 0,
        }

    # -- one deterministic sweep ---------------------------------------------

    def run_once(self) -> Dict[str, int]:
        """Sweep once; returns this sweep's deltas (all zero on no-op)."""
        with self._lock:
            return self._run_locked()

    def _run_locked(self) -> Dict[str, int]:
        epoch, prefix, sparse = self._unit.trim_snapshot()
        store = self._unit.store

        def is_dead(address: int) -> bool:
            return address < prefix or address in sparse

        sealed = store.sealed_segments()
        runs = self._plan_runs(sealed, is_dead)
        result = {
            "segments_compacted": 0,
            "segments_written": 0,
            "frames_dropped": 0,
            "bytes_reclaimed": 0,
        }
        preamble = self._preamble(epoch, prefix, sorted(sparse))
        for run in runs:
            stats = store.rewrite_segments(
                run, keep=lambda addr: not is_dead(addr), preamble=preamble
            )
            result["segments_compacted"] += stats["segments_in"]
            result["segments_written"] += 1
            result["frames_dropped"] += stats["frames_dropped"]
            result["bytes_reclaimed"] += stats["bytes_reclaimed"]
        self._counters["runs"] += 1
        if not runs:
            self._counters["noop_runs"] += 1
        for key, value in result.items():
            self._counters[key] += value
        return result

    def _plan_runs(
        self, sealed: List[SegmentInfo], is_dead
    ) -> List[List[SegmentInfo]]:
        """Maximal adjacent runs of compactable segments, batch-capped.

        A run fires only when it contains at least one *eligible*
        segment (the policy's churn guard), but *fully dead* neighbors —
        segments with no live W bytes left, which is what every rewrite
        output decays to as the trim horizon advances past it — ride
        along even below the byte floor. Absorbing them is what bounds
        the segment-file count: alone, each is too small to ever clear
        ``min_dead_bytes``, and one new one appears per sweep.
        """
        runs: List[List[SegmentInfo]] = []
        current: List[SegmentInfo] = []
        has_eligible = False

        def flush() -> None:
            nonlocal current, has_eligible
            if current and has_eligible:
                runs.append(current)
            current, has_eligible = [], False

        for info in sealed:
            dead = info.dead_bytes(is_dead)
            eligible = self.policy.eligible(info, dead)
            if not (eligible or self._fully_dead(info, is_dead)):
                flush()
                continue
            if len(current) >= self.policy.max_batch_segments:
                flush()
            current.append(info)
            has_eligible = has_eligible or eligible
        flush()
        return runs

    @staticmethod
    def _fully_dead(info: SegmentInfo, is_dead) -> bool:
        """No live W frame survives in this segment.

        Such a segment is absorbable into an adjacent run but never
        triggers one by itself: a preamble-only rewrite output is fully
        dead by construction (control frames only), and recompacting it
        alone would churn forever without reclaiming anything.
        """
        return all(is_dead(addr) for addr in info.w_frames)

    @staticmethod
    def _preamble(epoch: int, prefix: int, sparse: List[int]) -> List[Frame]:
        """Trim/epoch snapshot recorded ahead of the surviving W frames."""
        frames: List[Frame] = [(OP_SEAL, epoch, 0, b"")]
        if prefix:
            frames.append((OP_TRIM_PREFIX, epoch, prefix, b""))
        for address in sparse:
            frames.append((OP_TRIM, epoch, address, b""))
        return frames

    # -- counters -------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    # -- background thread ----------------------------------------------------

    def start(self, interval: float = 0.05) -> None:
        """Sweep every *interval* seconds on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("compactor already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop,
            args=(interval,),
            name=f"repro-compactor-{self._unit.name}",
            daemon=True,
        )
        self._thread.start()

    def _loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.run_once()

    def stop(self) -> None:
        """Stop the background thread (no-op if never started)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
