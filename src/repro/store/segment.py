"""Segmented durable log storage.

One :class:`SegmentStore` replaces the single flat intention-log file of
:class:`~repro.corfu.durable.DurableFlashUnit` with a directory of
fixed-size *segment* files. The frame format inside a segment is exactly
the flat format — ``[op:u8][epoch:u64][address:u64][length:u32][data]``
with ops ``W`` (page write), ``T`` (sparse trim), ``P`` (prefix trim)
and ``S`` (seal) — so a flat file can be migrated by streaming its
frames into a store unchanged.

Segment file layout::

    header : magic "RSG1", version u16, reserved u16,
             base u64, gen u32, covers_end u64
    frames : zero or more intention frames
    footer : (sealed segments only)
             magic "RFT1", frame_count u32, crc32(frames) u32,
             index_count u32, W-frame address u64 each,
             footer_len u32   <- last 4 bytes of the file

``base``/``covers_end`` place the segment in a monotone *segment
sequence space*: a fresh append segment covers exactly one sequence
number; a compacted segment produced by
:meth:`SegmentStore.rewrite_segments` covers the whole contiguous range
of the inputs it replaced and carries a higher ``gen``. On open, any
segment whose range is covered by an already-kept segment is stale
(a crash happened between the compactor's rename and its deletes) and
is removed — so compaction is crash-safe by construction: write temp,
fsync, rename, then delete the inputs.

Torn tails: the active (unsealed) segment may end mid-frame after a
crash; parsing stops at the last whole frame, logs a warning and
truncates the tail. A sealed segment whose footer checksum does not
match is salvaged frame-by-frame with a warning rather than discarded.
"""

from __future__ import annotations

import logging
import os
import struct
import threading
import zlib
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

#: One intention frame header: op, epoch, address, payload length.
FRAME = struct.Struct("<BQQI")

OP_WRITE = ord("W")
OP_TRIM = ord("T")
OP_TRIM_PREFIX = ord("P")
OP_SEAL = ord("S")
_KNOWN_OPS = frozenset({OP_WRITE, OP_TRIM, OP_TRIM_PREFIX, OP_SEAL})

#: (op, epoch, address, data) — the unit of replay.
Frame = Tuple[int, int, int, bytes]

SEGMENT_MAGIC = b"RSG1"
FOOTER_MAGIC = b"RFT1"
SEGMENT_VERSION = 1
_HEADER = struct.Struct("<4sHHQIQ")  # magic, version, reserved, base, gen, covers_end
_FOOTER_FIXED = struct.Struct("<4sIII")  # magic, frame_count, crc32, index_count

#: Default segment roll size. Small enough that GC-driven compaction
#: frees disk promptly, large enough that steady appends rarely roll.
DEFAULT_SEGMENT_BYTES = 1 << 20


def pack_frame(op: int, epoch: int, address: int, data: bytes) -> bytes:
    """Serialize one intention frame (shared with the flat format)."""
    return FRAME.pack(op, epoch, address, len(data)) + data


def parse_frames(
    raw: bytes, start: int, end: int, describe: str
) -> Tuple[List[Frame], int]:
    """Parse frames in ``raw[start:end]``; stop at a torn/corrupt tail.

    Returns ``(frames, consumed_end)``. A truncated final frame or an
    unknown op byte ends the parse with a warning — the caller decides
    whether the remainder is expected (active segment after a crash) or
    genuine corruption.
    """
    frames: List[Frame] = []
    pos = start
    while pos + FRAME.size <= end:
        op, epoch, address, length = FRAME.unpack_from(raw, pos)
        body_start = pos + FRAME.size
        if op not in _KNOWN_OPS:
            logger.warning(
                "%s: unknown frame op 0x%02x at byte %d; "
                "discarding the remaining %d bytes",
                describe,
                op,
                pos,
                end - pos,
            )
            return frames, pos
        if body_start + length > end:
            logger.warning(
                "%s: torn frame at byte %d (need %d body bytes, %d left); "
                "discarding the tail",
                describe,
                pos,
                length,
                end - body_start,
            )
            return frames, pos
        frames.append((op, epoch, address, raw[body_start : body_start + length]))
        pos = body_start + length
    if pos < end:
        logger.warning(
            "%s: torn frame header at byte %d (%d trailing bytes); "
            "discarding the tail",
            describe,
            pos,
            end - pos,
        )
    return frames, pos


def read_flat_log(path: str) -> List[Frame]:
    """Read a legacy flat intention-log file, tolerating a torn tail."""
    with open(path, "rb") as f:
        raw = f.read()
    frames, _consumed = parse_frames(raw, 0, len(raw), f"flat log {path}")
    return frames


class SegmentInfo:
    """In-memory accounting for one segment file.

    ``w_frames`` maps each W-frame address to its on-disk frame size;
    addresses are unique store-wide (the address space is write-once),
    so the map doubles as the per-segment index. ``control_bytes``
    counts T/P/S frames — always reclaimable by a rewrite, because the
    compactor re-records the trim/epoch snapshot in its preamble.
    """

    __slots__ = (
        "path",
        "base",
        "gen",
        "covers_end",
        "sealed",
        "frame_count",
        "data_bytes",
        "control_bytes",
        "w_frames",
    )

    def __init__(
        self, path: str, base: int, gen: int, covers_end: int, sealed: bool
    ) -> None:
        self.path = path
        self.base = base
        self.gen = gen
        self.covers_end = covers_end
        self.sealed = sealed
        self.frame_count = 0
        self.data_bytes = 0  # frame-region bytes (header/footer excluded)
        self.control_bytes = 0
        self.w_frames: Dict[int, int] = {}

    def note_frame(self, op: int, address: int, frame_len: int) -> None:
        self.frame_count += 1
        self.data_bytes += frame_len
        if op == OP_WRITE:
            self.w_frames[address] = frame_len
        else:
            self.control_bytes += frame_len

    def dead_bytes(self, is_dead: Callable[[int], bool]) -> int:
        """Reclaimable bytes under the given liveness predicate."""
        return self.control_bytes + sum(
            size for addr, size in self.w_frames.items() if is_dead(addr)
        )

    def garbage_ratio(self, is_dead: Callable[[int], bool]) -> float:
        if self.data_bytes <= 0:
            return 0.0
        return self.dead_bytes(is_dead) / self.data_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "sealed" if self.sealed else "active"
        return (
            f"<SegmentInfo {os.path.basename(self.path)} {state} "
            f"[{self.base}..{self.covers_end}] gen={self.gen} "
            f"frames={self.frame_count}>"
        )


def _segment_filename(base: int, gen: int) -> str:
    return f"seg-{base:016d}-{gen:08d}.seg"


class SegmentStore:
    """A directory of sealed segment files plus one active append segment.

    Thread safety: ``_lock`` guards the segment list, the active file
    handle, and the sequence counter. Appends hold it across the file
    write so the frame order matches the caller's apply order (the same
    contract as the flat durable format). :meth:`rewrite_segments` reads
    and writes *sealed* files outside the lock — they are immutable —
    and takes it only to splice the segment list.
    """

    def __init__(
        self,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: bool = True,
    ) -> None:
        if segment_bytes < FRAME.size:
            raise ValueError(f"segment_bytes {segment_bytes} too small")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.sync = sync
        self._lock = threading.Lock()
        self._segments: List[SegmentInfo] = []
        self._active: Optional[SegmentInfo] = None
        self._active_file = None
        self._next_seq = 0
        self._closed = False
        os.makedirs(directory, exist_ok=True)
        self._replay_frames: List[Frame] = self._load()

    # -- open-time recovery ---------------------------------------------------

    def _load(self) -> List[Frame]:
        """Parse the directory; returns every kept frame in replay order."""
        parsed: List[Tuple[SegmentInfo, List[Frame]]] = []
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if name.endswith(".tmp"):
                os.unlink(path)  # crashed compaction output
                continue
            if not (name.startswith("seg-") and name.endswith(".seg")):
                continue
            loaded = self._load_segment(path)
            if loaded is not None:
                parsed.append(loaded)
        # Winner selection: order by (base asc, gen desc); a segment whose
        # base falls inside an already-kept range is a compacted-away
        # original (or a lower-gen duplicate) left behind by a crash.
        parsed.sort(key=lambda item: (item[0].base, -item[0].gen))
        kept: List[Tuple[SegmentInfo, List[Frame]]] = []
        covered_end = -1
        for info, frames in parsed:
            if info.base <= covered_end:
                logger.warning(
                    "segment store %s: removing stale segment %s "
                    "(superseded by a compacted segment)",
                    self.directory,
                    os.path.basename(info.path),
                )
                os.unlink(info.path)
                continue
            kept.append((info, frames))
            covered_end = info.covers_end
        self._segments = [info for info, _frames in kept]
        self._next_seq = covered_end + 1
        # Only the last segment may legitimately be unsealed (the active
        # segment at crash time); seal any earlier stragglers.
        for info in self._segments[:-1]:
            if not info.sealed:
                self._write_footer(info)
        if self._segments and not self._segments[-1].sealed:
            tail = self._segments[-1]
            if tail.data_bytes >= self.segment_bytes:
                self._write_footer(tail)
            else:
                self._active = tail
                self._active_file = open(tail.path, "ab")
        out: List[Frame] = []
        for _info, frames in kept:
            out.extend(frames)
        return out

    def _load_segment(
        self, path: str
    ) -> Optional[Tuple[SegmentInfo, List[Frame]]]:
        with open(path, "rb") as f:
            raw = f.read()
        name = os.path.basename(path)
        if len(raw) < _HEADER.size:
            logger.warning(
                "segment store %s: %s shorter than a header; removing",
                self.directory,
                name,
            )
            os.unlink(path)
            return None
        magic, version, _reserved, base, gen, covers_end = _HEADER.unpack_from(
            raw, 0
        )
        if magic != SEGMENT_MAGIC or version != SEGMENT_VERSION:
            logger.warning(
                "segment store %s: %s has bad magic/version; removing",
                self.directory,
                name,
            )
            os.unlink(path)
            return None
        info = SegmentInfo(path, base, gen, covers_end, sealed=False)
        frames_end, sealed = self._locate_footer(raw, name)
        describe = f"segment {name}"
        frames, consumed = parse_frames(raw, _HEADER.size, frames_end, describe)
        if not sealed and consumed < len(raw):
            # Torn active tail: truncate so future appends stay parseable.
            with open(path, "ab") as f:
                f.truncate(consumed)
        info.sealed = sealed
        for op, _epoch, address, data in frames:
            info.note_frame(op, address, FRAME.size + len(data))
        if sealed:
            self._verify_footer(raw, frames_end, info, name)
        return info, frames

    def _locate_footer(self, raw: bytes, name: str) -> Tuple[int, bool]:
        """Return (end-of-frames offset, sealed?) for a segment image."""
        if len(raw) < _HEADER.size + _FOOTER_FIXED.size + 4:
            return len(raw), False
        (footer_len,) = struct.unpack_from("<I", raw, len(raw) - 4)
        footer_start = len(raw) - 4 - footer_len
        if footer_start < _HEADER.size or footer_len < _FOOTER_FIXED.size:
            return len(raw), False
        if raw[footer_start : footer_start + 4] != FOOTER_MAGIC:
            return len(raw), False
        return footer_start, True

    def _verify_footer(
        self, raw: bytes, footer_start: int, info: SegmentInfo, name: str
    ) -> None:
        _magic, frame_count, crc, index_count = _FOOTER_FIXED.unpack_from(
            raw, footer_start
        )
        actual_crc = zlib.crc32(raw[_HEADER.size : footer_start]) & 0xFFFFFFFF
        if crc != actual_crc or frame_count != info.frame_count:
            logger.warning(
                "segment store %s: %s footer mismatch "
                "(crc %08x vs %08x, frames %d vs %d); "
                "salvaged %d parseable frames",
                self.directory,
                name,
                crc,
                actual_crc,
                frame_count,
                info.frame_count,
                info.frame_count,
            )
            return
        index: List[int] = []
        off = footer_start + _FOOTER_FIXED.size
        for _ in range(index_count):
            if off + 8 > len(raw) - 4:
                break
            (addr,) = struct.unpack_from("<Q", raw, off)
            index.append(addr)
            off += 8
        if sorted(index) != sorted(info.w_frames):
            logger.warning(
                "segment store %s: %s footer index disagrees with its "
                "frames (%d indexed, %d parsed); trusting the frames",
                self.directory,
                name,
                len(index),
                len(info.w_frames),
            )

    # -- replay ---------------------------------------------------------------

    def replay(self) -> Iterator[Frame]:
        """Yield every frame recovered at open, in order, then drop them."""
        frames, self._replay_frames = self._replay_frames, []
        return iter(frames)

    # -- append path ----------------------------------------------------------

    def append_frame(self, op: int, epoch: int, address: int, data: bytes) -> None:
        """Append one frame to the active segment, rolling when full."""
        blob = pack_frame(op, epoch, address, data)
        with self._lock:
            if self._closed:
                raise ValueError("segment store is closed")
            if self._active is None:
                self._open_active_locked()
            assert self._active is not None and self._active_file is not None
            # Holding the lock across the file write is deliberate: the
            # frame order must match the caller's apply order, and each
            # critical section covers one small frame (same contract as
            # the flat durable format).
            self._active_file.write(blob)  # tangolint: disable=TL012
            self._active_file.flush()
            if self.sync:
                os.fsync(self._active_file.fileno())
            self._active.note_frame(op, address, len(blob))
            if self._active.data_bytes >= self.segment_bytes:
                self._seal_active_locked()

    def _open_active_locked(self) -> None:
        seq = self._next_seq
        self._next_seq += 1
        path = os.path.join(self.directory, _segment_filename(seq, 0))
        info = SegmentInfo(path, seq, 0, seq, sealed=False)
        f = open(path, "wb")
        f.write(  # tangolint: disable=TL012
            _HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, 0, seq, 0, seq)
        )
        f.flush()
        if self.sync:
            os.fsync(f.fileno())
        self._segments.append(info)
        self._active = info
        self._active_file = f

    def _seal_active_locked(self) -> None:
        info, f = self._active, self._active_file
        if info is None or f is None:
            return
        f.close()
        self._active = None
        self._active_file = None
        self._write_footer(info)

    def _write_footer(self, info: SegmentInfo) -> None:
        with open(info.path, "rb") as f:
            raw = f.read()
        frames_crc = zlib.crc32(raw[_HEADER.size :]) & 0xFFFFFFFF
        footer = bytearray(
            _FOOTER_FIXED.pack(
                FOOTER_MAGIC, info.frame_count, frames_crc, len(info.w_frames)
            )
        )
        for addr in sorted(info.w_frames):
            footer += struct.pack("<Q", addr)
        footer += struct.pack("<I", len(footer))
        with open(info.path, "ab") as f:
            f.write(bytes(footer))
            f.flush()
            os.fsync(f.fileno())
        info.sealed = True

    def seal_active(self) -> None:
        """Seal the active segment now (tests/shutdown); idempotent."""
        with self._lock:
            self._seal_active_locked()

    # -- introspection --------------------------------------------------------

    def segment_snapshot(self) -> List[SegmentInfo]:
        """Current segments, base-ascending (infos are live objects)."""
        with self._lock:
            return list(self._segments)

    def sealed_segments(self) -> List[SegmentInfo]:
        with self._lock:
            return [s for s in self._segments if s.sealed]

    def usage(self, is_dead: Callable[[int], bool]) -> Dict[str, object]:
        """Aggregate disk accounting under a liveness predicate."""
        with self._lock:
            segments = list(self._segments)
        data_bytes = sum(s.data_bytes for s in segments)
        dead = sum(s.dead_bytes(is_dead) for s in segments)
        disk = 0
        for s in segments:
            try:
                disk += os.path.getsize(s.path)
            except OSError:  # pragma: no cover - racing a compaction
                pass
        return {
            "segments": len(segments),
            "sealed_segments": sum(1 for s in segments if s.sealed),
            "disk_bytes": disk,
            "data_bytes": data_bytes,
            "dead_bytes": dead,
            "live_bytes": data_bytes - dead,
            "garbage_ratio": round(dead / data_bytes, 4) if data_bytes else 0.0,
        }

    def file_count(self) -> int:
        with self._lock:
            return len(self._segments)

    # -- compaction support ---------------------------------------------------

    def rewrite_segments(
        self,
        targets: Sequence[SegmentInfo],
        keep: Callable[[int], bool],
        preamble: Sequence[Frame],
    ) -> Dict[str, int]:
        """Replace adjacent sealed *targets* with one compacted segment.

        The output carries *preamble* (the caller's trim/epoch snapshot)
        followed by every W frame whose address satisfies *keep*, covers
        the union of the targets' sequence ranges, and takes a higher
        gen. Crash-safe: temp write, fsync, rename, then delete inputs —
        a crash at any point leaves a state :meth:`_load` repairs.
        """
        if not targets:
            raise ValueError("rewrite_segments needs at least one target")
        for info in targets:
            if not info.sealed:
                raise ValueError(f"cannot rewrite unsealed segment {info.path}")
        base = targets[0].base
        covers_end = targets[-1].covers_end
        gen = max(t.gen for t in targets) + 1
        # Sealed segments are immutable: read and filter outside the lock.
        out = bytearray(
            _HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, 0, base, gen, covers_end)
        )
        new_info = SegmentInfo("", base, gen, covers_end, sealed=False)
        for op, epoch, address, data in preamble:
            blob = pack_frame(op, epoch, address, data)
            out += blob
            new_info.note_frame(op, address, len(blob))
        frames_dropped = 0
        bytes_in = 0
        for info in targets:
            bytes_in += info.data_bytes
            with open(info.path, "rb") as f:
                raw = f.read()
            frames_end, _sealed = self._locate_footer(
                raw, os.path.basename(info.path)
            )
            frames, _consumed = parse_frames(
                raw, _HEADER.size, frames_end, f"segment {info.path}"
            )
            for op, epoch, address, data in frames:
                if op == OP_WRITE and keep(address):
                    blob = pack_frame(op, epoch, address, data)
                    out += blob
                    new_info.note_frame(op, address, len(blob))
                else:
                    frames_dropped += 1
        final_path = os.path.join(self.directory, _segment_filename(base, gen))
        tmp_path = final_path + ".tmp"
        with open(tmp_path, "wb") as f:
            f.write(bytes(out))
            f.flush()
            os.fsync(f.fileno())
        new_info.path = tmp_path
        self._write_footer(new_info)
        os.replace(tmp_path, final_path)
        new_info.path = final_path
        self._fsync_directory()
        with self._lock:
            positions = [
                i
                for i, s in enumerate(self._segments)
                if any(s is t for t in targets)
            ]
            if len(positions) != len(targets):
                # A concurrent rewrite replaced one of our inputs; the
                # new file is superseded-by-construction and removable.
                os.unlink(final_path)
                raise RuntimeError(
                    "rewrite_segments raced another rewrite of the same inputs"
                )
            first = positions[0]
            self._segments[first : positions[-1] + 1] = [new_info]
        for info in targets:
            try:
                os.unlink(info.path)
            except OSError:  # pragma: no cover - already gone
                pass
        return {
            "segments_in": len(targets),
            "frames_dropped": frames_dropped,
            "bytes_in": bytes_in,
            "bytes_out": new_info.data_bytes,
            "bytes_reclaimed": max(0, bytes_in - new_info.data_bytes),
        }

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Flush and release the active file handle."""
        with self._lock:
            if self._active_file is not None:
                self._active_file.flush()
                self._active_file.close()
                self._active_file = None
                self._active = None
            self._closed = True
