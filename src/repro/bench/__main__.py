"""Regenerate the paper's evaluation from the command line.

::

    python -m repro.bench                 # every figure, default sizes
    python -m repro.bench fig2 fig10l     # a subset
    python -m repro.bench --quick         # fast, low-resolution pass

Prints one paper-vs-measured table per figure. The same experiments run
under pytest with shape assertions via ``pytest benchmarks/
--benchmark-only``; this entry point is for eyeballing curves and
generating tables for reports.
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List

from repro.bench import experiments as E
from repro.bench import experiments_functional as F
from repro.bench.plotting import ascii_chart, series_from_rows

_PLOT = {"enabled": False}


def _plot(title, rows, x_key, y_key, group_key=None):
    if not _PLOT["enabled"] or not rows:
        return
    print()
    print(ascii_chart(series_from_rows(rows, x_key, y_key, group_key),
                      title=f"{title} [plot]", x_label=x_key, y_label=y_key))


def _table(title: str, rows: List[dict], columns) -> None:
    print(f"\n=== {title} ===")
    header = " | ".join(f"{c:>20}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>20.2f}")
            else:
                cells.append(f"{str(value):>20}")
        print(" | ".join(cells))


def _run_fig2(quick: bool) -> None:
    clients = (1, 4, 16, 32) if quick else (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40)
    rows = E.fig2_sequencer(client_counts=clients)
    _table("Figure 2: sequencer throughput (paper plateau ~570K)", rows,
           ("clients", "kreq_per_sec"))
    _plot("Figure 2", rows, "clients", "kreq_per_sec")


def _run_fig8l(quick: bool) -> None:
    windows = (8, 64, 256) if quick else (8, 16, 32, 64, 128, 256)
    ratios = (1.0, 0.0) if quick else (1.0, 0.9, 0.5, 0.1, 0.0)
    rows = E.fig8_single_view(write_ratios=ratios, windows=windows)
    _table("Figure 8 left: latency vs throughput (paper: 135K reads / 38K writes)",
           rows, ("write_ratio", "window", "kops_per_sec", "latency_ms"))


def _run_fig8m(quick: bool) -> None:
    rates = (0, 10e3, 40e3) if quick else (0, 5e3, 10e3, 15e3, 20e3, 25e3, 30e3, 35e3, 40e3)
    rows = E.fig8_two_views(target_write_rates=rates)
    _table("Figure 8 middle: primary/backup (paper: total ~40K, latency climbs)",
           rows, ("target_writes_kops", "reads_kops", "writes_kops", "read_latency_ms"))


def _run_fig8r(quick: bool) -> None:
    readers = (4, 12, 18) if quick else (2, 4, 6, 8, 10, 12, 14, 16, 18)
    rows = E.fig8_elasticity(reader_counts=readers)
    _table("Figure 8 right: elasticity (paper: 2-server ~120K cap; 18-server 180K)",
           rows, ("log", "readers", "reads_kops", "read_latency_ms"))
    _plot("Figure 8 right", rows, "readers", "reads_kops", group_key="log")


def _run_fig9(quick: bool) -> None:
    nodes = (2, 3, 8) if quick else (2, 3, 4, 5, 6, 7, 8)
    keys = (100, 10_000, 1_000_000) if quick else (10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000)
    rows = E.fig9_tx_goodput(node_counts=nodes, key_counts=keys)
    _table("Figure 9: full replication (paper: 99%/70% goodput; playback cap)",
           rows, ("distribution", "keys", "nodes", "ktx_per_sec", "goodput_pct"))


def _run_fig10l(quick: bool) -> None:
    nodes = (2, 10, 18) if quick else (2, 4, 6, 8, 10, 12, 14, 16, 18)
    rows = E.fig10_partitions(node_counts=nodes)
    _table("Figure 10 left: partitions (paper: 6-server caps ~150K; 18-server ~200K)",
           rows, ("log", "nodes", "ktx_per_sec"))
    _plot("Figure 10 left", rows, "nodes", "ktx_per_sec", group_key="log")


def _run_fig10m(quick: bool) -> None:
    pcts = (0, 16, 100) if quick else (0, 1, 2, 4, 8, 16, 32, 64, 100)
    rows = E.fig10_cross_partition(cross_pcts=pcts)
    _table("Figure 10 middle: cross-partition, Tango vs 2PL (paper: graceful, comparable)",
           rows, ("cross_pct", "tango_ktx", "twopl_ktx"))
    _plot("Figure 10 middle (Tango)", rows, "cross_pct", "tango_ktx")


def _run_fig10r(quick: bool) -> None:
    pcts = (0, 1, 8, 100) if quick else (0, 1, 2, 4, 8, 16, 32, 64, 100)
    rows = E.fig10_shared_object(shared_pcts=pcts)
    _table("Figure 10 right: shared object (paper: sharp knee, graceful tail)",
           rows, ("shared_pct", "ktx_per_sec", "latency_ms"))
    _plot("Figure 10 right", rows, "shared_pct", "ktx_per_sec")


def _run_sec63(quick: bool) -> None:
    scale = (2, 40, 20) if quick else (3, 120, 60)
    rows = F.sec63_zookeeper(clients=scale[0], ops_per_client=scale[1], moves=scale[2])
    rows += F.sec63_bookkeeper(entries=100 if quick else 300)
    _table("Section 6.3: TangoZK / TangoBK (functional layer)",
           rows, ("metric", "measured", "paper"))


def _run_sec5(quick: bool) -> None:
    rows = F.sec5_sequencer_failover(entries=100 if quick else 300)
    _table("Section 5: sequencer failover (functional layer)",
           rows, ("metric", "measured", "paper"))
    rows = F.sec5_failover_vs_checkpoint(
        log_sizes=(100, 400) if quick else (100, 400, 1600)
    )
    _table("Section 5 ablation: failover with/without sequencer checkpoints",
           rows, ("log_entries", "checkpointed", "scan_reads", "failover_ms"))


_RUNNERS: Dict[str, object] = {
    "fig2": _run_fig2,
    "fig8l": _run_fig8l,
    "fig8m": _run_fig8m,
    "fig8r": _run_fig8r,
    "fig9": _run_fig9,
    "fig10l": _run_fig10l,
    "fig10m": _run_fig10m,
    "fig10r": _run_fig10r,
    "sec63": _run_sec63,
    "sec5": _run_sec5,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Tango paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"subset to run ({', '.join(_RUNNERS)}); default: all",
    )
    parser.add_argument(
        "--quick", action="store_true", help="low-resolution fast pass"
    )
    parser.add_argument(
        "--plot", action="store_true", help="draw ASCII charts of the curves"
    )
    args = parser.parse_args(argv)
    _PLOT["enabled"] = args.plot
    targets = args.figures or list(_RUNNERS)
    unknown = [t for t in targets if t not in _RUNNERS]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")
    started = time.time()
    for target in targets:
        _RUNNERS[target](args.quick)
    print(f"\ndone in {time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
