"""Benchmark harness: workloads, the testbed model, and experiments.

- :mod:`repro.bench.perfmodel` — the calibrated model of the paper's
  36-machine testbed (section 6), built on :mod:`repro.sim`.
- :mod:`repro.bench.workloads` — YCSB-style key selection and
  transaction shapes.
- :mod:`repro.bench.experiments` — one function per paper figure,
  returning rows of (parameters, measured, paper-reported) values.
"""

from repro.bench.perfmodel import ModelParams, ModeledCluster
from repro.bench.workloads import KeyChooser, TxShape

__all__ = ["ModelParams", "ModeledCluster", "KeyChooser", "TxShape"]
