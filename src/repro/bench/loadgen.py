"""Load generation for the functional layer.

The model-driven experiments regenerate the paper's figures; this module
measures the *real Python implementation* under sustained mixed load —
the numbers a downstream user of this library would actually see, and
the regression guard for the implementation's own performance.

A :class:`LoadGenerator` drives N runtimes over one shared log with a
configurable operation mix and reports per-operation throughput and
latency percentiles.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.workloads import KeyChooser
from repro.corfu.cluster import CorfuCluster
from repro.objects.map import TangoMap
from repro.tango.runtime import TangoRuntime


@dataclass(frozen=True)
class LoadMix:
    """Operation mix, as weights (need not sum to 1)."""

    reads: float = 0.5
    writes: float = 0.3
    transactions: float = 0.2
    #: reads+writes per transaction (the paper's 3+3 by default).
    tx_reads: int = 3
    tx_writes: int = 3


@dataclass
class LoadReport:
    """Results of one load run."""

    duration_s: float = 0.0
    ops: Dict[str, int] = field(default_factory=dict)
    commits: int = 0
    aborts: int = 0
    latencies_ms: Dict[str, List[float]] = field(default_factory=dict)

    def throughput(self, op: Optional[str] = None) -> float:
        total = self.ops.get(op, 0) if op else sum(self.ops.values())
        if self.duration_s <= 0:
            return 0.0
        return total / self.duration_s

    def percentile_ms(self, op: str, pct: float) -> float:
        samples = sorted(self.latencies_ms.get(op, ()))
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(len(samples) * pct / 100.0))
        return samples[index]

    def abort_rate(self) -> float:
        attempts = self.commits + self.aborts
        return self.aborts / attempts if attempts else 0.0

    def rows(self) -> List[dict]:
        """Paper-vs-measured style rows for the bench tables."""
        out = []
        for op in sorted(self.ops):
            out.append(
                {
                    "op": op,
                    "ops_per_sec": round(self.throughput(op), 1),
                    "p50_ms": round(self.percentile_ms(op, 50), 3),
                    "p99_ms": round(self.percentile_ms(op, 99), 3),
                }
            )
        out.append(
            {
                "op": "TOTAL",
                "ops_per_sec": round(self.throughput(), 1),
                "p50_ms": "",
                "p99_ms": f"abort_rate={self.abort_rate():.3f}",
            }
        )
        return out


class LoadGenerator:
    """Drives a mixed workload against one shared map.

    Clients are round-robined per operation (single OS thread — the
    point is implementation cost, not parallel speedup; see
    ``tests/test_threading.py`` for true concurrency).
    """

    def __init__(
        self,
        num_clients: int = 4,
        num_keys: int = 1000,
        distribution: str = "uniform",
        mix: LoadMix = LoadMix(),
        seed: int = 42,
        cluster: Optional[CorfuCluster] = None,
    ) -> None:
        self.cluster = cluster or CorfuCluster(num_sets=9, replication_factor=2)
        self.runtimes = [
            TangoRuntime(self.cluster, client_id=i + 1, name=f"load-{i}")
            for i in range(num_clients)
        ]
        self.maps = [TangoMap(rt, oid=1) for rt in self.runtimes]
        self.mix = mix
        self._chooser = KeyChooser(num_keys, distribution, seed=seed)
        self._rng = random.Random(seed)
        # Warm every view so transactional reads see current state.
        self.maps[0].put("__warm__", 1)
        for m in self.maps:
            m.get("__warm__")

    def _pick_op(self) -> str:
        total = self.mix.reads + self.mix.writes + self.mix.transactions
        roll = self._rng.random() * total
        if roll < self.mix.reads:
            return "read"
        if roll < self.mix.reads + self.mix.writes:
            return "write"
        return "tx"

    def run(self, operations: int) -> LoadReport:
        """Execute *operations* mixed ops; returns the report."""
        report = LoadReport()
        started = time.perf_counter()
        for i in range(operations):
            client = i % len(self.runtimes)
            rt, m = self.runtimes[client], self.maps[client]
            op = self._pick_op()
            t0 = time.perf_counter()
            if op == "read":
                m.get(f"k{self._chooser.choose()}")
            elif op == "write":
                m.put(f"k{self._chooser.choose()}", i)
            else:
                reads = [self._chooser.choose() for _ in range(self.mix.tx_reads)]
                writes = [self._chooser.choose() for _ in range(self.mix.tx_writes)]

                def body(m=m, reads=reads, writes=writes, i=i):
                    for key in reads:
                        m.get(f"k{key}")
                    for key in writes:
                        m.put(f"k{key}", i)

                rt.begin_tx()
                body()
                if rt.end_tx():
                    report.commits += 1
                else:
                    report.aborts += 1
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            report.ops[op] = report.ops.get(op, 0) + 1
            report.latencies_ms.setdefault(op, []).append(elapsed_ms)
        report.duration_s = time.perf_counter() - started
        return report
