"""Model-driven experiments: one function per figure of section 6.

Each function runs the calibrated testbed model
(:class:`~repro.bench.perfmodel.ModeledCluster`) under the figure's
workload and returns a list of row dicts containing both the measured
series and, where the paper reports a concrete number, the paper's
value (``paper_*`` keys). The benchmark files under ``benchmarks/``
print these rows as paper-vs-measured tables and feed EXPERIMENTS.md.

Claims being reproduced are about *shape*: plateaus, linear scaling
regions, saturation points, crossovers, graceful-vs-sharp degradation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.bench.perfmodel import DEFAULT_PARAMS, ModelParams, ModeledCluster
from repro.bench.workloads import KeyChooser, TxShape
from repro.sim.engine import Counter, Simulator

Row = Dict[str, object]


def _closed_loop(sim, counter, warmup, op):
    """One window slot: issue ops back-to-back, recording post-warmup."""

    def proc():
        while True:
            t0 = sim.now
            yield op()
            if sim.now >= warmup:
                counter.record(sim.now - t0)

    return proc()


def _open_loop(sim, rate, spawn_op):
    """Fire ``spawn_op`` every 1/rate seconds."""

    def proc():
        period = 1.0 / rate
        while True:
            spawn_op()
            yield period

    return proc()


class _PlaybackPipe:
    """A client's playback pipeline: pipelined frontier fetches.

    Entries to play queue up; up to ``window`` fetches are in flight at
    once (propagation latency overlaps; only shared servers — the tail's
    NIC, the client's NIC and CPU — constrain throughput). ``caught_up``
    is the linearizability condition a read must wait for.
    """

    _POLL = 20e-6

    def __init__(self, sim, cluster, client: int, window: int = 16) -> None:
        self._sim = sim
        self._cluster = cluster
        self._client = client
        self._window = window
        self._queue: List[int] = []
        self._inflight = 0
        self.enqueued = 0
        self.completed = 0

    def enqueue(self, offset: int) -> None:
        self._queue.append(offset)
        self.enqueued += 1

    def mark(self) -> int:
        """The check marker: everything enqueued so far must be played
        before a linearizable read at this instant may answer. Entries
        arriving later do not gate it."""
        return self.enqueued

    def pump(self):
        """The pipeline driver process (spawn once)."""
        while True:
            if not self._queue or self._inflight >= self._window:
                yield self._POLL
                continue
            offset = self._queue.pop(0)
            self._inflight += 1
            self._sim.spawn(self._fetch(offset))

    def _fetch(self, offset: int):
        yield self._cluster.playback_fetch(self._client, offset)
        self._inflight -= 1
        self.completed += 1

    def wait_mark(self, mark: int):
        """Generator: poll until playback passes *mark*."""
        while self.completed < mark:
            yield self._POLL


# ---------------------------------------------------------------------------
# Figure 2: sequencer throughput vs number of clients
# ---------------------------------------------------------------------------


def fig2_sequencer(
    client_counts: Sequence[int] = (1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40),
    window: int = 8,
    duration: float = 0.05,
    warmup: float = 0.01,
    params: ModelParams = DEFAULT_PARAMS,
) -> List[Row]:
    """Closed-loop clients hammering the sequencer, no batching.

    Paper: "as we add clients to the system, sequencer throughput
    increases until it plateaus at around 570K requests/sec."
    """
    rows: List[Row] = []
    for n in client_counts:
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=n, params=params)
        counter = Counter()
        for c in range(n):
            for _ in range(window):
                sim.spawn(
                    _closed_loop(
                        sim, counter, warmup,
                        lambda c=c: cluster.sequencer_rpc(c),
                    )
                )
        sim.run(until=warmup + duration)
        rows.append(
            {
                "clients": n,
                "kreq_per_sec": counter.throughput(duration) / 1e3,
                "paper_plateau_kreq": 570.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 2, sharded: per-stream-group sequencer shards vs the plateau
# ---------------------------------------------------------------------------


def fig2_sharded(
    shard_counts: Sequence[int] = (1, 2, 4),
    client_counts: Sequence[int] = (1, 8, 40),
    window: int = 8,
    duration: float = 0.05,
    warmup: float = 0.01,
    params: ModelParams = DEFAULT_PARAMS,
) -> List[Row]:
    """The Fig. 2 workload against a sharded sequencer.

    Each client's streams live in one stream group, so its grants route
    to the shard owning ``client % shards``. With ``shards=1`` this is
    exactly :func:`fig2_sequencer` (one CPU server named ``sequencer``);
    with N shards the single-counter ceiling splits across N
    independently-modeled sequencer CPUs and the plateau scales.
    """
    rows: List[Row] = []
    for shards in shard_counts:
        for n in client_counts:
            sim = Simulator()
            cluster = ModeledCluster(
                sim, num_clients=n, params=params, seq_shards=shards
            )
            counter = Counter()
            for c in range(n):
                for _ in range(window):
                    sim.spawn(
                        _closed_loop(
                            sim, counter, warmup,
                            lambda c=c: cluster.sequencer_rpc(c),
                        )
                    )
            sim.run(until=warmup + duration)
            rows.append(
                {
                    "shards": shards,
                    "clients": n,
                    "kreq_per_sec": counter.throughput(duration) / 1e3,
                    "paper_plateau_kreq": 570.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 (left): single view latency vs throughput
# ---------------------------------------------------------------------------


def fig8_single_view(
    write_ratios: Sequence[float] = (1.0, 0.9, 0.5, 0.1, 0.0),
    windows: Sequence[int] = (8, 16, 32, 64, 128, 256),
    duration: float = 0.1,
    warmup: float = 0.02,
    params: ModelParams = DEFAULT_PARAMS,
    seed: int = 1,
) -> List[Row]:
    """One TangoRegister view; the latency/throughput trade-off.

    Paper anchors: "135K sub-millisecond reads/sec on a read-only
    workload and 38K writes/sec under 2 ms on a write-only workload",
    window doubling from 8 to 256.
    """
    rows: List[Row] = []
    for ratio in write_ratios:
        for window in windows:
            sim = Simulator()
            cluster = ModeledCluster(sim, num_clients=1, params=params)
            counter = Counter()
            rng = random.Random(seed)

            def op(ratio=ratio, rng=rng, cluster=cluster):
                if rng.random() < ratio:
                    return cluster.append_op(0)
                return cluster.linearizable_read(0)

            for _ in range(window):
                sim.spawn(_closed_loop(sim, counter, warmup, op))
            sim.run(until=warmup + duration)
            rows.append(
                {
                    "write_ratio": ratio,
                    "window": window,
                    "kops_per_sec": counter.throughput(duration) / 1e3,
                    "latency_ms": counter.mean_latency() * 1e3,
                    "p99_ms": counter.percentile_latency(99) * 1e3,
                    "paper_read_only_kops": 135.0,
                    "paper_write_only_kops": 38.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 (middle): primary/backup — reads on one view, writes on another
# ---------------------------------------------------------------------------


def fig8_two_views(
    target_write_rates: Sequence[float] = (0, 5e3, 10e3, 15e3, 20e3, 25e3, 30e3, 35e3, 40e3),
    read_window: int = 32,
    duration: float = 0.1,
    warmup: float = 0.02,
    params: ModelParams = DEFAULT_PARAMS,
) -> List[Row]:
    """Two views of one object: all writes to node 0, all reads to node 1.

    Paper: "Overall throughput falls sharply as writes are introduced,
    and then stays constant at around 40K ops/sec ...; however, average
    read latency goes up as writes dominate, reflecting the extra work
    the read-only 'backup' node has to perform to catch up with the
    'primary'."
    """
    rows: List[Row] = []
    for rate in target_write_rates:
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=2, params=params)
        reads = Counter()
        writes = Counter()
        pipe = _PlaybackPipe(sim, cluster, client=1)
        op_count = [0]

        def spawn_write():
            def wproc():
                t0 = sim.now
                yield cluster.append_op(0)
                if sim.now >= warmup:
                    writes.record(sim.now - t0)
                op_count[0] += 1
                if op_count[0] % cluster.params.batch == 0:
                    pipe.enqueue(cluster.next_offset())

            sim.spawn(wproc())

        def read_op():
            def proc():
                while True:
                    t0 = sim.now
                    yield cluster.linearizable_read(1)
                    # Linearizability: the view must catch up with every
                    # update below the check marker before answering.
                    yield from pipe.wait_mark(pipe.mark())
                    if sim.now >= warmup:
                        reads.record(sim.now - t0)

            return proc()

        if rate > 0:
            sim.spawn(_open_loop(sim, rate, spawn_write))
        sim.spawn(pipe.pump())
        for _ in range(read_window):
            sim.spawn(read_op())
        sim.run(until=warmup + duration)
        rows.append(
            {
                "target_writes_kops": rate / 1e3,
                "reads_kops": reads.throughput(duration) / 1e3,
                "writes_kops": writes.throughput(duration) / 1e3,
                "read_latency_ms": reads.mean_latency() * 1e3,
                "read_p99_ms": reads.percentile_latency(99) * 1e3,
                "paper_note": "combined ~40K ops/s once writes dominate; "
                "read latency rises with write rate",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 (right): elastic reads vs number of readers, two log sizes
# ---------------------------------------------------------------------------


def fig8_elasticity(
    reader_counts: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16, 18),
    per_reader_rate: float = 10e3,
    write_rate_ops: float = 10e3,
    duration: float = 0.1,
    warmup: float = 0.02,
    params: ModelParams = DEFAULT_PARAMS,
) -> List[Row]:
    """N read-only views at 10K reads/s each against 10K writes/s.

    Paper: "Reads scale linearly until the underlying shared log is
    saturated ... a smaller 2-server log bottlenecks at around 120K
    reads/sec, as well as the default 18-server log which scales to 180K
    reads/sec with 18 clients."
    """
    rows: List[Row] = []
    poll = 20e-6
    for label, num_sets, repl in (("18-server", 9, 2), ("2-server", 1, 2)):
        for n in reader_counts:
            sim = Simulator()
            cluster = ModeledCluster(
                sim, num_sets=num_sets, replication=repl,
                num_clients=n + 1, params=params,
            )
            reads = Counter()
            writer = n  # last client id is the writer
            pipes = [_PlaybackPipe(sim, cluster, c) for c in range(n)]
            op_count = [0]

            def spawn_write():
                def wproc():
                    yield cluster.append_op(writer)
                    op_count[0] += 1
                    if op_count[0] % cluster.params.batch == 0:
                        offset = cluster.next_offset()
                        for pipe in pipes:
                            pipe.enqueue(offset)

                sim.spawn(wproc())

            sim.spawn(_open_loop(sim, write_rate_ops, spawn_write))

            def spawn_read(c):
                def rproc():
                    t0 = sim.now
                    yield cluster.linearizable_read(c)
                    yield from pipes[c].wait_mark(pipes[c].mark())
                    if sim.now >= warmup:
                        reads.record(sim.now - t0)

                sim.spawn(rproc())

            for c in range(n):
                sim.spawn(pipes[c].pump())
                sim.spawn(
                    _open_loop(sim, per_reader_rate, lambda c=c: spawn_read(c))
                )
            sim.run(until=warmup + duration)
            rows.append(
                {
                    "log": label,
                    "readers": n,
                    "reads_kops": reads.throughput(duration) / 1e3,
                    "read_latency_ms": reads.mean_latency() * 1e3,
                    "read_p99_ms": reads.percentile_latency(99) * 1e3,
                    "paper_ceiling_kops": 120.0 if label == "2-server" else 180.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 9: transactions on one fully replicated TangoMap
# ---------------------------------------------------------------------------


def fig9_tx_goodput(
    node_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    key_counts: Sequence[int] = (10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000),
    distributions: Sequence[str] = ("zipf", "uniform"),
    window: int = 8,
    duration: float = 0.08,
    warmup: float = 0.02,
    params: ModelParams = DEFAULT_PARAMS,
    seed: int = 7,
) -> List[Row]:
    """Full replication: every node hosts the map and plays every record.

    Each transaction reads 3 keys and writes 3 other keys. Paper:
    goodput is low under contention (tens/hundreds of keys) and reaches
    99% (uniform) / 70% (zipf) at 10K+ keys; "transaction throughput
    hits a maximum with three nodes and stays constant as more nodes are
    added; this illustrates the playback bottleneck."
    """
    shape = TxShape()
    rows: List[Row] = []
    for dist in distributions:
        for keys in key_counts:
            for nodes in node_counts:
                sim = Simulator()
                cluster = ModeledCluster(
                    sim, num_clients=nodes, params=params
                )
                commits = Counter()
                attempts = Counter()
                chooser = KeyChooser(keys, dist, seed=seed)
                versions: Dict[int, int] = {}
                clock = [0]

                def tx(c, chooser=chooser, versions=versions, clock=clock,
                       cluster=cluster, commits=commits, attempts=attempts):
                    def proc():
                        while True:
                            t0 = sim.now
                            read_keys, write_keys = shape.sample(chooser)
                            read_versions = [
                                versions.get(k, -1) for k in read_keys
                            ]
                            yield cluster.client_cpu[c].acquire(params.tx_cpu)
                            yield cluster.append_op(c)
                            # Full replication: every node plays this
                            # commit record. The generator waits for its
                            # own playback (EndTX plays to the commit
                            # point); the others' costs load their
                            # servers asynchronously.
                            for other in range(cluster.num_clients):
                                cost = cluster.playback_records(other, 1)
                                if other == c:
                                    yield cost
                            clock[0] += 1
                            ok = all(
                                versions.get(k, -1) == v
                                for k, v in zip(read_keys, read_versions)
                            )
                            if ok:
                                for k in write_keys:
                                    versions[k] = clock[0]
                            if sim.now >= warmup:
                                attempts.record(sim.now - t0)
                                if ok:
                                    commits.record(sim.now - t0)

                    return proc()

                for c in range(nodes):
                    for _ in range(window):
                        sim.spawn(tx(c))
                sim.run(until=warmup + duration)
                rows.append(
                    {
                        "distribution": dist,
                        "keys": keys,
                        "nodes": nodes,
                        "ktx_per_sec": attempts.throughput(duration) / 1e3,
                        "goodput_ktx": commits.throughput(duration) / 1e3,
                        "goodput_pct": (
                            100.0 * commits.completed / attempts.completed
                            if attempts.completed
                            else 0.0
                        ),
                        "paper_goodput_pct_10k_keys": 70.0 if dist == "zipf" else 99.0,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 10 (left): layered partitions scale until the log saturates
# ---------------------------------------------------------------------------


def fig10_partitions(
    node_counts: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16, 18),
    window: int = 16,
    duration: float = 0.08,
    warmup: float = 0.02,
    params: ModelParams = DEFAULT_PARAMS,
) -> List[Row]:
    """Each node hosts its own TangoMap and transacts only on it.

    Paper: "throughput scales linearly with the number of nodes until it
    saturates the shared log on the 6-server deployment at around 150K
    txes/sec. With an 18-server shared log, throughput scales to 200K
    txes/sec."
    """
    rows: List[Row] = []
    for label, num_sets in (("18-server", 9), ("6-server", 3)):
        for nodes in node_counts:
            sim = Simulator()
            cluster = ModeledCluster(
                sim, num_sets=num_sets, replication=2,
                num_clients=nodes, params=params,
            )
            commits = Counter()

            def tx(c):
                def proc():
                    while True:
                        t0 = sim.now
                        yield cluster.client_cpu[c].acquire(params.tx_cpu)
                        yield cluster.append_op(c)
                        # Layered partitioning: only the owner plays it.
                        yield cluster.playback_records(c, 1)
                        if sim.now >= warmup:
                            commits.record(sim.now - t0)

                return proc()

            for c in range(nodes):
                for _ in range(window):
                    sim.spawn(tx(c))
            sim.run(until=warmup + duration)
            rows.append(
                {
                    "log": label,
                    "nodes": nodes,
                    "ktx_per_sec": commits.throughput(duration) / 1e3,
                    "latency_ms": commits.mean_latency() * 1e3,
                    "paper_ceiling_ktx": 150.0 if label == "6-server" else 200.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 10 (middle): cross-partition transactions, Tango vs 2PL
# ---------------------------------------------------------------------------


def fig10_cross_partition(
    cross_pcts: Sequence[float] = (0, 1, 2, 4, 8, 16, 32, 64, 100),
    nodes: int = 18,
    window: int = 16,
    duration: float = 0.08,
    warmup: float = 0.02,
    params: ModelParams = DEFAULT_PARAMS,
    seed: int = 11,
) -> List[Row]:
    """Transactions that write a remote partition with probability p.

    A cross-partition Tango transaction multiappends its commit record
    (still one log position), appends a decision record, and is played
    by the remote partition's host as well. The 2PL baseline pays a
    timestamp RPC plus remote lock/commit RPCs. Paper: "throughput
    degrades gracefully for both Tango and 2PL as we double the
    percentage of cross-partition transactions."
    """
    rows: List[Row] = []
    for pct in cross_pcts:
        p_cross = pct / 100.0
        # ---- Tango ----
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=nodes, params=params)
        commits = Counter()
        rng = random.Random(seed)

        def tango_tx(c):
            def proc():
                while True:
                    t0 = sim.now
                    cross = rng.random() < p_cross
                    yield cluster.client_cpu[c].acquire(params.tx_cpu)
                    yield cluster.append_op(c)
                    yield cluster.playback_records(c, 1)
                    if cross:
                        # Decision record: build + append (small share)
                        # + the generator and the remote host play the
                        # commit and decision records.
                        yield cluster.client_cpu[c].acquire(params.decision_cpu)
                        yield cluster.append_op(c, payload_share=0.25)
                        yield cluster.playback_records(c, 1)
                        remote = (c + 1 + rng.randrange(nodes - 1)) % nodes
                        yield cluster.playback_records(remote, 2)
                    if sim.now >= warmup:
                        commits.record(sim.now - t0)

            return proc()

        for c in range(nodes):
            for _ in range(window):
                sim.spawn(tango_tx(c))
        sim.run(until=warmup + duration)
        tango_ktx = commits.throughput(duration) / 1e3

        # ---- 2PL ----
        sim2 = Simulator()
        cluster2 = ModeledCluster(sim2, num_clients=nodes, params=params)
        commits2 = Counter()
        rng2 = random.Random(seed)
        # Per-transaction CPU work at the generating client: execute the
        # six operations, acquire/release six locks, validate versions,
        # and install writes — comparable in total to Tango's commit
        # path (the paper's point is that the *scaling shape* matches).
        local_2pl_cpu = 100e-6

        def twopl_tx(c):
            def proc():
                while True:
                    t0 = sim2.now
                    cross = rng2.random() < p_cross
                    yield cluster2.client_cpu[c].acquire(local_2pl_cpu)
                    # Timestamp oracle: same class of machine as the
                    # sequencer.
                    yield cluster2.sequencer_rpc(c)
                    if cross:
                        remote = (c + 1 + rng2.randrange(nodes - 1)) % nodes
                        # lock RPC + commit RPC to the remote owner, each
                        # costing CPU at both ends plus wire time.
                        for _ in range(2):
                            nic = cluster2.client_nic[c]
                            rnic = cluster2.client_nic[remote]
                            yield (
                                nic.send(params.small_rpc_bytes)
                                + rnic.rx.transfer(params.small_rpc_bytes)
                            )
                            yield cluster2.client_cpu[remote].acquire(
                                params.decision_cpu
                            )
                            yield (
                                rnic.tx.transfer(params.small_rpc_bytes)
                                + nic.recv(params.small_rpc_bytes)
                            )
                    if sim2.now >= warmup:
                        commits2.record(sim2.now - t0)

            return proc()

        for c in range(nodes):
            for _ in range(window):
                sim2.spawn(twopl_tx(c))
        sim2.run(until=warmup + duration)
        rows.append(
            {
                "cross_pct": pct,
                "tango_ktx": tango_ktx,
                "twopl_ktx": commits2.throughput(duration) / 1e3,
                "paper_note": "both degrade gracefully from ~200K",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 10 (right): transactions on an object shared by all nodes
# ---------------------------------------------------------------------------


def fig10_shared_object(
    shared_pcts: Sequence[float] = (0, 1, 2, 4, 8, 16, 32, 64, 100),
    nodes: int = 4,
    window: int = 16,
    duration: float = 0.08,
    warmup: float = 0.02,
    params: ModelParams = DEFAULT_PARAMS,
    seed: int = 13,
) -> List[Row]:
    """Each node has its own map plus a view of one shared map.

    A shared transaction's read set includes the generator's private
    map, which the other nodes do not host — so they must wait for the
    decision record, stalling their playback of the shared stream.
    Paper: "throughput falls sharply going from 0% to 1%, after which it
    degrades gracefully."
    """
    rows: List[Row] = []
    poll = 20e-6
    for pct in shared_pcts:
        p_shared = pct / 100.0
        sim = Simulator()
        cluster = ModeledCluster(sim, num_clients=nodes, params=params)
        commits = Counter()
        rng = random.Random(seed)
        # Per-node playback pipelines. Items are
        # [ready_cell, records, done_cell]: ready_cell is None until the
        # transaction's decision record exists (stalling the pipeline,
        # exactly like the runtime's parked streams); done_cell lets a
        # generator wait for its own commit to clear its pipeline.
        queues: List[List[list]] = [[] for _ in range(nodes)]

        def playback(node):
            def proc():
                while True:
                    if not queues[node]:
                        yield poll
                        continue
                    item = queues[node][0]
                    if item[0] is None:
                        # Parked: the decision record has not been
                        # appended yet. The stream is blocked.
                        yield poll
                        continue
                    queues[node].pop(0)
                    if item[0] > sim.now:
                        yield item[0] - sim.now
                    yield cluster.playback_records(node, item[1])
                    item[2][0] = True

            return proc()

        for node in range(nodes):
            sim.spawn(playback(node))

        def tx(c):
            def proc():
                while True:
                    t0 = sim.now
                    shared = rng.random() < p_shared
                    yield cluster.client_cpu[c].acquire(params.tx_cpu)
                    yield cluster.append_op(c)
                    done = [False]
                    if not shared:
                        # Private transaction: only our own pipeline
                        # plays the commit record — but it sits behind
                        # any parked shared records (merged playback).
                        queues[c].append([sim.now, 1, done])
                    else:
                        # Shared transaction: every node plays it. We
                        # host the full read set so our copy is ready
                        # immediately; the others must wait for the
                        # decision record.
                        remote_items = []
                        for other in range(nodes):
                            if other != c:
                                item = [None, 2, [False]]
                                queues[other].append(item)
                                remote_items.append(item)
                        queues[c].append([sim.now, 1, done])
                        # EndTX: sync (one sequencer round-trip), play to
                        # the commit point, decide, append the decision.
                        yield cluster.sequencer_rpc(c)
                        while not done[0]:
                            yield poll
                        yield cluster.client_cpu[c].acquire(
                            params.decision_cpu
                        )
                        yield cluster.append_op(c, payload_share=0.25)
                        decision_time = sim.now
                        for item in remote_items:
                            item[0] = decision_time
                        if sim.now >= warmup:
                            commits.record(sim.now - t0)
                        continue
                    # Private path: wait for our commit to clear the
                    # pipeline (EndTX plays the log to the commit point).
                    while not done[0]:
                        yield poll
                    if sim.now >= warmup:
                        commits.record(sim.now - t0)

            return proc()

        for c in range(nodes):
            for _ in range(window):
                sim.spawn(tx(c))
        sim.run(until=warmup + duration)
        rows.append(
            {
                "shared_pct": pct,
                "ktx_per_sec": commits.throughput(duration) / 1e3,
                "latency_ms": commits.mean_latency() * 1e3,
                "paper_note": "sharp fall 0->1%, then graceful",
            }
        )
    return rows
