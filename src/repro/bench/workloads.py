"""Workload generators for the evaluation.

Figure 9 "chooses keys using a highly skewed zipf distribution
(corresponding to workload 'a' of the Yahoo! Cloud Serving Benchmark)"
or a uniform distribution; "each transaction reads three keys and writes
three other keys".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.util.zipf import ZipfGenerator


class KeyChooser:
    """Uniform or zipfian key selection over ``[0, num_keys)``."""

    def __init__(
        self, num_keys: int, distribution: str = "uniform", seed: int = 0
    ) -> None:
        if distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown distribution {distribution!r}")
        self.num_keys = num_keys
        self.distribution = distribution
        self._rng = random.Random(seed)
        self._zipf = (
            ZipfGenerator(num_keys, rng=self._rng)
            if distribution == "zipf"
            else None
        )

    def choose(self) -> int:
        if self._zipf is not None:
            return self._zipf.sample()
        return self._rng.randrange(self.num_keys)

    def choose_distinct(self, count: int) -> List[int]:
        """*count* distinct keys (resampling duplicates)."""
        keys: List[int] = []
        seen = set()
        guard = 0
        while len(keys) < count:
            key = self.choose()
            if key not in seen:
                seen.add(key)
                keys.append(key)
            guard += 1
            if guard > 100 * count:
                # Pathologically small key spaces: fall back to reuse.
                keys.append(key)
        return keys


@dataclass(frozen=True)
class TxShape:
    """Shape of the evaluation's transactions (3 reads + 3 writes)."""

    reads: int = 3
    writes: int = 3

    def sample(self, chooser: KeyChooser) -> Tuple[List[int], List[int]]:
        """Draw disjoint read and write key sets (Figure 9: "each
        transaction reads three keys and writes three other keys")."""
        keys = chooser.choose_distinct(self.reads + self.writes)
        return keys[: self.reads], keys[self.reads :]
