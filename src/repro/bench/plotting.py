"""Terminal plotting: render experiment curves as ASCII charts.

No plotting stack is assumed (the reproduction runs offline); these
helpers draw the evaluation's throughput/latency curves directly in the
terminal, good enough to eyeball plateaus, knees, and crossovers against
the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_GLYPHS = "ox+*#@"


def ascii_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared-axes ASCII chart.

    Each series gets a glyph; overlapping points show the later series'
    glyph. Axes are annotated with min/max; the y-axis starts at zero
    (throughput plots read wrong otherwise).
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    top_label = f"{y_hi:g}"
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{top_label:>10} |"
        elif i == height - 1:
            prefix = f"{y_lo:>10g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    footer = f"{x_lo:<12g}{x_label:^{max(0, width - 24)}}{x_hi:>12g}"
    lines.append(" " * 12 + footer)
    if y_label:
        lines.insert(1 if not title else 2, f"y: {y_label}")
    return "\n".join(lines)


def series_from_rows(
    rows: Sequence[dict], x_key: str, y_key: str, group_key: str = None
) -> Dict[str, List[Tuple[float, float]]]:
    """Group experiment rows into plottable series.

    With *group_key*, one series per distinct group value; otherwise a
    single anonymous series.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in rows:
        name = str(row[group_key]) if group_key else y_key
        series.setdefault(name, []).append(
            (float(row[x_key]), float(row[y_key]))
        )
    for pts in series.values():
        pts.sort()
    return series
