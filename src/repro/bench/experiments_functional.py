"""Functional-layer experiments: section 6.3 and section 5 claims.

These run the *real* implementation (the in-process protocols), not the
performance model. Absolute throughput is Python-speed, so the paper
comparisons here are structural:

- section 6.3: transactions on independent TangoZK namespaces vs
  transactions that atomically move a file between namespaces (the
  paper reports ~200K/s vs ~20K/s — an order of magnitude); TangoBK
  ledger writes run at the speed of the underlying shared log.
- section 5: sequencer failover recovers tail + backpointer state (the
  paper replaces a failed sequencer within 10 ms on an 18-node
  deployment); the sequencer's soft state is 32 bytes per stream.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.corfu import CorfuCluster, reconfig
from repro.objects.bookkeeper import TangoBK
from repro.objects.zookeeper import TangoZK
from repro.tango.directory import TangoDirectory
from repro.tango.runtime import TangoRuntime

Row = Dict[str, object]


def _build_runtimes(cluster: CorfuCluster, count: int):
    runtimes = [
        TangoRuntime(cluster, client_id=i + 1, name=f"client-{i}")
        for i in range(count)
    ]
    directories = [TangoDirectory(rt) for rt in runtimes]
    return runtimes, directories


def sec63_zookeeper(
    clients: int = 4, ops_per_client: int = 200, moves: int = 100
) -> List[Row]:
    """Independent-namespace ZK transactions vs cross-namespace moves.

    Each client owns one TangoZK namespace and creates znodes in it;
    then one client performs atomic file moves between two namespaces.
    The paper's claim is the order-of-magnitude gap and the fact that
    cross-namespace atomic moves exist at all ("The capability to move
    files across different instances does not exist in ZooKeeper").
    """
    cluster = CorfuCluster(num_sets=9, replication_factor=2)
    runtimes, directories = _build_runtimes(cluster, clients)
    namespaces = [
        directories[i].open(TangoZK, f"ns-{i}", session_id=f"s{i}")
        for i in range(clients)
    ]

    start = time.perf_counter()
    total_ops = 0
    for i, zk in enumerate(namespaces):
        zk.create("/files", b"")
        for n in range(ops_per_client):
            zk.create(f"/files/f{n}", b"data")
            total_ops += 1
    independent_elapsed = time.perf_counter() - start
    independent_rate = total_ops / independent_elapsed

    # Cross-namespace moves: the first client opens a view of the second
    # namespace and transactionally moves files into it.
    mover_rt = runtimes[0]
    src = namespaces[0]
    dst = directories[0].open(TangoZK, "ns-1", session_id="mover")
    dst_view = namespaces[1]

    start = time.perf_counter()
    done_moves = 0
    for n in range(min(moves, ops_per_client)):
        path = f"/files/f{n}"

        def move(path=path):
            data, _stat = src.get_data(path)
            src.delete(path)
            dst.create(f"/files/moved{done_moves}_{path.rsplit('/', 1)[1]}", data)

        mover_rt.run_transaction(move)
        done_moves += 1
    move_elapsed = time.perf_counter() - start
    move_rate = done_moves / move_elapsed

    # Verify atomicity effects are visible at the destination's owner.
    visible = sum(
        1
        for name in dst_view.get_children("/files")
        if name.startswith("moved")
    )
    return [
        {
            "metric": "independent-namespace creates/sec",
            "measured": round(independent_rate, 1),
            "paper": "~200K tx/s at 18 clients (C++)",
        },
        {
            "metric": "cross-namespace moves/sec",
            "measured": round(move_rate, 1),
            "paper": "~20K tx/s (an order of magnitude lower)",
        },
        {
            "metric": "independent/move rate ratio",
            "measured": round(independent_rate / move_rate, 2),
            "paper": "~10x",
        },
        {
            "metric": "moves visible at destination owner",
            "measured": visible,
            "paper": f"{done_moves} (full fidelity)",
        },
    ]


def sec63_bookkeeper(entries: int = 500, entry_bytes: int = 1024) -> List[Row]:
    """Ledger writes translate directly into stream appends.

    The paper generates "over 200K 4KB writes/sec using an 18-node
    shared log"; structurally, each add_entry is one append plus one
    sync, which is what we verify (the absolute rate is Python-speed).
    """
    cluster = CorfuCluster(num_sets=9, replication_factor=2)
    runtimes, directories = _build_runtimes(cluster, 1)
    bk = TangoBK(runtimes[0], directories[0])
    ledger = bk.create_ledger("bench-ledger")
    appends_before = runtimes[0].streams.corfu.appends

    payload = b"x" * entry_bytes
    start = time.perf_counter()
    for _ in range(entries):
        ledger.add_entry(payload)
    elapsed = time.perf_counter() - start
    appends_used = runtimes[0].streams.corfu.appends - appends_before

    return [
        {
            "metric": "ledger writes/sec (functional, Python)",
            "measured": round(entries / elapsed, 1),
            "paper": ">200K 4KB writes/s on the 18-node testbed (C++)",
        },
        {
            "metric": "log appends per ledger write",
            "measured": round(appends_used / entries, 2),
            "paper": "1 (writes translate directly into stream appends)",
        },
    ]


def sec5_failover_vs_checkpoint(
    log_sizes=(100, 400, 1600), streams: int = 8
) -> List[Row]:
    """Failover cost with and without sequencer state checkpoints.

    The paper's stated plan ("having the sequencer store periodic
    checkpoints in the log") bounds the backward scan: without a
    checkpoint, recovery reads O(log length) entries; with one near the
    tail, O(1).
    """
    rows: List[Row] = []
    for entries in log_sizes:
        for checkpointed in (False, True):
            cluster = CorfuCluster(num_sets=9, replication_factor=2)
            client = cluster.client()
            for i in range(entries):
                client.append(b"p%d" % i, stream_ids=(i % streams,))
            if checkpointed:
                reconfig.checkpoint_sequencer_state(cluster)
                client.append(b"after", stream_ids=(0,))
            cluster.crash_sequencer()
            reads_before = cluster.total_storage_reads()
            start = time.perf_counter()
            reconfig.replace_sequencer(cluster)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            rows.append(
                {
                    "log_entries": entries,
                    "checkpointed": checkpointed,
                    "scan_reads": cluster.total_storage_reads() - reads_before,
                    "failover_ms": round(elapsed_ms, 2),
                }
            )
    return rows


def sec5_sequencer_failover(
    entries: int = 400, streams: int = 8
) -> List[Row]:
    """Sequencer failover: seal, slow check, backpointer rebuild.

    The paper replaces a failed sequencer within 10 ms (18 nodes) and
    stores K=4 8-byte backpointers per stream (32 bytes/stream). We
    measure the functional failover end-to-end and verify the recovered
    state is exact.
    """
    cluster = CorfuCluster(num_sets=9, replication_factor=2)
    client = cluster.client()
    for i in range(entries):
        client.append(b"payload-%d" % i, stream_ids=(i % streams,))
    old_seq = cluster.sequencer(cluster.projection.sequencer)
    expected_tail, expected_streams = old_seq.query(tuple(range(streams)))

    cluster.crash_sequencer()
    start = time.perf_counter()
    new_projection = reconfig.replace_sequencer(cluster)
    elapsed_ms = (time.perf_counter() - start) * 1e3

    new_seq = cluster.sequencer(new_projection.sequencer)
    tail, recovered = new_seq.query(
        tuple(range(streams)), epoch=new_projection.epoch
    )
    exact = tail == expected_tail and all(
        tuple(recovered[s]) == tuple(expected_streams[s]) for s in range(streams)
    )
    return [
        {
            "metric": f"failover time, {entries} entries / {streams} streams (ms)",
            "measured": round(elapsed_ms, 2),
            "paper": "~10 ms on an 18-node deployment",
        },
        {
            "metric": "recovered state exact (tail + last-K per stream)",
            "measured": exact,
            "paper": "required for correctness",
        },
        {
            "metric": "sequencer soft state per stream (bytes)",
            "measured": new_seq.stream_state_bytes() // max(1, streams),
            "paper": "32 (K=4 x 8-byte offsets)",
        },
    ]
