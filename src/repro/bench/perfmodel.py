"""The calibrated model of the paper's testbed.

Section 6: "36 8-core machines in two racks, with gigabit NICs ... Half
the nodes are equipped with two Intel X25V SSDs each. In all the
experiments, we run an 18-node CORFU deployment ... in a 9X2
configuration ... The CORFU sequencer runs on a powerful, 32-core
machine ... The other 18 nodes are used as clients ... We use 4KB
entries in the CORFU log, with a batch size of 4 at each client."

Every constant below is calibrated against a *reported number* in the
paper, not measured on our hardware (absolute fidelity is explicitly a
non-goal; see DESIGN.md). The calibration anchors:

===========================  ==========================================
constant                     anchor in the paper
===========================  ==========================================
``seq_service``              Fig 2 plateau: ~570K requests/sec
``net_latency``              sub-millisecond reads; ~10ms slow ops
``read_cpu``                 Fig 8 left, read-only curve: ~150-180K/s
``append_cpu``               Fig 8 left, write-only: 38K ops/s (9.5K
                             entries/s at batch 4)
``ssd_write_service``        Fig 10 left: 6-server log saturates at
                             ~150K tx/s = 37.5K entries/s over 3 chains
``ssd_read_service``         Fig 8 right: 2-server log saturates at
                             ~120K reads/s
``apply_cpu``                Fig 9: the playback bottleneck, "tens of
                             thousands of operations per second" per
                             client (~40K records/s ceiling)
``tx_cpu``                   Fig 10 left: ~200K tx/s across 18 clients
===========================  ==========================================

The modeled read path reflects the paper's indexed-view design (section
3.1, "Durability"): a linearizable read is a fast check at the sequencer
plus one 4KB entry fetch from the offset the view points at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Server, Simulator
from repro.sim.network import Nic


@dataclass(frozen=True)
class ModelParams:
    """Calibrated testbed constants (seconds / bytes)."""

    nic_bandwidth: float = 1e9  # gigabit NICs
    net_latency: float = 60e-6  # one-way, incl. kernel stack
    seq_service: float = 1.75e-6  # 1/570K
    ssd_write_service: float = 80e-6  # 4KB flash write (X25V class)
    ssd_read_service: float = 16.5e-6  # 4KB flash read (cached/flash mix)
    read_cpu: float = 5.5e-6  # client CPU per linearizable read
    append_cpu: float = 105e-6  # client CPU per 4KB entry append
    tx_cpu: float = 55e-6  # client CPU per transaction (generate+validate)
    apply_cpu: float = 25e-6  # client CPU per played record
    decision_cpu: float = 15e-6  # extra CPU to build/append a decision
    entry_bytes: int = 4096
    batch: int = 4  # commit records per log entry
    small_rpc_bytes: int = 128  # sequencer requests, acks


DEFAULT_PARAMS = ModelParams()


class ModeledCluster:
    """Queueing-network model of one CORFU deployment plus its clients.

    Replica chains are modeled as the client writing each replica in
    sequence (client-driven chain replication); reads hit the chain's
    tail. Server names follow the functional layer's layout: chain ``s``
    has replicas ``(s, 0) .. (s, r-1)``.
    """

    def __init__(
        self,
        sim: Simulator,
        num_sets: int = 9,
        replication: int = 2,
        num_clients: int = 18,
        params: ModelParams = DEFAULT_PARAMS,
        seq_shards: int = 1,
    ) -> None:
        self.sim = sim
        self.params = params
        self.num_sets = num_sets
        self.replication = replication
        self.num_clients = num_clients
        self.seq_shards = seq_shards
        p = params
        if seq_shards == 1:
            self.seq_cpus = [Server(sim, capacity=1, name="sequencer")]
            self.seq_nics = [Nic(sim, p.nic_bandwidth * 10, p.net_latency, "seq")]
        else:
            self.seq_cpus = [
                Server(sim, capacity=1, name=f"sequencer.{i}")
                for i in range(seq_shards)
            ]
            self.seq_nics = [
                Nic(sim, p.nic_bandwidth * 10, p.net_latency, f"seq.{i}")
                for i in range(seq_shards)
            ]
        self.seq_cpu = self.seq_cpus[0]
        self.seq_nic = self.seq_nics[0]
        # The sequencer machine is "powerful, 32-core" with a fat pipe;
        # its NIC is 10GbE-class so the CPU is the plateau, as in Fig 2.
        # Sharding replaces the one machine with ``seq_shards`` peers,
        # each owning the stream group ``sid % seq_shards``.
        self.storage_nic: Dict[Tuple[int, int], Nic] = {}
        self.ssd: Dict[Tuple[int, int], Server] = {}
        for s in range(num_sets):
            for r in range(replication):
                key = (s, r)
                self.storage_nic[key] = Nic(
                    sim, p.nic_bandwidth, p.net_latency, f"flash-{s}-{r}"
                )
                self.ssd[key] = Server(sim, capacity=1, name=f"ssd-{s}-{r}")
        self.client_nic: List[Nic] = [
            Nic(sim, p.nic_bandwidth, p.net_latency, f"client-{i}")
            for i in range(num_clients)
        ]
        self.client_cpu: List[Server] = [
            Server(sim, capacity=1, name=f"cpu-{i}") for i in range(num_clients)
        ]
        self._tail = 0
        self._read_rr = 0

    # ------------------------------------------------------------------
    # protocol cost paths (each returns a delay in seconds)
    # ------------------------------------------------------------------

    def next_offset(self) -> int:
        """Logical tail (used only to spread load across chains)."""
        offset = self._tail
        self._tail += 1
        return offset

    def sequencer_rpc(self, client: int, stream: Optional[int] = None) -> float:
        """One round-trip to the owning sequencer shard (check or
        increment). With one shard this is bit-for-bit the classic
        single-counter path; with N shards the request routes to the
        shard owning ``stream % N`` (default: the client's home group,
        modeling clients whose streams hash across groups)."""
        p = self.params
        sid = client if stream is None else stream
        shard = sid % self.seq_shards
        seq_cpu = self.seq_cpus[shard]
        seq_nic = self.seq_nics[shard]
        nic = self.client_nic[client]
        out = nic.send(p.small_rpc_bytes) + seq_nic.rx.transfer(
            p.small_rpc_bytes
        )
        svc = seq_cpu.acquire(p.seq_service)
        back = seq_nic.tx.transfer(p.small_rpc_bytes) + nic.recv(
            p.small_rpc_bytes
        )
        return out + svc + back

    def append_entry(self, client: int) -> Tuple[float, int]:
        """Append one 4KB entry: CPU + sequencer + chain writes.

        Returns (delay, offset). The client streams the entry to each
        replica of the chain in order and waits for each SSD.
        """
        p = self.params
        delay = self.client_cpu[client].acquire(p.append_cpu)
        delay += self.sequencer_rpc(client)
        offset = self.next_offset()
        chain = offset % self.num_sets
        nic = self.client_nic[client]
        for r in range(self.replication):
            delay += nic.send(p.entry_bytes)
            delay += self.storage_nic[(chain, r)].rx.transfer(p.entry_bytes)
            delay += self.ssd[(chain, r)].acquire(p.ssd_write_service)
            delay += self.storage_nic[(chain, r)].tx.transfer(
                p.small_rpc_bytes
            ) + nic.recv(p.small_rpc_bytes)
        return delay, offset

    def read_entry(self, client: int, offset: int, tail: bool = False) -> float:
        """Random read of one 4KB entry from its chain.

        Entries known committed may be served by any replica (balanced
        by offset); entries at the frontier — playback fetching what the
        sequencer just reported — must go to the chain *tail*, the only
        replica guaranteed to expose a completed write. That asymmetry
        is what saturates small logs in Figure 8 (right): all playback
        traffic for a 1-chain log converges on one tail NIC.
        """
        p = self.params
        chain = offset % self.num_sets
        if tail:
            replica = self.replication - 1
        else:
            replica = (offset // self.num_sets) % self.replication
        nic = self.client_nic[client]
        delay = nic.send(p.small_rpc_bytes)
        delay += self.storage_nic[(chain, replica)].rx.transfer(p.small_rpc_bytes)
        delay += self.ssd[(chain, replica)].acquire(p.ssd_read_service)
        delay += self.storage_nic[(chain, replica)].tx.transfer(p.entry_bytes)
        delay += nic.recv(p.entry_bytes)
        return delay

    def linearizable_read(self, client: int) -> float:
        """One linearizable accessor: fast check + local view read.

        The view holds the value in RAM, so a read with no pending
        updates is a single sequencer round-trip plus client CPU —
        that is how a single client sustains 135K reads/s over a
        gigabit NIC (Fig 8 left). Catching up with pending writes is
        the *playback* cost, modeled separately (``read_entry`` with
        ``tail=True`` plus ``apply_cpu``) because it is driven by the
        write rate, not the read rate.
        """
        p = self.params
        delay = self.client_cpu[client].acquire(p.read_cpu)
        delay += self.sequencer_rpc(client)
        return delay

    def playback_fetch(self, client: int, offset: int) -> float:
        """Fetch-and-apply one frontier entry (a playback step)."""
        p = self.params
        delay = self.read_entry(client, offset, tail=True)
        delay += self.client_cpu[client].acquire(p.apply_cpu * p.batch)
        return delay

    def next_read_target(self, client: int) -> int:
        """Spread read traffic across chains like real offsets do."""
        # Deterministic striping is how the mapping function behaves.
        self._read_rr += 1
        return self._read_rr

    def append_op(self, client: int, payload_share: float = 1.0) -> float:
        """Amortized cost of one *operation* under record batching.

        The runtime packs ``batch`` records per 4KB entry, so each op
        pays 1/batch of the entry's CPU, sequencer, wire, and SSD cost.
        Amortization preserves total load on every shared server, which
        is what the throughput curves are made of; per-op latency is the
        amortized share plus whatever queueing develops.
        """
        p = self.params
        share = payload_share / p.batch
        delay = self.client_cpu[client].acquire(p.append_cpu * share)
        # Sequencer: one increment per entry.
        nic = self.client_nic[client]
        delay += nic.send(int(p.small_rpc_bytes * share)) + self.seq_nic.rx.transfer(
            int(p.small_rpc_bytes * share)
        )
        delay += self.seq_cpu.acquire(p.seq_service * share)
        delay += self.seq_nic.tx.transfer(int(p.small_rpc_bytes * share)) + nic.recv(
            int(p.small_rpc_bytes * share)
        )
        # Chain writes: 1/batch of the 4KB entry to each replica.
        offset = self.next_offset()
        chain = offset % self.num_sets
        nbytes = int(p.entry_bytes * share)
        for r in range(self.replication):
            delay += nic.send(nbytes)
            delay += self.storage_nic[(chain, r)].rx.transfer(nbytes)
            delay += self.ssd[(chain, r)].acquire(p.ssd_write_service * share)
        return delay

    def playback_records(self, client: int, records: int) -> float:
        """Client-side cost of consuming *records* played records.

        Covers the entry fetch amortized over the batch plus the apply
        upcall CPU — the per-client playback bottleneck of section 1.
        """
        p = self.params
        nic = self.client_nic[client]
        # Wire cost amortizes over the batch (4 records per 4KB entry).
        delay = nic.recv(int(p.entry_bytes * records / p.batch))
        delay += self.client_cpu[client].acquire(p.apply_cpu * records)
        return delay
