"""Transport base machinery: proxies, per-endpoint stats, loopback.

A transport delivers *calls*: ``call(source, target, op, resolve,
args, kwargs)`` where *source* names the calling endpoint (a client,
or the reconfiguration driver acting for one), *target* names the node,
*op* is the RPC method name, and *resolve* is a zero-argument callable
returning the live server object (so delivery — not proxy creation —
observes node liveness, exactly like a real connection attempt).

Clients never hold server objects directly; they hold
:class:`RpcProxy` handles obtained from the transport. Every attribute
access on a proxy names an RPC and forwards through ``Transport.call``
when invoked; the only local state a proxy exposes is its own endpoint
metadata (:attr:`RpcProxy.source` / :attr:`RpcProxy.target`). Reaching
through a proxy to a server attribute is a hard error — it cannot work
across a process boundary, and allowing it under loopback hid exactly
that dependency.

Transports also own their notion of *time* (:mod:`repro.net.clock`):
the default :class:`~repro.net.clock.LogicalClock` ticks once per
backoff so simulated fault schedules stay deterministic, while the
socket transport plugs in a
:class:`~repro.net.clock.MonotonicClock` so deadlines and retry
backoff use real wall time.

Concurrency: a transport is shared by every client thread of a
deployment, so counter updates are read-modify-write races unless
locked. :class:`EndpointStats` owns a lock for its counters (all bumps
go through ``note_*`` methods; TL010 enforces this), and the transport
guards its endpoint map so ``endpoint_stats`` can snapshot while
another thread is creating an endpoint's entry. Readers of a single
counter attribute (e.g. the failure detector's ``stats.rpcs``) take a
plain int read, which is atomic under the GIL.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.net.clock import Clock, LogicalClock


def resolve_method(resolve: Callable[[], object], target: str, op: str):
    """Resolve the live server object and the *callable* named by *op*.

    Shared by the in-process transports (loopback, faulty). A
    non-callable attribute is a protocol violation, not metadata: over
    a real wire there is no object to reach into, so delivery refuses
    to simulate it.
    """
    attr = getattr(resolve(), op)
    if not callable(attr):
        raise TypeError(
            f"rpc '{op}' to {target} names a non-callable server "
            f"attribute; attribute reach-through across the transport "
            f"is not supported (hold local metadata on the client, or "
            f"add a real RPC)"
        )
    return attr


class EndpointStats:
    """Per-node RPC counters, kept by the transport.

    ``rpcs`` counts delivered calls (the server actually executed);
    ``retries`` counts client-side retry decisions against this node;
    ``timeouts`` counts :class:`~repro.errors.RpcTimeout` raised to
    callers; ``duplicates`` counts extra at-least-once deliveries;
    ``drops`` counts lost requests/responses; ``reordered`` counts
    deliveries deferred past their issue order. ``batch_rpcs`` /
    ``batch_offsets`` count delivered *batched* reads (``read_many``)
    and the offsets they carried — the observable proof that the
    batched read path is collapsing round trips. ``inflight`` /
    ``max_inflight`` gauge calls currently being delivered and the
    high-water mark — the observable proof that the pipelined write
    path overlaps chain hops instead of serializing them.
    """

    __slots__ = (
        "rpcs", "retries", "timeouts", "duplicates", "drops", "reordered",
        "batch_rpcs", "batch_offsets", "inflight", "max_inflight", "_lock",
    )

    def __init__(self) -> None:
        self.rpcs = 0
        self.retries = 0
        self.timeouts = 0
        self.duplicates = 0
        self.drops = 0
        self.reordered = 0
        self.batch_rpcs = 0
        self.batch_offsets = 0
        self.inflight = 0
        self.max_inflight = 0
        self._lock = threading.Lock()

    def note_delivery(self, op: str, args: tuple) -> None:
        """Record one delivered call (the server executed it)."""
        with self._lock:
            self.rpcs += 1
            if op == "read_many" and args:
                self.batch_rpcs += 1
                try:
                    self.batch_offsets += len(args[0])
                except TypeError:  # pragma: no cover - malformed batch arg
                    pass

    def note_begin(self) -> None:
        """A delivery started executing (pairs with :meth:`note_end`)."""
        with self._lock:
            self.inflight += 1
            if self.inflight > self.max_inflight:
                self.max_inflight = self.inflight

    def note_end(self) -> None:
        with self._lock:
            self.inflight -= 1

    def note_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def note_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def note_drop(self) -> None:
        with self._lock:
            self.drops += 1

    def note_duplicate(self) -> None:
        with self._lock:
            self.duplicates += 1

    def note_reordered(self) -> None:
        with self._lock:
            self.reordered += 1

    def to_dict(self) -> Dict[str, int]:
        """Consistent snapshot (taken under the counter lock)."""
        with self._lock:
            return {
                "rpcs": self.rpcs,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "duplicates": self.duplicates,
                "drops": self.drops,
                "reordered": self.reordered,
                "batch_rpcs": self.batch_rpcs,
                "batch_offsets": self.batch_offsets,
                "inflight": self.inflight,
                "max_inflight": self.max_inflight,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EndpointStats {self.to_dict()}>"


class RpcProxy:
    """A client's handle on one remote node.

    Every public attribute access names an RPC: the returned callable
    forwards through ``Transport.call`` when invoked, without touching
    the server object first (delivery — not attribute lookup — is what
    observes liveness, exactly like a real connection). The proxy's
    own local metadata is explicit: :attr:`source` and :attr:`target`
    name the endpoints. There is no attribute reach-through — asking a
    proxy for server state is answered with an error at call time, not
    a loopback-only shortcut.
    """

    __slots__ = ("_transport", "_source", "_target", "_resolve")

    def __init__(
        self,
        transport: "Transport",
        source: str,
        target: str,
        resolve: Callable[[], object],
    ) -> None:
        self._transport = transport
        self._source = source
        self._target = target
        self._resolve = resolve

    @property
    def source(self) -> str:
        """Local metadata: the calling endpoint's name."""
        return self._source

    @property
    def target(self) -> str:
        """Local metadata: the node this proxy addresses."""
        return self._target

    def __getattr__(self, op: str):
        if op.startswith("_"):
            # Private/dunder lookups (copy, pickle, introspection) are
            # never RPCs; refusing them here keeps tooling honest.
            raise AttributeError(op)
        transport = self._transport
        source, target, resolve = self._source, self._target, self._resolve

        def rpc(*args, **kwargs):
            return transport.call(source, target, op, resolve, args, kwargs)

        rpc.__name__ = op
        return rpc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RpcProxy {self._source}->{self._target}>"


class Transport:
    """Base class: endpoint stats plus the delivery interface.

    Each transport owns a :class:`~repro.net.clock.Clock`. In-process
    transports default to a :class:`~repro.net.clock.LogicalClock`
    (deterministic ticks), the socket transport plugs in a
    :class:`~repro.net.clock.MonotonicClock` (wall deadlines, real
    sleeps). Client retry code only ever calls :meth:`backoff`, so it
    is agnostic to which one is installed.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._stats: Dict[str, EndpointStats] = {}
        # Guards the endpoint map itself (entry creation vs snapshot
        # iteration) and the transport-wide in-flight gauge; each
        # EndpointStats guards its own counters.
        self._stats_lock = threading.Lock()
        self._inflight = 0
        self._max_inflight = 0
        self.clock: Clock = clock if clock is not None else LogicalClock()

    # -- delivery (subclass responsibility) ---------------------------------

    def call(
        self,
        source: str,
        target: str,
        op: str,
        resolve: Callable[[], object],
        args: tuple,
        kwargs: dict,
    ):
        raise NotImplementedError

    def backoff(self, source: str, attempt: int) -> None:
        """Client-side retry backoff hook.

        Delegates to the transport clock: logical clocks tick once
        (deterministic), wall clocks sleep the standard exponential
        schedule. Subclasses may layer extra work on top (the faulty
        transport flushes deferred deliveries here).
        """
        self.clock.backoff(attempt)

    # -- proxies ------------------------------------------------------------

    def proxy(
        self, source: str, target: str, resolve: Callable[[], object]
    ) -> RpcProxy:
        """A *source*-side handle on node *target*."""
        return RpcProxy(self, source, target, resolve)

    # -- observability ------------------------------------------------------

    def _note_begin(self) -> None:
        """A delivery started executing somewhere on this transport.

        Unlike the per-endpoint gauge (which shows concurrency against
        one node), the transport-wide gauge shows concurrency across
        the whole deployment — a pipelined chain write with one
        in-flight hop per replica reads 1 per endpoint but
        ``len(chain)`` here.
        """
        with self._stats_lock:
            self._inflight += 1
            if self._inflight > self._max_inflight:
                self._max_inflight = self._inflight

    def _note_end(self) -> None:
        with self._stats_lock:
            self._inflight -= 1

    def inflight_stats(self) -> Dict[str, int]:
        """Transport-wide concurrent-delivery gauge and high-water mark."""
        with self._stats_lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self._max_inflight,
            }

    def stats_for(self, target: str) -> EndpointStats:
        with self._stats_lock:
            stats = self._stats.get(target)
            if stats is None:
                stats = EndpointStats()
                self._stats[target] = stats
            return stats

    def record_retry(self, target: str) -> None:
        """Clients report each retry decision so operators can see them."""
        self.stats_for(target).note_retry()

    def endpoint_stats(self) -> Dict[str, Dict[str, int]]:
        """Snapshot of per-endpoint counters (fresh dicts, safe to mutate)."""
        with self._stats_lock:
            targets = sorted(self._stats.items())
        return {target: stats.to_dict() for target, stats in targets}


class LoopbackTransport(Transport):
    """Direct in-process delivery: no faults, no copies, no delay.

    This is the default transport and preserves the pre-``repro.net``
    semantics exactly: every RPC is one Python method call on the live
    server object.
    """

    def call(
        self,
        source: str,
        target: str,
        op: str,
        resolve: Callable[[], object],
        args: tuple,
        kwargs: dict,
    ):
        stats = self.stats_for(target)
        stats.note_delivery(op, args)
        stats.note_begin()
        self._note_begin()
        try:
            return resolve_method(resolve, target, op)(*args, **kwargs)
        finally:
            self._note_end()
            stats.note_end()


class LatencyTransport(LoopbackTransport):
    """Loopback delivery plus a fixed real-time delay per call.

    A benchmarking aid: loopback RPCs are plain function calls, so
    overlapping chain hops cannot be told apart from serializing them.
    This transport makes every delivery cost *delay_s* of wall time
    (slept on the caller's thread, never under a lock), so the
    pipelined write path's overlap shows up as real throughput —
    ``perf_gate.py``'s ``append_pipelined`` scenario runs on it. Uses a
    :class:`~repro.net.clock.MonotonicClock` (the sanctioned wall-time
    source), keeping deterministic logical time for everything else.
    """

    def __init__(self, delay_s: float = 0.0002) -> None:
        super().__init__()
        from repro.net.clock import MonotonicClock

        self.clock = MonotonicClock()
        self.delay_s = delay_s

    def call(
        self,
        source: str,
        target: str,
        op: str,
        resolve: Callable[[], object],
        args: tuple,
        kwargs: dict,
    ):
        # The simulated wire time is part of the delivery, so it sits
        # inside the in-flight gauge window: two calls sleeping their
        # delay concurrently are two overlapped deliveries.
        stats = self.stats_for(target)
        stats.note_delivery(op, args)
        stats.note_begin()
        self._note_begin()
        try:
            self.clock.sleep(self.delay_s)
            return resolve_method(resolve, target, op)(*args, **kwargs)
        finally:
            self._note_end()
            stats.note_end()
