"""SocketTransport: the ``call(...)`` contract over real TCP.

Drop-in replacement for :class:`~repro.net.transport.LoopbackTransport`
when nodes live in other processes: the client-side API is identical
(``call(source, target, op, resolve, args, kwargs)``), but delivery is
a framed request/response exchange with a server loop
(:mod:`repro.net.server`). The ``resolve`` argument is ignored — over
a wire there is no live object to resolve; the node *name* is the
address (see :meth:`set_address`).

Reliability model, mirroring what :class:`FaultyTransport` simulates:

- **wall-clock deadlines** — every call gets ``timeout`` seconds of
  monotonic wall time (:class:`~repro.net.clock.MonotonicClock`)
  covering dialing, sending, and the response; overrunning raises
  :class:`~repro.errors.RpcTimeout`, the same ambiguous signal a
  dropped response produces under fault injection.
- **request ids** — every request carries a fresh id and the server
  echoes it. A connection that timed out is *closed*, never reused, so
  a late response can never be mistaken for the answer to a newer
  request; the id check is defense in depth. Exactly-once effects
  remain the client protocol's job (``maybe_mine``, write-once,
  sealing), exactly as under loopback — the transport only guarantees
  it never misattributes a response.
- **connection pooling + reconnect with backoff** — completed calls
  park their connection (bounded per target); dial failures retry on
  the standard exponential backoff schedule until the deadline. A
  refused connection means no listener: after two quick refusals the
  transport raises :class:`~repro.errors.NodeDownError` (a crashed
  process is *down*, not slow — this is what makes SIGKILL failover
  fast), tunable via ``refused_as_down``.
- **send-side retry safety** — a send failure on a *pooled* connection
  (stale socket the server closed) retries once on a fresh dial: the
  request provably never executed. After a successful send nothing is
  ever retransmitted by the transport; ambiguity is surfaced as
  ``RpcTimeout`` for the client protocol to resolve.

Concurrency: the address map and connection pool have their own locks;
all socket I/O, dialing, and closing happen *outside* them. Request
ids come from a counter under its own lock. Per-endpoint stats share
:class:`~repro.net.transport.EndpointStats` with every other transport,
so ``net_stats()`` dashboards read identically against a wire.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import NodeDownError, RpcTimeout
from repro.net.clock import Clock, MonotonicClock
from repro.net.transport import Transport
from repro.net.wire import (
    decode_error,
    decode_value,
    encode_value,
    recv_frame,
    send_frame,
)

#: Floor on per-socket-operation timeouts, so a nearly-expired deadline
#: still makes one attempt instead of passing 0 (= non-blocking).
_MIN_IO_TIMEOUT = 0.01


class SocketTransport(Transport):
    """Deliver RPCs to named nodes over TCP with framed JSON messages."""

    def __init__(
        self,
        addresses: Optional[Dict[str, Tuple[str, int]]] = None,
        timeout: float = 2.0,
        clock: Optional[Clock] = None,
        refused_as_down: bool = True,
        pool_size: int = 2,
    ) -> None:
        super().__init__(clock=clock if clock is not None else MonotonicClock())
        self.timeout = timeout
        self.refused_as_down = refused_as_down
        self.pool_size = max(1, pool_size)
        self._addresses: Dict[str, Tuple[str, int]] = dict(addresses or {})
        self._addr_lock = threading.Lock()
        self._pools: Dict[str, List[socket.socket]] = {}
        self._pool_lock = threading.Lock()
        self._pool_closed = False
        self._next_id = 0
        self._id_lock = threading.Lock()

    # -- addressing ----------------------------------------------------------

    def set_address(self, name: str, host: str, port: int) -> None:
        """Map node *name* to ``host:port`` (replaces any prior mapping)."""
        with self._addr_lock:
            self._addresses[name] = (host, port)

    def addresses(self) -> Dict[str, Tuple[str, int]]:
        """Snapshot of the name → address map."""
        with self._addr_lock:
            return dict(self._addresses)

    def _address_of(self, target: str) -> Tuple[str, int]:
        with self._addr_lock:
            addr = self._addresses.get(target)
        if addr is None:
            # An unmapped node cannot be dialed: indistinguishable from
            # a node that was never deployed.
            raise NodeDownError(target)
        return addr

    # -- delivery ------------------------------------------------------------

    def call(
        self,
        source: str,
        target: str,
        op: str,
        resolve: Callable[[], object],
        args: tuple,
        kwargs: dict,
    ):
        addr = self._address_of(target)
        stats = self.stats_for(target)
        deadline = self.clock.now() + self.timeout
        request_id = self._fresh_id(source)
        request = {
            "id": request_id,
            "source": source,
            "target": target,
            "op": op,
            "args": encode_value(list(args)),
            "kwargs": encode_value(dict(kwargs)),
        }

        conn, pooled = self._checkout(target)
        if conn is None:
            conn = self._dial(target, addr, deadline, op)
            pooled = False
        try:
            send_frame(self._armed(conn, deadline), request)
        except (OSError, ValueError):
            self._discard(conn)
            if not pooled:
                stats.note_timeout()
                raise RpcTimeout(target, op) from None
            # A parked connection the server has since closed: the
            # request never left, so one fresh dial is retry-safe.
            conn = self._dial(target, addr, deadline, op)
            try:
                send_frame(self._armed(conn, deadline), request)
            except (OSError, ValueError):
                self._discard(conn)
                stats.note_timeout()
                raise RpcTimeout(target, op) from None

        try:
            while True:
                response = recv_frame(self._armed(conn, deadline))
                if response is None:
                    raise ConnectionError("server closed the connection")
                if response.get("id") == request_id:
                    break
                # A frame for some other request id: stale leftovers on
                # a connection we should not trust. Keep reading until
                # our id or the deadline.
        except socket.timeout:
            # Deadline expired with the peer still connected: slow node
            # or lost response. Close the socket (any late response
            # dies with it) and let the client protocol resolve the
            # ambiguity.
            self._discard(conn)
            stats.note_timeout()
            raise RpcTimeout(target, op) from None
        except (OSError, ValueError):
            # The connection *died* (EOF/reset) rather than timing out:
            # probe liveness with a fresh dial so a crashed process
            # surfaces as NodeDownError now instead of after a streak
            # of timeouts. A successful probe is parked for reuse and
            # the original ambiguity still reads as a timeout.
            self._discard(conn)
            try:
                probe = self._dial(target, addr, deadline, op)
            except NodeDownError:
                raise NodeDownError(target) from None
            self._checkin(target, probe)
            stats.note_timeout()
            raise RpcTimeout(target, op) from None

        self._checkin(target, conn)
        stats.note_delivery(op, args)
        err = response.get("err")
        if err is not None:
            raise decode_error(err)
        return decode_value(response.get("ok"))

    # -- connection management ----------------------------------------------

    def _fresh_id(self, source: str) -> str:
        with self._id_lock:
            self._next_id += 1
            seq = self._next_id
        return f"{source}#{seq}"

    def _armed(self, conn: socket.socket, deadline: float) -> socket.socket:
        """Set the socket timeout to the remaining deadline budget."""
        remaining = deadline - self.clock.now()
        if remaining <= 0:
            raise socket.timeout("rpc deadline exhausted")
        conn.settimeout(max(_MIN_IO_TIMEOUT, remaining))
        return conn

    def _dial(
        self,
        target: str,
        addr: Tuple[str, int],
        deadline: float,
        op: str,
    ) -> socket.socket:
        refused = 0
        attempt = 0
        while True:
            budget = deadline - self.clock.now()
            if budget <= 0:
                self.stats_for(target).note_timeout()
                raise RpcTimeout(target, op)
            try:
                conn = socket.create_connection(
                    addr, timeout=max(_MIN_IO_TIMEOUT, budget)
                )
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return conn
            except ConnectionRefusedError:
                refused += 1
                if self.refused_as_down and refused >= 2:
                    raise NodeDownError(target) from None
            except OSError:
                pass
            self.clock.backoff(attempt)
            attempt += 1

    def _checkout(
        self, target: str
    ) -> Tuple[Optional[socket.socket], bool]:
        with self._pool_lock:
            pool = self._pools.get(target)
            if pool:
                return pool.pop(), True
        return None, False

    def _checkin(self, target: str, conn: socket.socket) -> None:
        with self._pool_lock:
            if not self._pool_closed:
                pool = self._pools.setdefault(target, [])
                if len(pool) < self.pool_size:
                    pool.append(conn)
                    return
        self._discard(conn)

    def _discard(self, conn: socket.socket) -> None:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def close(self) -> None:
        """Close every pooled connection (later calls dial fresh sockets)."""
        with self._pool_lock:
            self._pool_closed = True
            conns = [c for pool in self._pools.values() for c in pool]
            self._pools.clear()
        for conn in conns:
            self._discard(conn)

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
