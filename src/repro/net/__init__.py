"""repro.net: the transport boundary between clients and cluster nodes.

The paper's client owns *all* retry logic (§2.2: append races, sealed
epochs, dead nodes), which only matters if there is a real message
boundary for things to go wrong on. This package provides that
boundary: every client↔node interaction (sequencer increment / query /
seal, storage read / write / trim / seal via chain replication) is an
RPC mediated by a :class:`Transport`.

Three transports ship:

- :class:`LoopbackTransport` (the default) delivers every RPC as a
  direct in-process method call — today's semantics, with per-endpoint
  counters but no faults. :class:`LatencyTransport` layers a fixed
  wall-time delay per call on top of it, so benchmarks can observe the
  pipelined write path overlapping round trips.
- :class:`FaultyTransport` is a seedable fault injector: latency,
  request/response drops (surfacing as :class:`~repro.errors.RpcTimeout`),
  duplicate delivery, reordering via delayed delivery, and node-pair
  partitions. It is what the network-chaos tests drive.
- :class:`SocketTransport` speaks length-prefixed JSON frames over TCP
  to :mod:`repro.net.server` processes — the real-wire deployment
  driven by :mod:`repro.proc`. Wire format lives in
  :mod:`repro.net.wire`.

Every transport owns a :class:`Clock` (:mod:`repro.net.clock`):
logical ticks for the deterministic in-process transports, monotonic
wall time for sockets.
"""

from repro.net.clock import Clock, LogicalClock, MonotonicClock
from repro.net.transport import (
    EndpointStats,
    LatencyTransport,
    LoopbackTransport,
    RpcProxy,
    Transport,
)
from repro.net.faulty import FaultyTransport
from repro.net.socket import SocketTransport

__all__ = [
    "Clock",
    "EndpointStats",
    "FaultyTransport",
    "LatencyTransport",
    "LogicalClock",
    "LoopbackTransport",
    "MonotonicClock",
    "RpcProxy",
    "SocketTransport",
    "Transport",
]
