"""Pluggable time sources for transports.

The retry/failure-detector path (``CorfuClient._handle_timeout``,
``Transport.backoff``) was written against :class:`FaultyTransport`'s
*logical* clock: "time" advanced one tick per delivery attempt, and
"backing off" meant letting deferred traffic land. A socket transport
needs the opposite — deadlines measured in monotonic wall time and
backoff that actually sleeps — while the sim/chaos suites must keep
their deterministic schedule. The transport therefore owns a
:class:`Clock` and never touches ``time`` directly:

- :class:`LogicalClock` counts ticks. ``sleep`` advances one tick no
  matter the requested duration, so seeded fault schedules stay
  reproducible run to run.
- :class:`MonotonicClock` reads ``time.monotonic`` and really sleeps.
  It is the only place in the library that reads a wall clock, and it
  is never on a replay path (transports deliver RPCs; they do not
  apply log entries).

``backoff_delay`` is the shared retry schedule: deterministic
exponential growth, capped so a 32-attempt retry budget cannot stall a
client for more than a few seconds against a dead deployment.
"""

from __future__ import annotations

import threading
import time


def backoff_delay(attempt: int, base: float = 0.005, cap: float = 0.25) -> float:
    """Deterministic exponential backoff: ``min(cap, base * 2**attempt)``."""
    if attempt < 0:
        return 0.0
    return min(cap, base * (2 ** min(attempt, 16)))


class Clock:
    """Time-source interface consumed by transports."""

    def now(self) -> float:
        """Current time (seconds for wall clocks, ticks for logical ones)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Pause the caller for *seconds* (logical clocks just tick)."""
        raise NotImplementedError

    def backoff(self, attempt: int) -> None:
        """Pause for the standard retry-backoff schedule."""
        self.sleep(backoff_delay(attempt))


class LogicalClock(Clock):
    """A deterministic tick counter: the sim/chaos notion of time.

    One instance is shared by a transport and everything it defers;
    ticks advance only when the transport says so (one per delivery
    attempt or backoff), which is what makes seeded fault schedules
    reproducible.
    """

    def __init__(self) -> None:
        self._ticks = 0
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return float(self._ticks)

    def advance(self, ticks: int = 1) -> int:
        """Move logical time forward; returns the new tick count."""
        with self._lock:
            self._ticks += ticks
            return self._ticks

    def sleep(self, seconds: float) -> None:
        # Duration is meaningless in tick-time; sleeping is one tick.
        self.advance()


class MonotonicClock(Clock):
    """Monotonic wall time: what socket deadlines and real backoff use."""

    def now(self) -> float:
        # Transport deadlines are I/O bookkeeping, never replayed state.
        return time.monotonic()  # tangolint: disable=TL003

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)
