"""A seedable fault-injecting transport.

Models the failure modes of a real RPC fabric over the in-process
deployment, deterministically (one ``random.Random(seed)`` drives every
draw, and "time" is a logical clock that ticks once per delivery
attempt, so a given seed and call sequence always produces the same
fault schedule):

- **request drop** — the call never reaches the node; the caller gets
  :class:`~repro.errors.RpcTimeout` and the server state is untouched.
- **response drop** — the node *executes* the call but the reply is
  lost; the caller gets ``RpcTimeout`` and must reason about the
  ambiguity (this is what burns sequencer offsets and duplicates chain
  writes).
- **duplicate delivery** — at-least-once delivery executes the call a
  second time; the second outcome is discarded (its errors included),
  exactly like a retransmitted datagram hitting an idempotence check.
- **reordering** — the request is delayed past the caller's timeout and
  delivered on a later tick, potentially *after* younger requests; a
  stale-epoch delayed delivery is rejected by the seal check, which is
  precisely why the seal exists.
- **partitions** — a named endpoint pair (client↔node, or node↔node)
  is unreachable until healed; every call times out immediately.

Latency is simulated, not slept: each delivery accrues a sampled
delay onto :attr:`FaultyTransport.simulated_latency_ms` so tests and
the performance model can read it without slowing the suite down.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ReproError, RpcTimeout
from repro.net.clock import LogicalClock
from repro.net.transport import Transport, resolve_method

#: Rate knobs accepted by ``__init__`` and ``set_rates``.
_RATE_KNOBS = ("drop_request", "drop_response", "duplicate", "reorder")


class FaultyTransport(Transport):
    """Deterministic, seedable network fault injection.

    Args:
        seed: seeds the single RNG behind every fault draw.
        drop_request: probability a request is lost before delivery.
        drop_response: probability a response is lost after execution.
        duplicate: probability a delivered call is executed twice.
        reorder: probability a request is deferred to a later tick.
        max_delay: maximum deferral, in logical-clock ticks.
        latency_ms: upper bound of the simulated per-call latency sample.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_request: float = 0.0,
        drop_response: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        max_delay: int = 6,
        latency_ms: float = 0.0,
    ) -> None:
        # Fault schedules are phrased in logical ticks; the transport's
        # clock IS that tick counter (see repro.net.clock).
        super().__init__(clock=LogicalClock())
        self._rng = random.Random(seed)
        self.drop_request = drop_request
        self.drop_response = drop_response
        self.duplicate = duplicate
        self.reorder = reorder
        self.max_delay = max(1, max_delay)
        self.latency_ms = latency_ms
        self.simulated_latency_ms = 0.0
        self.backoffs = 0
        self._defer_seq = 0
        # (due_tick, sequence, target, thunk): delayed in-flight requests.
        self._deferred: List[Tuple[int, int, str, Callable[[], None]]] = []
        self._partitions: Set[FrozenSet[str]] = set()
        self._lock = threading.RLock()

    # -- fault configuration -------------------------------------------------

    def set_rates(self, **rates: float) -> None:
        """Adjust fault probabilities mid-run (unknown knobs rejected)."""
        for name, value in rates.items():
            if name not in _RATE_KNOBS:
                raise ValueError(f"unknown fault knob {name!r}")
            setattr(self, name, value)

    def partition(self, a: str, b: str) -> None:
        """Make the endpoint pair *a*↔*b* unreachable until healed."""
        with self._lock:
            self._partitions.add(frozenset((a, b)))

    def heal(self, a: Optional[str] = None, b: Optional[str] = None) -> None:
        """Heal one partition (both names given) or every partition."""
        with self._lock:
            if a is None and b is None:
                self._partitions.clear()
            elif a is not None and b is not None:
                self._partitions.discard(frozenset((a, b)))
            else:
                raise ValueError("heal() takes both endpoints or neither")

    def partitioned(self, a: str, b: str) -> bool:
        with self._lock:
            return frozenset((a, b)) in self._partitions

    @property
    def partitions(self) -> Tuple[FrozenSet[str], ...]:
        with self._lock:
            return tuple(sorted(self._partitions, key=sorted))

    def calm(self) -> None:
        """Disable every fault: zero rates, heal partitions, flush delays.

        Tests call this before final-state verification so the checks
        themselves run over a quiet network.
        """
        with self._lock:
            for knob in _RATE_KNOBS:
                setattr(self, knob, 0.0)
            self._partitions.clear()
            self._flush_deferred_locked(everything=True)

    def deliver_delayed(self) -> int:
        """Deliver every deferred request now; returns how many."""
        with self._lock:
            return self._flush_deferred_locked(everything=True)

    # -- delivery ------------------------------------------------------------

    def call(
        self,
        source: str,
        target: str,
        op: str,
        resolve: Callable[[], object],
        args: tuple,
        kwargs: dict,
    ):
        # Request-side faults are drawn under the lock (one RNG, one
        # deterministic schedule); the server execution itself happens
        # OUTSIDE it, so concurrent callers — the pipelined chain-write
        # stages — genuinely overlap their in-flight deliveries, exactly
        # as on a real fabric. Per-call draw order is unchanged
        # (request faults before execution, response faults after), so
        # single-threaded seeded fault schedules are identical.
        with self._lock:
            self.clock.advance()
            self._flush_deferred_locked()
            stats = self.stats_for(target)
            if self.latency_ms:
                self.simulated_latency_ms += self._rng.uniform(0, self.latency_ms)
            if frozenset((source, target)) in self._partitions:
                stats.note_timeout()
                raise RpcTimeout(target, op)
            if self.drop_request and self._rng.random() < self.drop_request:
                stats.note_drop()
                stats.note_timeout()
                raise RpcTimeout(target, op)
            if self.reorder and self._rng.random() < self.reorder:
                self._defer_locked(target, op, resolve, args, kwargs)
                stats.note_timeout()
                raise RpcTimeout(target, op)
            stats.note_delivery(op, args)
        stats.note_begin()
        self._note_begin()
        try:
            result = resolve_method(resolve, target, op)(*args, **kwargs)
        finally:
            self._note_end()
            stats.note_end()
        with self._lock:
            # Post-execution faults apply only to calls the server
            # completed: a duplicate of a rejected request is a no-op,
            # and there is no response to lose.
            if self.duplicate and self._rng.random() < self.duplicate:
                stats.note_duplicate()
                stats.note_delivery(op, args)
                try:
                    resolve_method(resolve, target, op)(*args, **kwargs)
                except ReproError:
                    # The retransmission bounced off an idempotence
                    # check (WrittenError, SealedError, ...) — exactly
                    # what those checks are for. The original response
                    # is the one the caller sees.
                    pass
            if self.drop_response and self._rng.random() < self.drop_response:
                stats.note_drop()
                stats.note_timeout()
                raise RpcTimeout(target, op)
        return result

    def backoff(self, source: str, attempt: int) -> None:
        """Retry backoff: advance logical time so delayed traffic lands."""
        with self._lock:
            self.backoffs += 1
            self.clock.advance()
            self._flush_deferred_locked()

    # -- deferred (reordered) traffic ---------------------------------------

    def _defer_locked(
        self,
        target: str,
        op: str,
        resolve: Callable[[], object],
        args: tuple,
        kwargs: dict,
    ) -> None:
        due = int(self.clock.now()) + self._rng.randint(1, self.max_delay)
        self._defer_seq += 1
        self.stats_for(target).note_reordered()

        def deliver() -> None:
            self.stats_for(target).note_delivery(op, args)
            try:
                resolve_method(resolve, target, op)(*args, **kwargs)
            except ReproError:
                # Late delivery bounced (sealed epoch, already-written
                # offset, node down). Nobody is waiting for the answer.
                return

        self._deferred.append((due, self._defer_seq, target, deliver))

    def _flush_deferred_locked(self, everything: bool = False) -> int:
        if not self._deferred:
            return 0
        now = int(self.clock.now())
        ready = [
            item
            for item in self._deferred
            if everything or item[0] <= now
        ]
        if not ready:
            return 0
        self._deferred = [i for i in self._deferred if i not in ready]
        for _due, _seq, _target, deliver in sorted(ready, key=lambda i: (i[0], i[1])):
            deliver()
        return len(ready)
