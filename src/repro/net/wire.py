"""Wire format: value codec, error envelope, frames, op registries.

Everything a socket transport puts on a TCP stream is defined here so
loopback and wire deployments stay behaviorally identical:

- **Value codec** (:func:`encode_value` / :func:`decode_value`): JSON
  with explicit tags for the Python shapes JSON cannot express but the
  RPC surface uses — ``bytes`` (pages, payloads), ``tuple`` (sequencer
  grants, backpointer vectors), non-string-keyed dicts (per-offset and
  per-stream maps), and embedded exception instances. Round-tripping
  preserves types exactly: ``decode_value(encode_value(x)) == x`` with
  matching types, which the regression suite asserts for every op in
  the RPC registry.
- **Error envelope** (:func:`encode_error` / :func:`decode_error`):
  ``{"code", "message", "params"}`` where *code* names the exception
  class. Known library errors are reconstructed with their typed
  attributes (``SealedError.epoch``, ``UnwrittenError.offset``, ...) so
  client retry logic is transport-agnostic; unknown codes surface as
  :class:`~repro.errors.RemoteCallError`.
- **Frames** (:func:`send_frame` / :func:`recv_frame`): a little-endian
  u32 length prefix (via :mod:`repro.util.encoding`, the same helpers
  log entries use) followed by that many bytes of compact JSON.
- **Op registries**: the canonical sets of method names each node kind
  serves. tangolint's TL009 rule derives its RPC surface from these,
  so adding an op here automatically extends the lint contract.

No pickle anywhere (TL007): a malicious or corrupt peer can produce at
worst a ``ValueError``, never code execution.
"""

from __future__ import annotations

import base64
import builtins
import json
import socket
from typing import Any, Dict, Optional, Tuple

from repro import errors as _errors
from repro.errors import RemoteCallError
from repro.util.encoding import pack_u32, unpack_u32

#: Hard upper bound on a single frame (64 MiB). A length prefix past
#: this is treated as stream corruption, not an allocation request.
MAX_FRAME_BYTES = 1 << 26

# -- op registries -----------------------------------------------------------

#: RPC methods a storage node (FlashUnit) serves.
STORAGE_OPS = frozenset(
    {
        "write",
        "read",
        "read_many",
        "is_written",
        "trim",
        "trim_prefix",
        "seal",
        "local_tail",
        "written_addresses",
        # Storage-admin plane: segment/compaction introspection and a
        # manual compaction trigger (no-ops on in-memory units).
        "store_status",
        "compact",
    }
)

#: RPC methods a sequencer serves. ``reserve_group``/``commit_group``
#: are the two phases of a cross-shard vector grant; every op is served
#: by a classic single sequencer and by each shard of a group alike.
SEQUENCER_OPS = frozenset(
    {
        "increment",
        "query",
        "seal",
        "bootstrap",
        "reserve_group",
        "commit_group",
    }
)

#: Supervision-plane methods every hosted node answers.
ADMIN_OPS = frozenset({"ping", "shutdown"})

#: The full wire-callable surface.
RPC_OPS = STORAGE_OPS | SEQUENCER_OPS | ADMIN_OPS


# -- value codec -------------------------------------------------------------

_TAG_BYTES = "__bytes__"
_TAG_TUPLE = "__tuple__"
_TAG_MAP = "__map__"
_TAG_ERROR = "__error__"
_TAGS = frozenset({_TAG_BYTES, _TAG_TUPLE, _TAG_MAP, _TAG_ERROR})


def encode_value(value: Any) -> Any:
    """Lower a Python RPC value to a JSON-safe shape, preserving types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        return {_TAG_BYTES: base64.b64encode(raw).decode("ascii")}
    if isinstance(value, tuple):
        return {_TAG_TUPLE: [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and not (
            _TAGS & value.keys()
        ):
            return {k: encode_value(v) for k, v in value.items()}
        # Non-string keys (offset->page maps, stream-id->backpointer
        # maps) ride as ordered [key, value] pairs.
        return {
            _TAG_MAP: [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ]
        }
    if isinstance(value, BaseException):
        return {_TAG_ERROR: encode_error(value)}
    raise TypeError(
        f"value of type {type(value).__name__} is not wire-encodable; "
        f"RPC payloads are limited to JSON scalars, bytes, tuples, "
        f"lists, dicts, and library errors"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if len(value) == 1:
            ((tag, body),) = value.items()
            if tag == _TAG_BYTES:
                return base64.b64decode(body)
            if tag == _TAG_TUPLE:
                return tuple(decode_value(v) for v in body)
            if tag == _TAG_MAP:
                return {decode_value(k): decode_value(v) for k, v in body}
            if tag == _TAG_ERROR:
                return decode_error(body)
        return {k: decode_value(v) for k, v in value.items()}
    return value


# -- error envelope ----------------------------------------------------------

#: Constructor signatures of the typed library errors, by class name.
#: Each entry lists the attribute names whose values are both the
#: positional constructor args and the instance attributes — so an
#: envelope can be built from a live error and replayed into an equal
#: one on the far side.
_ERROR_PARAMS: Dict[str, Tuple[str, ...]] = {
    "WrittenError": ("offset",),
    "UnwrittenError": ("offset",),
    "TrimmedError": ("offset",),
    "SealedError": ("epoch",),
    "WrongEpochError": ("expected", "got"),
    "StaleGrantError": ("offset",),
    "NodeDownError": ("node",),
    "RpcTimeout": ("node", "op"),
    "RetriesExhaustedError": ("op", "attempts", "last"),
    "TooManyStreamsError": ("requested", "limit"),
    "UnknownStreamError": ("stream_id",),
    "TransactionAborted": ("reason", "commit_offset"),
    "RemoteReadError": ("oid",),
}

#: Builtin exceptions a server may legitimately raise at the RPC
#: boundary (bad arguments, contract violations). Reconstructed with
#: their message only.
_BUILTIN_ERRORS = frozenset(
    {
        "ValueError",
        "TypeError",
        "KeyError",
        "AssertionError",
        "NotImplementedError",
    }
)


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """Build the ``{code, message, params?}`` envelope for *exc*."""
    code = type(exc).__name__
    envelope: Dict[str, Any] = {"code": code, "message": str(exc)}
    params = _ERROR_PARAMS.get(code)
    if params is not None and all(hasattr(exc, p) for p in params):
        envelope["params"] = {p: encode_value(getattr(exc, p)) for p in params}
    return envelope


def decode_error(envelope: Dict[str, Any]) -> BaseException:
    """Reconstruct the typed exception an envelope describes.

    Returns the exception instance (callers raise it); unknown codes
    become :class:`~repro.errors.RemoteCallError`.
    """
    code = envelope.get("code", "UnknownError")
    message = envelope.get("message", "")
    params = envelope.get("params")
    ctor_args = _ERROR_PARAMS.get(code)
    if ctor_args is not None and isinstance(params, dict):
        cls = getattr(_errors, code, None)
        if cls is not None:
            try:
                return cls(*(decode_value(params[p]) for p in ctor_args))
            except (KeyError, TypeError):
                return RemoteCallError(code, message)
    cls = getattr(_errors, code, None)
    if cls is not None and ctor_args is None:
        try:
            return cls(message)
        except TypeError:
            return RemoteCallError(code, message)
    if code in _BUILTIN_ERRORS:
        return getattr(builtins, code)(message)
    return RemoteCallError(code, message)


# -- frames ------------------------------------------------------------------


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one message: u32 length prefix + compact JSON body."""
    body = json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    buf = bytearray()
    pack_u32(buf, len(body))
    buf += body
    return bytes(buf)


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Write one framed message to *sock*."""
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly *n* bytes; None on EOF before the first byte."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if got == 0:
                return None
            raise ConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one framed message; None on clean EOF at a frame boundary.

    Raises ``ConnectionError`` on mid-frame EOF and ``ValueError`` on a
    corrupt length prefix or non-object body.
    """
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    length, _ = unpack_u32(header, 0)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ConnectionError("connection closed between header and body")
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("frame body must be a JSON object")
    return payload
