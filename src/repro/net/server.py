"""TCP server loop hosting a node behind the ``call(...)`` contract.

A :class:`NodeServer` owns one listening socket and a registry of named
node objects (a :class:`~repro.corfu.storage.FlashUnit`, a
:class:`~repro.corfu.sequencer.Sequencer`, or any object with public
callables for tests). Each accepted connection gets a dedicated thread
that reads request frames and writes response frames; requests address
a node by name, so one server process can host several nodes (a whole
replica set in one process for tests, one node per process in a real
deployment under :mod:`repro.proc`).

Request/response protocol (see :mod:`repro.net.wire` for the frame
layout):

- request: ``{"id", "source", "target", "op", "args", "kwargs"}``
- response: ``{"id", "ok": value}`` or ``{"id", "err": envelope}``

Every response echoes the request ``id``; the client uses it to discard
stale responses after a timeout, which is what makes retries exactly
once when they land on an idempotence check rather than a fresh
execution.

Ops are allow-listed per node kind (:data:`~repro.net.wire.STORAGE_OPS`
/ :data:`~repro.net.wire.SEQUENCER_OPS` plus
:data:`~repro.net.wire.ADMIN_OPS`): the wire surface is the RPC
surface, never arbitrary attribute access — the same contract
:class:`~repro.net.transport.RpcProxy` enforces in-process.

Concurrency: the registry is written before :meth:`start` and read-only
afterwards. ``_conn_lock`` guards only the set of open connection
sockets (add/remove/snapshot); sockets are closed *outside* the lock.
Node objects do their own locking — the server calls them exactly like
a loopback transport would.

Run directly to host one node::

    python -m repro.net.server --name flash-0-0 --kind storage --port 0

prints ``READY <name> <host> <port>`` on stdout once serving (port 0
lets the OS pick; the supervisor parses the READY line), and exits
cleanly on SIGTERM/SIGINT or a ``shutdown`` RPC.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import NodeDownError
from repro.net.wire import (
    ADMIN_OPS,
    SEQUENCER_OPS,
    STORAGE_OPS,
    decode_value,
    encode_error,
    encode_value,
    recv_frame,
    send_frame,
)


def _public_callables(obj: object) -> FrozenSet[str]:
    """Fallback allowlist for test doubles: every public method."""
    return frozenset(
        name
        for name in dir(obj)
        if not name.startswith("_") and callable(getattr(obj, name))
    )


def infer_ops(obj: object) -> FrozenSet[str]:
    """The op allowlist for *obj*, by node kind."""
    # Imported here so repro.net stays importable without repro.corfu
    # (and vice versa) — only the server loop knows about node kinds.
    from repro.corfu.sequencer import Sequencer
    from repro.corfu.storage import FlashUnit

    if isinstance(obj, FlashUnit):
        return STORAGE_OPS
    if isinstance(obj, Sequencer):
        return SEQUENCER_OPS
    return _public_callables(obj)


class NodeServer:
    """Host registered node objects on one TCP listening socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._registry: Dict[str, Tuple[object, FrozenSet[str]]] = {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conns: set = set()
        # Guards _conns and _conn_threads membership only; socket I/O
        # and close() always happen outside it.
        self._conn_lock = threading.Lock()
        self._stopped = threading.Event()

    # -- registry (write before start(); read-only while serving) -----------

    def register(
        self, name: str, obj: object, ops: Optional[FrozenSet[str]] = None
    ) -> None:
        """Serve *obj* as node *name*; *ops* defaults to its kind's set."""
        allowed = (ops if ops is not None else infer_ops(obj)) | ADMIN_OPS
        self._registry[name] = (obj, allowed)

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._registry))

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "NodeServer":
        """Begin accepting connections on a daemon thread."""
        if self._accept_thread is not None:
            raise RuntimeError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-server-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` is called; True once stopped."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop accepting, close every connection, join worker threads."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        # shutdown() before close(): a close alone does not wake a
        # thread blocked inside accept() — the in-flight syscall keeps
        # the kernel listener alive, silently accepting connections to
        # a "stopped" server. Shutdown aborts the accept immediately
        # and refuses new SYNs.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        with self._conn_lock:
            conns = list(self._conns)
            threads = list(self._conn_threads)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        me = threading.current_thread()
        if self._accept_thread is not None and self._accept_thread is not me:
            self._accept_thread.join(timeout=2.0)
        for thread in threads:
            if thread is not me:
                thread.join(timeout=2.0)

    def __enter__(self) -> "NodeServer":
        return self.start() if self._accept_thread is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- serving -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"repro-conn-{self.port}",
                daemon=True,
            )
            with self._conn_lock:
                stopping = self._stopped.is_set()
                if not stopping:
                    self._conns.add(conn)
                    self._conn_threads.append(thread)
            if stopping:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                return
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopped.is_set():
                try:
                    request = recv_frame(conn)
                except (OSError, ValueError):
                    return  # peer went away or sent garbage: drop the conn
                if request is None:
                    return  # clean EOF
                response = self._respond(request)
                try:
                    send_frame(conn, response)
                except (OSError, ValueError):
                    return
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # Dispatch lives outside any loop body on purpose: the RPC boundary
    # catches *everything* a node raises and ships it as a typed error
    # envelope — the client, not the server, decides what is fatal.
    def _respond(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rid = request.get("id")
        target = request.get("target", "")
        op = request.get("op", "")
        entry = self._registry.get(target)
        if entry is None:
            return {"id": rid, "err": encode_error(NodeDownError(target))}
        obj, allowed = entry
        if op not in allowed:
            return {
                "id": rid,
                "err": encode_error(
                    ValueError(f"op {op!r} is not served by node {target!r}")
                ),
            }
        if op == "ping":
            return {
                "id": rid,
                "ok": encode_value(
                    {
                        "name": target,
                        "kind": type(obj).__name__,
                        "pid": os.getpid(),
                    }
                ),
            }
        if op == "shutdown":
            # Reply first, then stop from a fresh thread so this
            # connection's response reaches the wire.
            threading.Timer(0.05, self.stop).start()
            return {"id": rid, "ok": encode_value(True)}
        try:
            args = decode_value(request.get("args", []))
            kwargs = decode_value(request.get("kwargs", {}))
            method = getattr(obj, op, None)
            if not callable(method):
                raise TypeError(
                    f"op {op!r} on node {target!r} is not callable"
                )
            result = method(*args, **kwargs)
            return {"id": rid, "ok": encode_value(result)}
        except Exception as exc:
            return {"id": rid, "err": encode_error(exc)}


def _build_node(
    kind: str,
    name: str,
    k: int,
    data_dir: Optional[str] = None,
    segment_bytes: Optional[int] = None,
    compact_interval: float = 0.0,
    shard_index: int = 0,
    num_shards: int = 1,
):
    from repro.corfu.sequencer import Sequencer
    from repro.corfu.storage import FlashUnit

    if kind == "storage":
        if data_dir is None:
            return FlashUnit(name)
        from repro.store import DEFAULT_SEGMENT_BYTES, SegmentedFlashUnit

        unit = SegmentedFlashUnit(
            name,
            os.path.join(data_dir, f"{name}.store"),
            segment_bytes=segment_bytes or DEFAULT_SEGMENT_BYTES,
            migrate_flat=os.path.join(data_dir, f"{name}.flash"),
        )
        if compact_interval > 0:
            unit.start_compaction(compact_interval)
        return unit
    if kind == "sequencer":
        return Sequencer(
            name, k=k, shard_index=shard_index, num_shards=num_shards
        )
    raise ValueError(f"unknown node kind {kind!r}")


def register_sequencer_group(server: "NodeServer", group) -> None:
    """Serve every shard of a :class:`~repro.corfu.sequencer.ShardedSequencer`.

    One server can host the whole group (each shard addressable by its
    own node name) for tests and small deployments; production-style
    deployments host one shard per process via ``--shard-index``.
    """
    for shard in group:
        server.register(shard.name, shard)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Host one CORFU node (storage or sequencer) over TCP.",
    )
    parser.add_argument("--name", required=True, help="node name")
    parser.add_argument(
        "--kind", required=True, choices=("storage", "sequencer")
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 lets the OS pick"
    )
    parser.add_argument(
        "--k", type=int, default=4, help="sequencer backpointers per stream"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="host a whole sharded sequencer group (--name is the group "
        "label; shards are served as <name>.0 .. <name>.N-1)",
    )
    parser.add_argument(
        "--shard-index",
        type=int,
        default=0,
        help="host one striped shard: its index within --num-shards",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=1,
        help="shard-group size when hosting one shard via --shard-index",
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help="persist a storage node to segmented durable storage under "
        "this directory (a legacy <name>.flash file there is migrated)",
    )
    parser.add_argument(
        "--segment-bytes",
        type=int,
        default=None,
        help="segment roll size for --data-dir storage",
    )
    parser.add_argument(
        "--compact-interval",
        type=float,
        default=0.0,
        help="seconds between background compaction sweeps for "
        "--data-dir storage (0 disables; the 'compact' RPC always works)",
    )
    args = parser.parse_args(argv)

    monitor = None
    if os.environ.get("REPRO_LOCKCHECK") == "1":
        from repro.tools import lockcheck

        monitor = lockcheck.install()

    if args.data_dir is not None and args.kind == "storage":
        os.makedirs(args.data_dir, exist_ok=True)
    server = NodeServer(host=args.host, port=args.port)
    if args.kind == "sequencer" and args.shards > 1:
        from repro.corfu.sequencer import ShardedSequencer

        register_sequencer_group(
            server, ShardedSequencer(args.name, shards=args.shards, k=args.k)
        )
    else:
        node = _build_node(
            args.kind,
            args.name,
            args.k,
            data_dir=args.data_dir if args.kind == "storage" else None,
            segment_bytes=args.segment_bytes,
            compact_interval=args.compact_interval,
            shard_index=args.shard_index,
            num_shards=args.num_shards,
        )
        server.register(args.name, node)
    server.start()
    print(f"READY {args.name} {server.host} {server.port}", flush=True)

    def _on_signal(signum: int, frame: object) -> None:
        server.stop()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    while not server.wait(0.5):
        pass
    if monitor is not None:
        monitor.assert_acyclic()
    return 0


if __name__ == "__main__":
    sys.exit(main())
