"""Tango: distributed data structures over a shared log (SOSP 2013).

A complete Python reproduction: the CORFU shared log substrate, the
streaming layer, the Tango runtime (state machine replication and
transactions over the log), a library of Tango objects (including
ZooKeeper and BookKeeper clones), and a calibrated performance model
regenerating every figure in the paper's evaluation.

Quickstart::

    from repro import CorfuCluster, TangoRuntime, TangoDirectory, TangoMap

    cluster = CorfuCluster(num_sets=9, replication_factor=2)
    runtime = TangoRuntime(cluster, name="client-0")
    directory = TangoDirectory(runtime)
    users = directory.open(TangoMap, "users")
    users.put("alice", {"role": "admin"})
    print(users.get("alice"))

See ``examples/`` for multi-client scenarios, transactions across
objects, and the mini HDFS namenode.
"""

from repro.corfu import CorfuClient, CorfuCluster, Projection, ReplicaSet
from repro.errors import ReproError, TangoError, TransactionAborted
from repro.objects import (
    Ledger,
    TangoBK,
    TangoCounter,
    TangoIndexedMap,
    TangoList,
    TangoMap,
    TangoQueue,
    TangoRegister,
    TangoTreeSet,
    TangoZK,
)
from repro.streams import StreamClient
from repro.tango import TangoObject, TangoRuntime
from repro.tango.directory import TangoDirectory

__version__ = "1.0.0"

__all__ = [
    "CorfuCluster",
    "CorfuClient",
    "Projection",
    "ReplicaSet",
    "StreamClient",
    "TangoRuntime",
    "TangoObject",
    "TangoDirectory",
    "TangoRegister",
    "TangoCounter",
    "TangoMap",
    "TangoIndexedMap",
    "TangoList",
    "TangoTreeSet",
    "TangoQueue",
    "TangoZK",
    "TangoBK",
    "Ledger",
    "ReproError",
    "TangoError",
    "TransactionAborted",
    "__version__",
]
