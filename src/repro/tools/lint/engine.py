"""tangolint's engine: parsing, rule dispatch, suppression, reporting.

The paper states Tango's correctness conditions in prose — "the view
must be modified only by the Tango runtime via the apply upcall"
(section 3.1), replay must be deterministic for state machine
replication to converge, the write-once/seal discipline of CORFU's
storage protocol (section 2.2) — but Python cannot enforce any of them
at runtime without unacceptable overhead. tangolint enforces them
statically: each rule in :mod:`repro.tools.lint.rules` is an AST check
encoding one such invariant, and this module provides the machinery
they all share.

Pipeline: :func:`lint_paths` discovers files (via
:mod:`repro.tools.discovery`), parses each one once into a
:class:`ParsedModule`, dispatches every selected rule against it, drops
findings suppressed by ``# tangolint: disable=...`` comments, and
returns sorted :class:`Diagnostic` objects. :func:`render_text` and
:func:`render_json` turn them into reports.

Suppressions:

- ``# tangolint: disable=TL001,TL005`` on a line suppresses those rules
  on that line;
- ``# tangolint: disable-next-line=TL001`` suppresses them on the line
  below (for lines too long to carry a trailing comment);
- omitting the rule list (``# tangolint: disable``) suppresses every
  rule on the target line.

A suppression is a claim that a human has checked the invariant by
hand; it should always ride with a justifying comment.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import json
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.tools.discovery import iter_python_files

#: Rule id used for files the engine cannot parse at all.
PARSE_ERROR_ID = "TL000"

_SUPPRESS_RE = re.compile(
    r"#\s*tangolint:\s*disable(?P<next>-next-line)?"
    r"(?:\s*=\s*(?P<rules>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?"
)

#: Sentinel meaning "all rules suppressed on this line".
_ALL = "*"


class Severity(enum.Enum):
    """How bad a finding is. Errors fail the build; warnings inform."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule fired at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions = _collect_suppressions(self.lines)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        active = self.suppressions.get(line)
        if not active:
            return False
        return _ALL in active or rule_id in active


def _collect_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map line number (1-based) -> set of suppressed rule ids."""
    table: Dict[int, Set[str]] = {}
    for index, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        target = index + 1 if match.group("next") else index
        rules = match.group("rules")
        ids = (
            {_ALL}
            if rules is None
            else {r.strip() for r in rules.split(",")}
        )
        table.setdefault(target, set()).update(ids)
    return table


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding diagnostics. The engine handles suppression filtering.
    """

    rule_id: str = "TL999"
    title: str = ""
    severity: Severity = Severity.ERROR
    #: The section of the Tango/CORFU papers this rule encodes.
    paper_section: str = ""
    #: One-paragraph rationale, shown by ``--list-rules`` and in docs.
    rationale: str = ""

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(self, module: ParsedModule, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


class ProgramRule(Rule):
    """A rule that reasons about the whole linted program at once.

    Most rules are local: one file in, findings out. A few invariants —
    the lock-acquisition-order graph being the canonical example — only
    exist at the level of the *program*: an edge learned in one module
    can close a cycle opened in another. Subclasses implement
    :meth:`check_program`, which receives every parsed module of the
    run; the engine calls it once per invocation and routes each
    finding's suppression check to the module it landed in.

    ``check`` defaults to treating a single module as a complete
    program, so per-file entry points (``lint_file``, fixture tests)
    keep working unchanged.
    """

    def check_program(
        self, modules: Sequence["ParsedModule"]
    ) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def check(self, module: "ParsedModule") -> Iterable[Diagnostic]:
        return self.check_program((module,))


def parse_module(path: str) -> Tuple[Optional[ParsedModule], Optional[Diagnostic]]:
    """Parse *path*; returns (module, None) or (None, TL000 diagnostic)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Diagnostic(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule_id=PARSE_ERROR_ID,
            message=f"cannot parse file: {exc.msg}",
            severity=Severity.ERROR,
        )
    return ParsedModule(path, source, tree), None


def lint_file(path: str, rules: Sequence[Rule]) -> List[Diagnostic]:
    """Run *rules* over one file, honouring inline suppressions."""
    module, parse_error = parse_module(path)
    if module is None:
        return [parse_error] if parse_error is not None else []
    findings: List[Diagnostic] = []
    for rule in rules:
        for diagnostic in rule.check(module):
            if not module.is_suppressed(diagnostic.rule_id, diagnostic.line):
                findings.append(diagnostic)
    return findings


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint every Python file under *paths* with the selected rules.

    *select* restricts to the given rule ids (e.g. ``["TL001"]``);
    *rules* overrides the default registry entirely (used by tests).
    """
    if rules is None:
        from repro.tools.lint.rules import ALL_RULES

        rules = ALL_RULES
    if select is not None:
        wanted = set(select)
        rules = [r for r in rules if r.rule_id in wanted]
    file_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]
    findings: List[Diagnostic] = []
    modules: List[ParsedModule] = []
    for path in iter_python_files(paths):
        module, parse_error = parse_module(path)
        if module is None:
            if parse_error is not None:
                findings.append(parse_error)
            continue
        modules.append(module)
        for rule in file_rules:
            for diagnostic in rule.check(module):
                if not module.is_suppressed(diagnostic.rule_id, diagnostic.line):
                    findings.append(diagnostic)
    if program_rules and modules:
        by_path = {m.path: m for m in modules}
        for rule in program_rules:
            for diagnostic in rule.check_program(modules):
                module = by_path.get(diagnostic.path)
                if module is None or not module.is_suppressed(
                    diagnostic.rule_id, diagnostic.line
                ):
                    findings.append(diagnostic)
    return sorted(findings)


def render_text(findings: Sequence[Diagnostic]) -> str:
    """Human-readable report: one ``path:line:col`` line per finding."""
    if not findings:
        return "tangolint: no findings"
    lines = [d.render() for d in findings]
    errors = sum(1 for d in findings if d.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"tangolint: {len(findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Diagnostic]) -> str:
    """Machine-readable report (stable schema, for CI integration)."""
    payload = {
        "version": 1,
        "findings": [d.to_dict() for d in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(
                1 for d in findings if d.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for d in findings if d.severity is Severity.WARNING
            ),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
