"""The tangolint command line.

``python -m repro.tools.lint [--json] [--select RULES] paths...`` — or
the ``tangolint`` console script. Exits 0 when clean, 1 when any
finding survives suppression filtering, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.tools.lint.engine import lint_paths, render_json, render_text
from repro.tools.lint.rules import ALL_RULES, rules_by_id


def _default_paths() -> List[str]:
    """Lint ``src/repro`` when run from a checkout, else the cwd."""
    candidate = os.path.join("src", "repro")
    return [candidate] if os.path.isdir(candidate) else ["."]


def _parse_select(value: str) -> List[str]:
    known = rules_by_id()
    wanted = [part.strip().upper() for part in value.split(",") if part.strip()]
    unknown = [rule for rule in wanted if rule not in known]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return wanted


def _list_rules() -> str:
    lines = ["tangolint rule catalog:", ""]
    for rule in ALL_RULES:
        lines.append(
            f"  {rule.rule_id}  {rule.title}  "
            f"[{rule.severity.value}, paper {rule.paper_section}]"
        )
        lines.append(f"        {rule.rationale}")
    lines.append("")
    lines.append(
        "suppress inline with '# tangolint: disable=TL00X' "
        "(see docs/LINT.md)"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tangolint",
        description=(
            "Statically check the Tango/CORFU protocol invariants "
            "(apply-only views, deterministic replay, write-once/seal "
            "discipline) across a source tree."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro or .)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--select",
        type=_parse_select,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or _default_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    findings = lint_paths(paths, select=args.select)
    report = render_json(findings) if args.json else render_text(findings)
    print(report)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
