"""Entry point for ``python -m repro.tools.lint``."""

import sys

from repro.tools.lint.cli import main

sys.exit(main())
