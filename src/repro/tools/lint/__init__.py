"""tangolint: a protocol-conformance linter for the Tango reproduction.

The papers this repo reproduces rest on disciplines Python cannot
enforce at runtime — apply-only view mutation, deterministic replay,
the write-once/seal storage protocol. tangolint enforces them
statically with an AST rule catalog (TL001–TL013); see ``docs/LINT.md``
for the catalog and ``python -m repro.tools.lint --help`` for the CLI.

Programmatic use::

    from repro.tools.lint import lint_paths, render_text
    findings = lint_paths(["src/repro"])
    print(render_text(findings))
"""

from repro.tools.lint.engine import (
    Diagnostic,
    ParsedModule,
    Rule,
    Severity,
    lint_file,
    lint_paths,
    render_json,
    render_text,
)
from repro.tools.lint.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "ParsedModule",
    "Rule",
    "Severity",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
    "rules_by_id",
]
