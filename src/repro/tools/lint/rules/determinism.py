"""Rule TL003: no nondeterminism in replay paths.

State machine replication converges only if every client computes the
same view from the same log prefix (paper section 3.1). Any ambient
nondeterminism — wall clocks, unseeded randomness, process-unique ids,
set iteration order — inside code that runs during replay silently
breaks that guarantee: tests pass on one machine and views diverge on
another.

The rule covers every module except the benchmark harness and the
operational tools (``repro/bench``, ``repro/tools``), which legitimately
read wall clocks and are never replayed. Seeded generators
(``random.Random(seed)``) are allowed everywhere — determinism comes
from the seed, which callers inject.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from repro.tools.discovery import path_parts
from repro.tools.lint.engine import Diagnostic, ParsedModule, Rule, Severity
from repro.tools.lint.rules.common import import_aliases

#: Path components whose files are exempt (never on a replay path).
_EXEMPT_PARTS = frozenset({"bench", "tools"})

#: module -> banned attributes (None = every attribute is banned).
_BANNED: dict = {
    "time": frozenset(
        {
            "time", "time_ns", "monotonic", "monotonic_ns",
            "perf_counter", "perf_counter_ns", "clock_gettime",
        }
    ),
    "random": None,  # everything except the allowlist below
    "os": frozenset({"urandom"}),
    "uuid": frozenset({"uuid1", "uuid3", "uuid4", "uuid5", "getnode"}),
    "secrets": None,
}

#: Deterministic (seedable) constructors allowed from banned modules.
_ALLOWED_ATTRS = {"random": frozenset({"Random"})}


class NoReplayNondeterminism(Rule):
    """TL003: replay paths must be deterministic."""

    rule_id = "TL003"
    title = "no nondeterminism in replay paths"
    severity = Severity.ERROR
    paper_section = "§3.1"
    rationale = (
        "Apply upcalls, checkpoint codecs, the runtime, and the "
        "simulation engine all execute during (or feed) deterministic "
        "replay. Wall clocks, unseeded randomness, os.urandom, uuid, "
        "id(), and iteration over sets make replay "
        "machine/run-dependent, so two clients playing the same log "
        "prefix can disagree. Inject seeded random.Random instances "
        "instead, and sort sets before iterating."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        if _EXEMPT_PARTS & set(path_parts(module.path)):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                banned = self._banned_call(node, aliases)
                if banned is not None:
                    yield self.diag(
                        module,
                        node,
                        f"call to nondeterministic '{banned}' on a "
                        f"replay path; inject a seeded source instead",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.iter
                if self._is_set_expr(target, aliases):
                    yield self.diag(
                        module,
                        target,
                        "iteration over a set on a replay path depends "
                        "on hash order; wrap it in sorted(...)",
                    )

    def _banned_call(
        self, node: ast.Call, aliases: dict
    ) -> Optional[str]:
        resolved = self._resolve(node.func, aliases)
        if resolved is None:
            return None
        mod, attr = resolved
        if mod == "builtins" and attr == "id":
            return "id()"
        banned = _BANNED.get(mod, frozenset())
        if banned is None:
            if attr in _ALLOWED_ATTRS.get(mod, frozenset()):
                return None
            return f"{mod}.{attr}"
        if attr in banned:
            return f"{mod}.{attr}"
        return None

    @staticmethod
    def _resolve(func: ast.expr, aliases: dict) -> Optional[Tuple[str, str]]:
        """(module, attribute) for a call target, through import aliases."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            origin = aliases.get(func.value.id)
            if origin is not None and origin[1] is None:
                return origin[0], func.attr
            return None
        if isinstance(func, ast.Name):
            if func.id == "id" and func.id not in aliases:
                return "builtins", "id"
            origin = aliases.get(func.id)
            if origin is not None and origin[1] is not None:
                return origin[0], origin[1]
        return None

    def _is_set_expr(self, node: ast.expr, aliases: dict) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset") and node.func.id not in aliases:
                return True
        return False
