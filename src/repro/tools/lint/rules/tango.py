"""Rules TL001/TL002: the Tango object protocol (paper section 3.1).

A Tango object is three things — an in-memory view, an apply upcall,
and an external interface of mutators and accessors that delegate to
the runtime's helpers. These rules check that external interfaces keep
to their side of the contract.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.tools.lint.engine import Diagnostic, ParsedModule, Rule, Severity
from repro.tools.lint.rules.common import (
    VIEW_READERS_EXEMPT,
    VIEW_WRITERS,
    class_methods,
    dotted_name,
    iter_self_writes,
    iter_tango_classes,
    ordered_nodes,
    self_attr,
    view_attributes,
)

#: Call targets that synchronize the view (or record a transactional
#: read) before an accessor may legally read view state.
_SYNC_CALLS = frozenset(
    {
        "self._query",
        "self.sync_to",
        "self._runtime.query_helper",
    }
)

#: Direct log appends that bypass update_helper.
_RAW_APPEND_CALLS = frozenset(
    {
        "self._runtime.streams.append",
        "self._runtime._streams.append",
    }
)


class ApplyOnlyMutation(Rule):
    """TL001: only the apply upcall may write the view."""

    rule_id = "TL001"
    title = "apply-only view mutation"
    severity = Severity.ERROR
    paper_section = "§3.1"
    rationale = (
        "The view must be modified only by the Tango runtime via the "
        "apply upcall, never by application threads running mutators or "
        "accessors — otherwise replicas diverge from the log. View "
        "attributes are inferred as exactly the state written by "
        "apply/load_checkpoint; writes to them from any other method "
        "(except __init__, which builds the empty view) are flagged, "
        "including in-place container mutations."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        for cls in iter_tango_classes(module.tree):
            view = view_attributes(cls)
            if not view:
                continue
            for name, fn in class_methods(cls).items():
                if name in VIEW_WRITERS:
                    continue
                for node, attr, kind in iter_self_writes(fn):
                    if attr not in view:
                        continue
                    verb = {
                        "assign": "assigns",
                        "subscript": "writes into",
                        "call": "mutates",
                    }[kind]
                    yield self.diag(
                        module,
                        node,
                        f"{cls.name}.{name} {verb} view attribute "
                        f"'self.{attr}'; only apply/load_checkpoint may "
                        f"write the view (route changes through "
                        f"update_helper)",
                    )


class SyncBeforeRead(Rule):
    """TL002: accessors sync first; mutators route through the runtime."""

    rule_id = "TL002"
    title = "accessors sync before reading the view"
    severity = Severity.ERROR
    paper_section = "§3.1 Fig. 3"
    rationale = (
        "Accessors must call query_helper (via self._query or sync_to) "
        "before returning a function over the view, so reads are "
        "linearizable (or recorded in the transaction's read set). A "
        "public method that reads a view attribute before any sync call "
        "returns arbitrarily stale state. Mutators must reach the log "
        "through update_helper, never by appending to the stream layer "
        "directly, or updates bypass transaction buffering and batching."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        for cls in iter_tango_classes(module.tree):
            view = view_attributes(cls)
            methods = class_methods(cls)
            for name, fn in methods.items():
                yield from self._check_raw_appends(module, cls, name, fn)
                if not view:
                    continue
                if name in VIEW_READERS_EXEMPT or name.startswith("_"):
                    # Private helpers run under a caller that already
                    # synced; the protocol binds the public interface.
                    continue
                yield from self._check_sync_order(module, cls, name, fn, view)

    def _check_sync_order(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        name: str,
        fn: ast.FunctionDef,
        view: Set[str],
    ) -> Iterable[Diagnostic]:
        synced = False
        for node in ordered_nodes(fn):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target in _SYNC_CALLS:
                    synced = True
            elif (
                not synced
                and isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
            ):
                attr = self_attr(node)
                if attr in view:
                    yield self.diag(
                        module,
                        node,
                        f"{cls.name}.{name} reads view attribute "
                        f"'self.{attr}' before any sync call "
                        f"(self._query/sync_to/query_helper); the read "
                        f"is not linearizable",
                    )
                    return  # one finding per method is enough

    def _check_raw_appends(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        name: str,
        fn: ast.FunctionDef,
    ) -> Iterable[Diagnostic]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target in _RAW_APPEND_CALLS:
                    yield self.diag(
                        module,
                        node,
                        f"{cls.name}.{name} appends to the stream layer "
                        f"directly ({target}); mutators must route "
                        f"through update_helper/self._update",
                    )
