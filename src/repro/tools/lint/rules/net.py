"""Rule TL009: RPC call sites handle the full protocol error set.

Once ``repro.net`` turned every client↔node interaction into an RPC,
each public client operation became a place where three things can
happen that the application must never see raw: the epoch moved
(:class:`SealedError`), the node died (:class:`NodeDownError`), or the
network ate a message (:class:`RpcTimeout`). The client library's
public surface has to absorb all three with its retry/reconfigure
logic — ``CorfuClient.trim`` leaking ``SealedError`` to the GC during
a reconfiguration is exactly the bug this rule exists to catch.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.net.wire import RPC_OPS as _WIRE_OPS
from repro.tools.lint.engine import Diagnostic, ParsedModule, Rule, Severity
from repro.tools.lint.rules.common import class_methods

#: Method names that constitute node RPCs. Derived from the wire
#: registry (:data:`repro.net.wire.RPC_OPS` — the exact surface the
#: socket transport serves) plus the chain-replication wrapper ``fill``
#: that exists only client-side.
_RPC_OPS = _WIRE_OPS | frozenset({"fill"})

#: The protocol errors every public RPC-driving method must react to.
_REQUIRED = frozenset({"SealedError", "NodeDownError", "RpcTimeout"})

#: Handler names that cover the whole set at once.
_CATCH_ALLS = frozenset(
    {"CorfuError", "ReproError", "Exception", "BaseException"}
)


def _is_rpc_client(cls: ast.ClassDef) -> bool:
    """True for projection-aware client classes.

    The marker is a ``refresh_projection`` method: holding (and
    refreshing) a projection is what distinguishes a retry-owning
    client from the server classes and the stateless chain helper,
    which legitimately propagate protocol errors to their caller.
    """
    return "refresh_projection" in class_methods(cls)


def _handler_names(handler_type: Optional[ast.expr]) -> Set[str]:
    if handler_type is None:
        return set(_CATCH_ALLS)
    names: Set[str] = set()
    for node in (
        handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    ):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


class RpcErrorDiscipline(Rule):
    """TL009: public RPC call sites handle Sealed/NodeDown/RpcTimeout."""

    rule_id = "TL009"
    title = "RPC call sites handle SealedError/NodeDownError/RpcTimeout"
    severity = Severity.ERROR
    paper_section = "§2.2, §5"
    rationale = (
        "The client owns all retry logic: a sealed epoch means 'refresh "
        "the projection and retry', a dead node means 'reconfigure "
        "around it', a timeout means 'back off and retry "
        "idempotence-aware'. A public client operation that issues node "
        "RPCs without handlers for all three leaks transient "
        "infrastructure events to the application as exceptions — a "
        "trim racing a reconfiguration must not abort the caller's GC. "
        "Private helpers may propagate (their public caller holds the "
        "retry loop); public entry points may not."
    )

    def check(self, module: ParsedModule) -> Iterable[Diagnostic]:
        for cls in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)
        ):
            if not _is_rpc_client(cls):
                continue
            for name, fn in class_methods(cls).items():
                if name.startswith("_"):
                    continue  # helpers propagate to the public retry loop
                yield from self._unguarded_rpcs(module, cls, name, fn)

    def _unguarded_rpcs(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        name: str,
        fn: ast.FunctionDef,
    ) -> Iterable[Diagnostic]:
        for call, enclosing_tries in _rpc_calls_with_tries(fn):
            covered: Set[str] = set()
            for try_node in enclosing_tries:
                for handler in try_node.handlers:
                    covered |= _handler_names(handler.type)
            if covered & _CATCH_ALLS:
                continue
            missing = sorted(_REQUIRED - covered)
            if missing:
                yield self.diag(
                    module,
                    call,
                    f"{cls.name}.{name} issues RPC "
                    f"'{call.func.attr}' without handling "
                    f"{'/'.join(missing)}; public client operations "
                    f"must absorb sealed epochs, dead nodes, and "
                    f"timeouts via the standard retry path",
                )


def _rpc_calls_with_tries(fn: ast.FunctionDef):
    """Yield ``(call, [enclosing Try nodes])`` for each RPC-op call.

    Only calls through an attribute receiver count (``x.write(...)``);
    plain-name calls (``write(...)``) are local functions, not RPCs.
    """
    stack: List[ast.Try] = []

    def visit(node: ast.AST):
        if isinstance(node, ast.Try):
            stack.append(node)
            for child in node.body:
                visit(child)
            stack.pop()
            # Handler/else/finally bodies are NOT covered by their own
            # try: an exception raised there propagates.
            for handler in node.handlers:
                for child in handler.body:
                    visit(child)
            for child in node.orelse + node.finalbody:
                visit(child)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RPC_OPS
        ):
            yield_sites.append((node, list(stack)))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested functions get their own analysis scope
            visit(child)

    yield_sites: List = []
    for stmt in fn.body:
        visit(stmt)
    return yield_sites
