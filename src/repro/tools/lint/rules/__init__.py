"""The tangolint rule catalog.

Each rule encodes one invariant the papers state in prose; see
``docs/LINT.md`` for the full catalog with paper citations and
suppression guidance.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.tools.lint.engine import Rule
from repro.tools.lint.rules.concurrency import (
    GuardedAttributeDiscipline,
    LockLifecycleDiscipline,
    LockOrderAcyclicity,
    NoBlockingUnderLock,
)
from repro.tools.lint.rules.corfu import EpochCheckBeforeMutation, WriteOncePages
from repro.tools.lint.rules.determinism import NoReplayNondeterminism
from repro.tools.lint.rules.hygiene import (
    ExplicitLogEncoding,
    NoMutableDefaults,
    NoSwallowedProtocolErrors,
)
from repro.tools.lint.rules.net import RpcErrorDiscipline
from repro.tools.lint.rules.tango import ApplyOnlyMutation, SyncBeforeRead

#: Every rule, in id order. Instantiated once; rules are stateless.
ALL_RULES: Tuple[Rule, ...] = (
    ApplyOnlyMutation(),      # TL001
    SyncBeforeRead(),         # TL002
    NoReplayNondeterminism(), # TL003
    EpochCheckBeforeMutation(),  # TL004
    WriteOncePages(),         # TL005
    NoSwallowedProtocolErrors(),  # TL006
    ExplicitLogEncoding(),    # TL007
    NoMutableDefaults(),      # TL008
    RpcErrorDiscipline(),     # TL009
    GuardedAttributeDiscipline(),  # TL010
    LockOrderAcyclicity(),    # TL011
    NoBlockingUnderLock(),    # TL012
    LockLifecycleDiscipline(),  # TL013
)


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in ALL_RULES}


__all__ = ["ALL_RULES", "rules_by_id"]
