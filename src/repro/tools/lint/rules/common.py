"""Shared AST helpers for tangolint rules.

Most rules reason about the same shapes: "is this class a Tango
object?", "which attributes form its view?", "does this statement write
``self.<attr>``?". Centralizing the answers keeps the rules short and
makes them agree with each other.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Base-class names that mark a replicated data structure. Detection is
#: name-based (static analysis cannot resolve imports), so subclassing
#: must name the base directly — which every object in this codebase
#: and the paper's examples does.
TANGO_BASE_NAMES = frozenset({"TangoObject"})

#: The only methods allowed to write view attributes (section 3.1: the
#: apply upcall, checkpoint restoration, and construction of the empty
#: view).
VIEW_WRITERS = frozenset(
    {"__init__", "apply", "load_checkpoint", "load_checkpoint_delta"}
)

#: Methods that may read the view without a preceding sync: the runtime
#: invokes them at controlled points (upcalls run under playback; the
#: constructor builds the empty view; __repr__ is a debug aid).
VIEW_READERS_EXEMPT = frozenset(
    {
        "__init__",
        "apply",
        "load_checkpoint",
        "load_checkpoint_delta",
        "get_checkpoint",
        "get_checkpoint_delta",
        "__repr__",
    }
)

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "remove", "pop",
        "popleft", "popitem", "clear", "add", "discard", "update",
        "setdefault", "sort", "reverse",
    }
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``self._runtime.streams.append`` for the matching attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name when *node* is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_tango_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Classes deriving (transitively, within this module) from TangoObject."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    tango_names: Set[str] = set(TANGO_BASE_NAMES)
    # Fixed-point over in-module inheritance chains.
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in tango_names:
                continue
            for base in cls.bases:
                name = base.id if isinstance(base, ast.Name) else (
                    base.attr if isinstance(base, ast.Attribute) else None
                )
                if name in tango_names:
                    tango_names.add(cls.name)
                    changed = True
                    break
    for cls in classes:
        if cls.name in tango_names - TANGO_BASE_NAMES:
            yield cls


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Top-level (non-nested) methods of *cls* by name."""
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _targets(node: ast.stmt) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _flatten_target(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    else:
        yield target


def iter_self_writes(
    fn: ast.AST,
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Every write to ``self`` state inside *fn*.

    Yields ``(node, attr, kind)`` where *kind* is one of:

    - ``assign``    — ``self.attr = ...`` / ``self.attr += ...`` /
      ``del self.attr``;
    - ``subscript`` — ``self.attr[k] = ...`` / ``del self.attr[k]`` /
      ``self.attr[k] += ...``;
    - ``call``      — ``self.attr.append(...)`` and friends
      (:data:`MUTATING_METHODS`).
    """
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            for target in _targets(node):
                for leaf in _flatten_target(target):
                    attr = self_attr(leaf)
                    if attr is not None:
                        yield node, attr, "assign"
                        continue
                    if isinstance(leaf, ast.Subscript):
                        attr = self_attr(leaf.value)
                        if attr is not None:
                            yield node, attr, "subscript"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                attr = self_attr(node.func.value)
                if attr is not None:
                    yield node, attr, "call"


def view_attributes(cls: ast.ClassDef) -> Set[str]:
    """The attributes forming the class's *view*.

    By the paper's construction the view is exactly the state the apply
    upcall (and checkpoint restoration) writes; anything else assigned
    on ``self`` is client-local soft state (writer tokens, cursors)
    that replay never touches.
    """
    methods = class_methods(cls)
    attrs: Set[str] = set()
    for name in ("apply", "load_checkpoint"):
        fn = methods.get(name)
        if fn is None:
            continue
        for _node, attr, _kind in iter_self_writes(fn):
            attrs.add(attr)
    return attrs


def ordered_nodes(fn: ast.AST) -> List[ast.AST]:
    """All descendant nodes of *fn* in source-text order."""
    nodes = [n for n in ast.walk(fn) if hasattr(n, "lineno")]
    nodes.sort(key=lambda n: (n.lineno, n.col_offset))
    return nodes


def import_aliases(tree: ast.Module) -> Dict[str, Tuple[str, Optional[str]]]:
    """Local name -> ``(module, attr)`` for every import in the file.

    ``import random as rnd`` maps ``rnd -> ("random", None)``;
    ``from random import getrandbits as g`` maps
    ``g -> ("random", "getrandbits")``.
    """
    table: Dict[str, Tuple[str, Optional[str]]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = (alias.name, None)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = (node.module, alias.name)
    return table
